//! The paper's scale-shift model vs the modern z-normalised model, side by
//! side on the same index — plus engine persistence.
//!
//! The two formulations agree on "same trend" for positively-correlated
//! windows (both are monotone in the angle between SE-transforms) but
//! diverge on two points this example makes concrete:
//!
//! 1. **Inversions**: the paper's model happily maps a window onto its
//!    mirror image (`a < 0`); the z-normalised model calls them maximally
//!    different.
//! 2. **Asymmetry**: the paper's distance is measured in the *target's*
//!    amplitude, so quiet windows match everything (`a ≈ 0`); z-distance is
//!    symmetric and amplitude-free.
//!
//! Run with: `cargo run --release --example models_compared`

use tsss::core::{EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator, Series};

const WINDOW: usize = 32;

fn main() {
    // A market plus two synthetic actors: a mirror of stock 0 and a
    // near-flat series.
    let mut market = MarketSimulator::new(MarketConfig::small(60, 200, 3)).generate();
    let mirror = Series::new(
        "MIRROR",
        market[0].values.iter().map(|v| 300.0 - v).collect(),
    );
    let flat = Series::new(
        "FLAT",
        (0..200)
            .map(|i| 50.0 + 0.01 * (i as f64 * 0.4).sin())
            .collect(),
    );
    let mirror_idx = market.len();
    let flat_idx = market.len() + 1;
    market.push(mirror);
    market.push(flat);

    let engine = SearchEngine::build(&market, EngineConfig::small(WINDOW))
        .expect("data set fits the u32 window ids");
    println!(
        "indexed {} windows from {} series\n",
        engine.num_windows(),
        engine.num_series()
    );

    let query = market[0].window(100, WINDOW).unwrap().to_vec();
    let eps = 0.25 * tsss::geometry::se::se_norm(&query);

    // Paper model.
    let ss = engine
        .search(&query, eps, SearchOptions::default())
        .expect("valid query");
    let ss_has_mirror = ss
        .matches
        .iter()
        .any(|m| m.id.series as usize == mirror_idx);
    let ss_has_flat = ss.matches.iter().any(|m| m.id.series as usize == flat_idx);
    println!(
        "scale-shift model (ε = {eps:.2}): {} matches — mirror matched: {}, \
         flat windows matched: {}",
        ss.matches.len(),
        ss_has_mirror,
        ss_has_flat
    );
    if let Some(m) = ss
        .matches
        .iter()
        .find(|m| m.id.series as usize == mirror_idx)
    {
        println!(
            "  the mirror matched with a = {:.3} (a negative scaling!)",
            m.transform.a
        );
    }

    // Modern model, same index.
    let z = engine.search_znormalized(&query, 2.0).expect("valid query");
    let z_has_mirror = z.matches.iter().any(|m| m.id.series as usize == mirror_idx);
    let z_has_flat = z.matches.iter().any(|m| m.id.series as usize == flat_idx);
    println!(
        "z-normalised model (zε = 2.0): {} matches — mirror matched: {}, \
         flat windows matched: {}",
        z.matches.len(),
        z_has_mirror,
        z_has_flat
    );

    assert!(ss_has_mirror && !z_has_mirror, "inversion divergence");
    assert!(ss_has_flat && !z_has_flat, "asymmetry divergence");

    // Persistence: save, reload, and confirm the loaded engine answers
    // identically.
    let path = std::env::temp_dir().join("models_compared.tsss");
    engine.save_to_path(&path).expect("save engine");
    let reloaded = SearchEngine::load_from_path(&path).expect("load engine");
    let again = reloaded
        .search(&query, eps, SearchOptions::default())
        .expect("valid query");
    assert_eq!(ss.id_set(), again.id_set());
    println!(
        "\nsaved + reloaded the engine ({} KiB) — identical answers ✓",
        std::fs::metadata(&path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );
    std::fs::remove_file(&path).ok();
}
