//! Quickstart: build an engine over a synthetic market, disguise a real
//! window with a scale-shift transformation, and watch the engine recover
//! the source — together with the transformation — despite the disguise.
//!
//! Run with: `cargo run --release --example quickstart`

use tsss::core::{EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator};
use tsss::geometry::scale_shift::ScaleShift;

fn main() {
    // 1. Data: 50 synthetic stocks, 250 trading days each.
    let market = MarketSimulator::new(MarketConfig::small(50, 250, 42)).generate();
    println!(
        "market: {} series, {} values total",
        market.len(),
        market.iter().map(|s| s.len()).sum::<usize>()
    );

    // 2. Engine: window 32, 3 Fourier coefficients → a 6-d R*-tree.
    let mut cfg = EngineConfig::small(32);
    cfg.fc = Some(3);
    let engine = SearchEngine::build(&market, cfg).expect("data set fits the u32 window ids");
    println!(
        "indexed {} windows in an R*-tree of height {}",
        engine.num_windows(),
        engine.index_height()
    );

    // 3. A disguised query: stock 17's days 100..132, scaled ×2.5 and
    //    shifted down 40 units. Its price level and amplitude now look
    //    nothing like the original.
    let source = market[17].window(100, 32).unwrap();
    let disguise = ScaleShift { a: 2.5, b: -40.0 };
    let query = disguise.apply(source);

    // 4. Search with a small error bound.
    let result = engine
        .search(&query, 1e-6, SearchOptions::default())
        .expect("well-formed query");

    println!(
        "\n{} match(es); index visited {} nodes, checked {} candidates, \
         {} false alarm(s)",
        result.matches.len(),
        result.stats.index.internal_visited + result.stats.index.leaves_visited,
        result.stats.candidates,
        result.stats.false_alarms,
    );
    for m in result.matches.iter().take(5) {
        println!(
            "  {} · a = {:.4}, b = {:+.3} · distance {:.2e}",
            m.id, m.transform.a, m.transform.b, m.distance
        );
    }

    // 5. The top match is the source, and the reported transformation is
    //    the inverse of the disguise (a = 1/2.5, b = 40/2.5).
    let best = &result.matches[0];
    assert_eq!((best.id.series, best.id.offset), (17, 100));
    assert!((best.transform.a - 0.4).abs() < 1e-9);
    assert!((best.transform.b - 16.0).abs() < 1e-6);
    println!("\nrecovered the source window and inverted the disguise ✓");
}
