//! Parallel batch search over one shared engine.
//!
//! `SearchEngine` is `Send + Sync`: after the build, any number of threads
//! can query it concurrently. `search_batch` packages the common case —
//! answer a whole batch of queries on N worker threads — and returns the
//! exact results a serial loop would produce, in query order, including
//! each query's own page-access counts (the paper's Figure 5 metric), which
//! are tallied per thread rather than read off the shared counters.
//!
//! Run with: `cargo run --release --example parallel_batch`

use std::time::Instant;

use tsss::core::{EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};

const WINDOW: usize = 64;

fn main() {
    let market = MarketSimulator::new(MarketConfig::small(150, 400, 2026)).generate();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    let engine = SearchEngine::build(&market, cfg).expect("data set fits the u32 window ids");
    println!(
        "built index over {} windows of {} synthetic stocks\n",
        engine.num_windows(),
        market.len()
    );

    let queries: Vec<Vec<f64>> = QueryWorkload::generate(
        &market,
        WorkloadConfig {
            queries: 64,
            window_len: WINDOW,
            noise_level: 0.02,
            seed: 0xBA7C4,
            ..Default::default()
        },
    )
    .queries
    .into_iter()
    .map(|q| q.values)
    .collect();
    let epsilon = 0.5;

    // Serial reference: one thread, one query at a time.
    let t0 = Instant::now();
    let serial = engine
        .search_batch(&queries, epsilon, SearchOptions::default(), 1)
        .expect("valid queries");
    let serial_wall = t0.elapsed();

    // The same batch on all available cores.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let t0 = Instant::now();
    let parallel = engine
        .search_batch(&queries, epsilon, SearchOptions::default(), workers)
        .expect("valid queries");
    let parallel_wall = t0.elapsed();

    // Same answers, same per-query costs — only the wall clock moved.
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.matches, p.matches);
        assert_eq!(s.stats.index_pages, p.stats.index_pages);
        assert_eq!(s.stats.data_pages, p.stats.data_pages);
    }

    let matches: usize = parallel.iter().map(|r| r.matches.len()).sum();
    let pages: u64 = parallel.iter().map(|r| r.stats.total_pages()).sum();
    println!(
        "{} queries, {matches} match(es), {pages} logical pages",
        queries.len()
    );
    println!("  1 worker : {serial_wall:.2?}");
    println!(
        "  {workers} workers: {parallel_wall:.2?} ({:.2}x)",
        serial_wall.as_secs_f64() / parallel_wall.as_secs_f64()
    );
    println!("\nper-query match sets and page counts are identical — asserted above");
}
