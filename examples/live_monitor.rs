//! Live pattern monitor — exercising the paper's dynamic-index requirement
//! (§3, requirement 2: "cope with frequent and regular data insertion as
//! the time series data are collected regularly").
//!
//! A reference pattern (a sharp sell-off followed by a rebound) is watched
//! for across a streaming market: each simulated day appends one value to
//! every series, the engine indexes the newly-completed windows
//! incrementally, and freshly-matching windows raise alerts. Old windows
//! are expired from the index as they fall out of the monitoring horizon.
//!
//! Run with: `cargo run --release --example live_monitor`

// Demo fixture: day/stream counters are tiny, the narrowing casts are safe.
#![allow(clippy::cast_possible_truncation)]

use tsss::core::{EngineConfig, SearchEngine, SearchOptions, SubseqId};
use tsss::data::{MarketConfig, MarketSimulator, Series};

const WINDOW: usize = 24;
const HISTORY: usize = 120; // days available before the live stream starts
const LIVE_DAYS: usize = 60;
const HORIZON: usize = 40; // expire windows older than this many days

fn crash_pattern() -> Vec<f64> {
    // Stylised sell-off and rebound, amplitude 1. Scale/shift invariance
    // means this one template covers every price level and severity.
    (0..WINDOW)
        .map(|i| {
            let t = i as f64 / (WINDOW - 1) as f64;
            if t < 0.4 {
                1.0 - 2.2 * t // sharp fall
            } else {
                0.12 + 0.9 * (t - 0.4) // slow rebound
            }
        })
        .collect()
}

fn main() {
    // Full simulated future, split into history and live stream.
    let mut full =
        MarketSimulator::new(MarketConfig::small(80, HISTORY + LIVE_DAYS, 99)).generate();
    let streams: Vec<Vec<f64>> = full
        .iter_mut()
        .map(|s| s.values.split_off(HISTORY))
        .collect();
    let history: Vec<Series> = full;

    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    let mut engine = SearchEngine::build(&history, cfg).expect("data set fits the u32 window ids");
    println!(
        "monitoring {} stocks; {} historical windows indexed",
        history.len(),
        engine.num_windows()
    );

    let pattern = crash_pattern();
    let eps = 0.4 * tsss::geometry::se::se_norm(&pattern);
    // The paper's distance is measured in the *target's* amplitude, so a
    // near-flat window is within ε of any query via a ≈ 0. The paper's
    // remedy is the transformation-cost limit (§3): demand a genuinely
    // positive severity, i.e. a real sell-off, not a flat line.
    let opts = SearchOptions {
        cost: tsss::core::CostLimit {
            a_range: Some((0.5, f64::INFINITY)),
            b_range: None,
        },
        ..Default::default()
    };
    let mut alerted: std::collections::BTreeSet<SubseqId> = Default::default();
    let mut total_alerts = 0usize;

    for day in 0..LIVE_DAYS {
        // 1. Ingest today's closes.
        for (si, stream) in streams.iter().enumerate() {
            engine
                .append_values(si, &stream[day..=day])
                .expect("series exists");
        }
        let today = HISTORY + day;

        // 2. Expire windows that left the horizon (dynamic deletes).
        if today >= HORIZON + WINDOW {
            let expire_offset = (today - HORIZON - WINDOW) as u32;
            for si in 0..streams.len() as u32 {
                let _ = engine.remove_window(SubseqId {
                    series: si,
                    offset: expire_offset,
                });
            }
        }

        // 3. Query for the pattern. Only alert on windows ending today.
        let result = engine.search(&pattern, eps, opts).expect("pattern query");
        for m in &result.matches {
            let ends_today = m.id.offset as usize + WINDOW == today + 1;
            if ends_today && alerted.insert(m.id) {
                total_alerts += 1;
                if total_alerts <= 12 {
                    println!(
                        "day {:3}: ALERT {} — sell-off/rebound, severity a = {:.2}, \
                         level b = {:.1}, distance {:.2}",
                        day,
                        history[m.id.series as usize].name,
                        m.transform.a,
                        m.transform.b,
                        m.distance
                    );
                }
            }
        }
    }

    engine.tree_mut().check_invariants().expect("index intact");
    println!(
        "\n{} alert(s) over {} live days; index now holds {} windows (invariants OK)",
        total_alerts,
        LIVE_DAYS,
        engine.num_windows()
    );
}
