//! Side-by-side comparison of the paper's three experiment sets on a
//! miniature data set — a runnable preview of Figures 4 and 5 (the
//! full-scale reproduction lives in `tsss-bench`).
//!
//! * set 1 — sequential scan, distance by Lemma 2 / §5.2 closed form,
//! * set 2 — R*-tree + Entering/Exiting-Points penetration checks,
//! * set 3 — R*-tree + inner/outer bounding spheres with slab fallback.
//!
//! Run with: `cargo run --release --example method_compare`

use std::time::Instant;

use tsss::core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};
use tsss::geometry::penetration::PenetrationMethod;

const WINDOW: usize = 64;

fn main() {
    let market = MarketSimulator::new(MarketConfig::small(150, 400, 1999)).generate();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    cfg.max_entries = 20;
    cfg.min_entries = 8;
    cfg.reinsert_count = 6;
    let t0 = Instant::now();
    let engine = SearchEngine::build(&market, cfg).expect("data set fits the u32 window ids");
    println!(
        "built index over {} windows ({} data pages) in {:.2?}\n",
        engine.num_windows(),
        engine.data_page_count(),
        t0.elapsed()
    );

    let workload = QueryWorkload::generate(
        &market,
        WorkloadConfig {
            queries: 50,
            window_len: WINDOW,
            noise_level: 0.05,
            seed: 7,
            ..Default::default()
        },
    );

    println!(
        "{:>8} | {:>12} {:>11} | {:>12} {:>11} | {:>12} {:>11}",
        "eps", "seq µs", "seq pages", "E/E µs", "E/E pages", "spheres µs", "sph pages"
    );
    for eps_frac in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut row = [0.0f64; 6];
        for q in &workload.queries {
            let eps = eps_frac * tsss::geometry::se::se_norm(&q.values);

            let seq = engine
                .sequential_search(&q.values, eps, CostLimit::UNLIMITED)
                .unwrap();
            row[0] += seq.stats.elapsed.as_secs_f64() * 1e6;
            row[1] += seq.stats.total_pages() as f64;

            let ee = engine
                .search(&q.values, eps, SearchOptions::default())
                .unwrap();
            row[2] += ee.stats.elapsed.as_secs_f64() * 1e6;
            row[3] += ee.stats.total_pages() as f64;

            let sph = engine
                .search(
                    &q.values,
                    eps,
                    SearchOptions {
                        method: PenetrationMethod::BoundingSpheres,
                        ..Default::default()
                    },
                )
                .unwrap();
            row[4] += sph.stats.elapsed.as_secs_f64() * 1e6;
            row[5] += sph.stats.total_pages() as f64;

            assert_eq!(seq.id_set(), ee.id_set(), "set 2 diverged from set 1");
            assert_eq!(seq.id_set(), sph.id_set(), "set 3 diverged from set 1");
        }
        let n = workload.queries.len() as f64;
        println!(
            "{:>8.3} | {:>12.1} {:>11.1} | {:>12.1} {:>11.1} | {:>12.1} {:>11.1}",
            eps_frac,
            row[0] / n,
            row[1] / n,
            row[2] / n,
            row[3] / n,
            row[4] / n,
            row[5] / n
        );
    }
    println!("\nall three methods returned identical match sets for every query ✓");
}
