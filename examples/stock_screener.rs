//! Stock screener — the paper's §1 motivating application.
//!
//! "Although the stock price of company C is higher than that of company A,
//! if they have the same fluctuation, they should be considered to have the
//! same trend" — this example screens a synthetic market for every stock
//! whose recent window moves like a chosen reference stock, regardless of
//! price level (shift) or amplitude (scale), and ranks the closest
//! look-alikes with the engine's k-nearest-neighbour search.
//!
//! Run with: `cargo run --release --example stock_screener`

use std::collections::BTreeMap;

use tsss::core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator};

const WINDOW: usize = 64;

fn main() {
    // A mid-sized market: 200 stocks, 320 days.
    let market = MarketSimulator::new(MarketConfig::small(200, 320, 7)).generate();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    cfg.max_entries = 20;
    cfg.min_entries = 8;
    cfg.reinsert_count = 6;
    let engine = SearchEngine::build(&market, cfg).expect("data set fits the u32 window ids");

    // Reference: the last complete window of stock 0.
    let reference_series = 0usize;
    let offset = market[reference_series].len() - WINDOW;
    let reference = market[reference_series]
        .window(offset, WINDOW)
        .unwrap()
        .to_vec();
    println!(
        "reference: {} days {}..{} (price level ≈ {:.2})",
        market[reference_series].name,
        offset,
        offset + WINDOW,
        reference.iter().sum::<f64>() / WINDOW as f64
    );

    // Range screen: everything within ε, but only with a *substantial
    // positive* scaling — we want genuinely co-moving stocks, not mirror
    // images and not near-flat windows that the model's asymmetric distance
    // would otherwise match with a ≈ 0. The cost limit expresses that
    // directly (paper §3: transformation cost as part of the query).
    let fluctuation = tsss::geometry::se::se_norm(&reference);
    let eps = 0.35 * fluctuation;
    let opts = SearchOptions {
        cost: CostLimit {
            a_range: Some((0.25, 4.0)),
            b_range: None,
        },
        ..Default::default()
    };
    let result = engine.search(&reference, eps, opts).expect("valid query");

    // Keep each stock's best-matching window.
    let mut best_per_stock: BTreeMap<u32, (f64, f64, f64)> = BTreeMap::new();
    for m in &result.matches {
        if m.id.series as usize == reference_series {
            continue; // the reference trivially matches itself
        }
        let entry = best_per_stock
            .entry(m.id.series)
            .or_insert((f64::INFINITY, 0.0, 0.0));
        if m.distance < entry.0 {
            *entry = (m.distance, m.transform.a, m.transform.b);
        }
    }

    println!(
        "\nscreen at ε = {eps:.2}: {} co-moving stock(s) \
         ({} candidate windows, {} false alarms)\n",
        best_per_stock.len(),
        result.stats.candidates,
        result.stats.false_alarms
    );
    println!(
        "{:<8} {:>10} {:>9} {:>10}",
        "stock", "distance", "scale a", "shift b"
    );
    for (series, (d, a, b)) in best_per_stock.iter().take(15) {
        println!(
            "{:<8} {:>10.3} {:>9.3} {:>10.2}",
            market[*series as usize].name, d, a, b
        );
    }

    // Ranked view: the nearest windows market-wide under a substantial
    // scaling. The model's raw nearest neighbours are dominated by
    // low-volatility windows (distance is measured in the target's
    // amplitude), so rank with the cost-constrained k-NN.
    let nearest = engine
        .nearest_with_cost(&reference, 8, opts.cost)
        .expect("valid query");
    println!("\nnearest co-moving windows market-wide (cost-constrained k-NN):");
    for m in nearest
        .iter()
        .filter(|m| m.id.series as usize != reference_series)
        .take(5)
    {
        println!(
            "  {} ({}) · distance {:.3} · a = {:.3}, b = {:+.2}",
            m.id, market[m.id.series as usize].name, m.distance, m.transform.a, m.transform.b
        );
    }
}
