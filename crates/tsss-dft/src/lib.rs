//! Discrete Fourier transform and feature extraction for the PODS '99
//! reproduction.
//!
//! The paper reduces the dimension of SE-transformed subsequences before
//! indexing (§7): following the F-index / ST-index line of work
//! (Agrawal–Faloutsos–Swami '93, Faloutsos et al. '94), each window is
//! transformed with an n-point DFT and only the first `f_c` complex
//! coefficients are kept — the paper uses `f_c = 3`, i.e. a 6-dimensional
//! R*-tree.
//!
//! Correctness hinges on the **contraction property**: with the orthonormal
//! DFT (unitary `U`), truncating to a coordinate subset can only shrink
//! Euclidean distances, so a range search in feature space with the same ε
//! can produce false alarms but never false dismissals. Because the feature
//! map is *linear*, the query's SE-line maps to a line through the origin of
//! feature space, and Theorem 2's point-to-line test carries over verbatim.
//! Both facts are enforced by property tests.
//!
//! Contents:
//! * [`complex::Complex`] — minimal complex arithmetic,
//! * [`fft`] — an iterative radix-2 FFT for power-of-two lengths with an
//!   O(n²) reference DFT for arbitrary lengths (and for cross-validation),
//! * [`features`] — the `f_c`-coefficient feature extractor used by the
//!   engine.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

pub mod complex;
pub mod features;
pub mod fft;

pub use complex::Complex;
pub use features::FeatureExtractor;
pub use fft::{dft_naive, fft_real, ifft, inverse_dft_naive};
