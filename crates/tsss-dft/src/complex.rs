//! Minimal complex arithmetic for the DFT.
//!
//! Implemented here rather than pulled in as a dependency: the transform
//! needs exactly the operations below and nothing else, and keeping the type
//! local lets the FFT stay `Copy`-friendly and allocation-free.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Constructs `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i·sin θ`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn arithmetic_hand_cases() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert!(close(a * b, Complex::new(5.0, 5.0)));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex::new(1.5, -0.5);
        let b = Complex::new(-2.0, 4.0);
        let mut c = a;
        c += b;
        assert!(close(c, a + b));
        let mut c = a;
        c -= b;
        assert!(close(c, a - b));
        let mut c = a;
        c *= b;
        assert!(close(c, a * b));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // z·z̄ = |z|²
        assert!(close(a * a.conj(), Complex::real(25.0)));
    }

    #[test]
    fn cis_is_on_the_unit_circle() {
        for k in 0..8 {
            let z = Complex::cis(std::f64::consts::PI * k as f64 / 4.0);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(0.0), Complex::ONE));
        assert!(close(Complex::cis(std::f64::consts::FRAC_PI_2), Complex::I));
    }

    #[test]
    fn scale_and_neg() {
        let a = Complex::new(2.0, -6.0);
        assert!(close(a.scale(0.5), Complex::new(1.0, -3.0)));
        assert!(close(-a, Complex::new(-2.0, 6.0)));
    }
}
