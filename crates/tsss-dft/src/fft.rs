//! Forward and inverse discrete Fourier transforms.
//!
//! Convention (matching the F-index papers): the **forward** transform of
//! `x₀..x_{n−1}` is
//!
//! ```text
//! X_k = (1/√n) · Σ_j x_j · e^{−2πi·jk/n}
//! ```
//!
//! The `1/√n` factor makes the transform **unitary** (Parseval:
//! `Σ|X_k|² = Σ|x_j|²`), which is exactly what the no-false-dismissal
//! argument of the indexing scheme needs.
//!
//! Two implementations are provided and cross-validated:
//! * [`fft_real`] / [`fft_complex_in_place`] — iterative radix-2
//!   Cooley–Tukey, O(n log n), for power-of-two lengths, falling back to the
//!   naive transform otherwise,
//! * [`dft_naive`] — the O(n²) definition, valid for any length.

use crate::complex::Complex;

/// True when `n` is a power of two (and nonzero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// O(n²) forward DFT straight from the definition (unitary scaling).
/// Reference implementation for arbitrary lengths.
pub fn dft_naive(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let w = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                acc += Complex::cis(w * (j as f64) * (k as f64)).scale(xj);
            }
            acc.scale(scale)
        })
        .collect()
}

/// O(n²) inverse DFT (unitary scaling): recovers the real signal from its
/// full spectrum. The imaginary residue of the reconstruction is discarded
/// (it is ~machine-epsilon for spectra of real signals).
pub fn inverse_dft_naive(spectrum: &[Complex]) -> Vec<f64> {
    let n = spectrum.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let w = 2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|j| {
            let mut acc = Complex::ZERO;
            for (k, &xk) in spectrum.iter().enumerate() {
                acc += Complex::cis(w * (j as f64) * (k as f64)) * xk;
            }
            acc.re * scale
        })
        .collect()
}

/// In-place iterative radix-2 Cooley–Tukey FFT (unitary scaling applied at
/// the end).
///
/// # Panics
/// Panics unless `buf.len()` is a power of two.
pub fn fft_complex_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires a power-of-two length"
    );
    if n == 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    let scale = 1.0 / (n as f64).sqrt();
    for z in buf {
        *z = z.scale(scale);
    }
}

/// Forward DFT of a real signal: radix-2 FFT for power-of-two lengths,
/// otherwise the naive reference transform. Always returns the full
/// `n`-coefficient (unitary) spectrum.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if !is_power_of_two(n) {
        return dft_naive(x);
    }
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    fft_complex_in_place(&mut buf);
    buf
}

/// Inverse of [`fft_real`]: reconstructs the real signal from its full
/// unitary spectrum (radix-2 path for powers of two, naive otherwise).
pub fn ifft(spectrum: &[Complex]) -> Vec<f64> {
    let n = spectrum.len();
    if n == 0 {
        return Vec::new();
    }
    if !is_power_of_two(n) {
        return inverse_dft_naive(spectrum);
    }
    // IFFT via conjugation: ifft(X) = conj(fft(conj(X))) with unitary
    // scaling already handled by the forward routine.
    let mut buf: Vec<Complex> = spectrum.iter().map(|z| z.conj()).collect();
    fft_complex_in_place(&mut buf);
    buf.into_iter().map(|z| z.conj().re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectra_close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(6));
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        // δ₀ of length 4: X_k = 1/√4 = 0.5 for all k.
        let x = [1.0, 0.0, 0.0, 0.0];
        for z in dft_naive(&x) {
            assert!((z.re - 0.5).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_dc_only() {
        let x = [2.0; 8];
        let s = dft_naive(&x);
        // DC = (1/√8)·16 = 4√2.
        assert!((s[0].re - 16.0 / 8f64.sqrt()).abs() < 1e-12);
        for z in &s[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_cosine_concentrates_at_one_bin() {
        let n = 16;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64).cos())
            .collect();
        let s = dft_naive(&x);
        // Energy splits between bins 3 and n−3.
        assert!(s[3].abs() > 1.0);
        assert!(s[n - 3].abs() > 1.0);
        for (k, z) in s.iter().enumerate() {
            if k != 3 && k != n - 3 {
                assert!(z.abs() < 1e-10, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft_on_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 64, 128] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
            let fast = fft_real(&x);
            let slow = dft_naive(&x);
            assert!(spectra_close(&fast, &slow, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn fft_real_falls_back_for_non_powers() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.7 - 3.0).collect();
        let a = fft_real(&x);
        let b = dft_naive(&x);
        assert!(spectra_close(&a, &b, 1e-12));
    }

    #[test]
    fn roundtrip_power_of_two() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() * 10.0).collect();
        let back = ifft(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_arbitrary_length() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64).powi(2) - 20.0).collect();
        let back = ifft(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<f64> = (0..64)
            .map(|i| ((i * 7919) % 101) as f64 / 10.0 - 5.0)
            .collect();
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = fft_real(&x).iter().map(|z| z.norm_sq()).sum();
        assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    #[test]
    fn linearity_of_the_transform() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 1.1).cos()).collect();
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let lhs = fft_real(&combo);
        let fx = fft_real(&x);
        let fy = fft_real(&y);
        let rhs: Vec<Complex> = fx
            .iter()
            .zip(&fy)
            .map(|(a, b)| a.scale(2.0) - b.scale(3.0))
            .collect();
        assert!(spectra_close(&lhs, &rhs, 1e-10));
    }

    #[test]
    fn conjugate_symmetry_for_real_signals() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
        let s = fft_real(&x);
        for k in 1..x.len() {
            let a = s[k];
            let b = s[x.len() - k].conj();
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(fft_real(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn in_place_fft_rejects_non_power_lengths() {
        let mut buf = vec![Complex::ZERO; 6];
        fft_complex_in_place(&mut buf);
    }
}
