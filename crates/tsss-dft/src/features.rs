//! DFT feature extraction — the dimensionality-reduction step of the paper's
//! indexing pipeline (§7).
//!
//! A window of length `n` (already SE-transformed, hence zero-mean) is
//! mapped to the real/imaginary parts of its first `f_c` non-DC unitary DFT
//! coefficients, giving a `2·f_c`-dimensional feature point. The DC
//! coefficient is skipped because the SE-transformation has already zeroed
//! it — keeping it would waste an index dimension on a coordinate that is
//! identically 0.
//!
//! Each kept coefficient is scaled by `√2`, exploiting conjugate symmetry of
//! real-signal spectra: bins `k` and `n−k` carry identical energy, so
//! counting bin `k` twice still **underestimates** the true distance (the
//! classic F-index tightening). Formally, for real `x`, `y` and
//! `f_c ≤ ⌊(n−1)/2⌋`:
//!
//! ```text
//! 2·Σ_{k=1..f_c} |X_k − Y_k|²  ≤  Σ_{k≠0} |X_k − Y_k|²  ≤  ‖x − y‖²
//! ```
//!
//! so feature-space distances lower-bound SE-space distances — the
//! no-false-dismissal guarantee — while pruning ~2× more volume than the
//! unscaled embedding. The map is linear, so scaling lines stay lines
//! through the origin and Theorem 2's machinery applies unchanged in feature
//! space.

use crate::fft::fft_real;

/// Maps length-`n` windows to `2·f_c`-dimensional DFT feature points.
///
/// ```
/// use tsss_dft::FeatureExtractor;
/// let fx = FeatureExtractor::new(128, 3); // the paper's setting
/// assert_eq!(fx.feature_dim(), 6);
/// let window = vec![0.5; 128]; // constant (zero after SE) → zero features
/// assert!(fx.extract(&window).iter().all(|v| v.abs() < 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureExtractor {
    window_len: usize,
    fc: usize,
}

impl FeatureExtractor {
    /// Creates an extractor for windows of length `window_len` keeping `fc`
    /// complex coefficients (the paper's setting is `fc = 3`).
    ///
    /// # Panics
    /// Panics unless `1 ≤ fc ≤ ⌊(window_len − 1)/2⌋` — the range for which
    /// the √2-boosted embedding provably lower-bounds (see module docs).
    pub fn new(window_len: usize, fc: usize) -> Self {
        assert!(fc >= 1, "need at least one Fourier coefficient");
        assert!(
            2 * fc < window_len,
            "fc = {fc} too large for window length {window_len}: need 2·fc + 1 ≤ n"
        );
        Self { window_len, fc }
    }

    /// Window length `n` this extractor accepts.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of complex coefficients kept.
    pub fn fc(&self) -> usize {
        self.fc
    }

    /// Dimension of the produced feature points (`2·f_c`).
    pub fn feature_dim(&self) -> usize {
        2 * self.fc
    }

    /// Extracts the feature point of `window`.
    ///
    /// # Panics
    /// Panics when `window.len() != window_len`.
    pub fn extract(&self, window: &[f64]) -> Vec<f64> {
        assert_eq!(
            window.len(),
            self.window_len,
            "window length mismatch: extractor built for {}, got {}",
            self.window_len,
            window.len()
        );
        let spectrum = fft_real(window);
        let boost = std::f64::consts::SQRT_2;
        let mut out = Vec::with_capacity(self.feature_dim());
        for z in &spectrum[1..=self.fc] {
            out.push(boost * z.re);
            out.push(boost * z.im);
        }
        out
    }

    /// Identity "extractor" support: when callers disable dimensionality
    /// reduction the engine indexes the SE-transformed window directly; this
    /// helper reports the dimension such an index would have.
    pub fn full_dim(&self) -> usize {
        self.window_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn se(x: &[f64]) -> Vec<f64> {
        let m = x.iter().sum::<f64>() / x.len() as f64;
        x.iter().map(|v| v - m).collect()
    }

    #[test]
    fn feature_dim_is_twice_fc() {
        let fe = FeatureExtractor::new(128, 3);
        assert_eq!(fe.feature_dim(), 6);
        assert_eq!(fe.window_len(), 128);
        assert_eq!(fe.fc(), 3);
        assert_eq!(fe.full_dim(), 128);
        assert_eq!(fe.extract(&vec![0.0; 128]).len(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_fc_is_rejected() {
        let _ = FeatureExtractor::new(8, 4); // need 2·4+1 = 9 > 8
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_fc_is_rejected() {
        let _ = FeatureExtractor::new(8, 0);
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn wrong_window_length_is_rejected() {
        FeatureExtractor::new(16, 3).extract(&[0.0; 8]);
    }

    #[test]
    fn extraction_is_linear() {
        let fe = FeatureExtractor::new(32, 3);
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos() * 2.0).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 1.5 * a - 2.0 * b).collect();
        let lhs = fe.extract(&combo);
        let fx = fe.extract(&x);
        let fy = fe.extract(&y);
        for i in 0..lhs.len() {
            assert!((lhs[i] - (1.5 * fx[i] - 2.0 * fy[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn feature_distance_lower_bounds_window_distance() {
        // Deterministic pseudo-random windows; the contraction property must
        // hold for every pair.
        let fe = FeatureExtractor::new(64, 3);
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        for _ in 0..50 {
            let x: Vec<f64> = (0..64).map(|_| next()).collect();
            let y: Vec<f64> = (0..64).map(|_| next()).collect();
            let (xs, ys) = (se(&x), se(&y));
            let d_feat = dist(&fe.extract(&xs), &fe.extract(&ys));
            let d_full = dist(&xs, &ys);
            assert!(
                d_feat <= d_full + 1e-9,
                "contraction violated: {d_feat} > {d_full}"
            );
        }
    }

    #[test]
    fn smooth_signals_concentrate_energy_in_few_coefficients() {
        // The premise of the paper's choice fc = 3 (citing [2]): low-frequency
        // signals keep most energy in the first coefficients.
        let n = 128;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 2.0 * t).cos()
            })
            .collect();
        let xs = se(&x);
        let fe = FeatureExtractor::new(n, 3);
        let feat = fe.extract(&xs);
        let feat_energy: f64 = feat.iter().map(|v| v * v).sum();
        let full_energy: f64 = xs.iter().map(|v| v * v).sum();
        assert!(
            feat_energy > 0.99 * full_energy,
            "kept {feat_energy} of {full_energy}"
        );
    }

    #[test]
    fn dc_is_ignored_shifted_windows_share_features_after_se() {
        let fe = FeatureExtractor::new(16, 3);
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).sin() * 3.0).collect();
        let shifted: Vec<f64> = x.iter().map(|v| v + 42.0).collect();
        let fx = fe.extract(&se(&x));
        let fs = fe.extract(&se(&shifted));
        for (a, b) in fx.iter().zip(&fs) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_window_scales_features() {
        // Crucial for the SE-line geometry: features(t·u) = t·features(u).
        let fe = FeatureExtractor::new(16, 2);
        let u: Vec<f64> = (0..16).map(|i| ((i * i) % 11) as f64 - 5.0).collect();
        let us = se(&u);
        let fu = fe.extract(&us);
        for t in [-3.0, -0.5, 0.0, 0.25, 7.0] {
            let scaled: Vec<f64> = us.iter().map(|v| t * v).collect();
            let fs = fe.extract(&scaled);
            for (a, b) in fs.iter().zip(&fu) {
                assert!((a - t * b).abs() < 1e-9);
            }
        }
    }
}
