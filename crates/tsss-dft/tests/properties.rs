//! Randomised tests for the DFT substrate: the transform must be a unitary
//! linear map on every input, and the feature extractor must be a linear
//! contraction — the exact properties the index's no-false-dismissal
//! guarantee rests on.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

use tsss_dft::{dft_naive, fft_real, ifft, FeatureExtractor};
use tsss_rand::Rng;

const CASES: usize = 128;

fn signal(rng: &mut Rng, n: usize) -> Vec<f64> {
    rng.f64_vec(n, -1e3, 1e3)
}

fn pow2_len(rng: &mut Rng) -> usize {
    [2usize, 4, 8, 16, 32, 64, 128][rng.usize_below(7)]
}

fn any_len(rng: &mut Rng) -> usize {
    2 + rng.usize_below(38)
}

fn centred(x: &[f64]) -> Vec<f64> {
    let m = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| v - m).collect()
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// FFT == naive DFT on power-of-two lengths.
#[test]
fn fft_agrees_with_definition() {
    let mut rng = Rng::seed_from_u64(0xDF7_0001);
    for _ in 0..CASES {
        let n = pow2_len(&mut rng);
        let x = signal(&mut rng, n);
        let fast = fft_real(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }
}

/// Forward then inverse recovers the signal (any length).
#[test]
fn roundtrip_is_identity() {
    let mut rng = Rng::seed_from_u64(0xDF7_0002);
    for _ in 0..CASES {
        let n = any_len(&mut rng);
        let x = signal(&mut rng, n);
        let back = ifft(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
}

/// Parseval: the unitary transform preserves energy.
#[test]
fn parseval_holds() {
    let mut rng = Rng::seed_from_u64(0xDF7_0003);
    for _ in 0..CASES {
        let n = any_len(&mut rng);
        let x = signal(&mut rng, n);
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = fft_real(&x).iter().map(|z| z.norm_sq()).sum();
        assert!((time - freq).abs() <= 1e-9 * (1.0 + time));
    }
}

/// Conjugate symmetry of real-signal spectra.
#[test]
fn real_signals_have_symmetric_spectra() {
    let mut rng = Rng::seed_from_u64(0xDF7_0004);
    for _ in 0..CASES {
        let n = any_len(&mut rng);
        let x = signal(&mut rng, n);
        let s = fft_real(&x);
        for k in 1..n {
            let a = s[k];
            let b = s[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }
}

/// The feature extractor is a contraction on zero-mean inputs: feature
/// distance never exceeds window distance. This is the index's
/// no-false-dismissal lemma.
#[test]
fn extractor_is_a_contraction() {
    let mut rng = Rng::seed_from_u64(0xDF7_0005);
    for _ in 0..CASES {
        let n = 8 + rng.usize_below(56);
        let fc = 1 + rng.usize_below((n - 1) / 2);
        let fx = FeatureExtractor::new(n, fc);
        let a = centred(&signal(&mut rng, n));
        let b = centred(&signal(&mut rng, n));
        let d_feat = dist(&fx.extract(&a), &fx.extract(&b));
        let d_full = dist(&a, &b);
        assert!(
            d_feat <= d_full + 1e-7 * (1.0 + d_full),
            "contraction violated: {d_feat} > {d_full} (n = {n}, fc = {fc})"
        );
    }
}

/// Feature extraction commutes with scaling — the property that lets the
/// SE-line live in feature space (Theorem 2 machinery).
#[test]
fn extractor_commutes_with_scaling() {
    let mut rng = Rng::seed_from_u64(0xDF7_0006);
    for _ in 0..CASES {
        let n = 8 + rng.usize_below(56);
        let x = signal(&mut rng, n);
        let t = rng.f64_range(-50.0, 50.0);
        let fx = FeatureExtractor::new(n, ((n - 1) / 2).min(3));
        let c = centred(&x);
        let scaled: Vec<f64> = c.iter().map(|v| t * v).collect();
        let f1 = fx.extract(&scaled);
        let f2: Vec<f64> = fx.extract(&c).iter().map(|v| t * v).collect();
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}
