//! Property-based tests for the DFT substrate: the transform must be a
//! unitary linear map on every input, and the feature extractor must be a
//! linear contraction — the exact properties the index's no-false-dismissal
//! guarantee rests on.

use proptest::prelude::*;
use tsss_dft::{dft_naive, fft_real, ifft, FeatureExtractor};

fn signal(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, n)
}

fn pow2_len() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 4, 8, 16, 32, 64, 128])
}

fn any_len() -> impl Strategy<Value = usize> {
    2usize..40
}

fn centred(x: &[f64]) -> Vec<f64> {
    let m = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| v - m).collect()
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FFT == naive DFT on power-of-two lengths.
    #[test]
    fn fft_agrees_with_definition(x in pow2_len().prop_flat_map(signal)) {
        let fast = fft_real(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    /// Forward then inverse recovers the signal (any length).
    #[test]
    fn roundtrip_is_identity(x in any_len().prop_flat_map(signal)) {
        let back = ifft(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Parseval: the unitary transform preserves energy.
    #[test]
    fn parseval_holds(x in any_len().prop_flat_map(signal)) {
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = fft_real(&x).iter().map(|z| z.norm_sq()).sum();
        prop_assert!((time - freq).abs() <= 1e-9 * (1.0 + time));
    }

    /// Conjugate symmetry of real-signal spectra.
    #[test]
    fn real_signals_have_symmetric_spectra(x in any_len().prop_flat_map(signal)) {
        let s = fft_real(&x);
        let n = x.len();
        for k in 1..n {
            let a = s[k];
            let b = s[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    /// The feature extractor is a contraction on zero-mean inputs: feature
    /// distance never exceeds window distance. This is the index's
    /// no-false-dismissal lemma.
    #[test]
    fn extractor_is_a_contraction(
        (n, fc) in (8usize..64).prop_flat_map(|n| (Just(n), 1usize..=(n - 1) / 2)),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let gen = |seed: u64, n: usize| -> Vec<f64> {
            let mut s = seed | 1;
            (0..n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) * 200.0 - 100.0
                })
                .collect()
        };
        let fx = FeatureExtractor::new(n, fc);
        let a = centred(&gen(seed_a, n));
        let b = centred(&gen(seed_b, n));
        let d_feat = dist(&fx.extract(&a), &fx.extract(&b));
        let d_full = dist(&a, &b);
        prop_assert!(d_feat <= d_full + 1e-7 * (1.0 + d_full),
            "contraction violated: {d_feat} > {d_full} (n = {n}, fc = {fc})");
    }

    /// Feature extraction commutes with scaling — the property that lets the
    /// SE-line live in feature space (Theorem 2 machinery).
    #[test]
    fn extractor_commutes_with_scaling(
        x in (8usize..64).prop_flat_map(signal),
        t in -50.0f64..50.0,
    ) {
        let n = x.len();
        let fx = FeatureExtractor::new(n, ((n - 1) / 2).min(3));
        let c = centred(&x);
        let scaled: Vec<f64> = c.iter().map(|v| t * v).collect();
        let f1 = fx.extract(&scaled);
        let f2: Vec<f64> = fx.extract(&c).iter().map(|v| t * v).collect();
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}
