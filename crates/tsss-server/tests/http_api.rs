//! End-to-end tests over real sockets: a live [`Server`] answering raw
//! HTTP/1.1 written by a hand-rolled client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tsss_core::{EngineConfig, SearchEngine};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_server::json::Json;
use tsss_server::{Server, ServerConfig};

const WINDOW: usize = 16;

fn fixture() -> (Server, Vec<Series>) {
    let data = MarketSimulator::new(MarketConfig::small(4, 80, 99)).generate();
    let engine = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
    let server = Server::start(engine, &ServerConfig::default()).unwrap();
    (server, data)
}

/// Sends one request, reads until the server closes, returns (status, body).
fn request(server: &Server, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8(raw.to_vec()).expect("response must be UTF-8");
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .expect("response must have a head terminator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    assert_eq!(payload.len(), len, "body must match Content-Length");
    (status, payload.to_string())
}

fn query_json(data: &[Series], series: usize, offset: usize, len: usize) -> String {
    Json::Arr(
        data[series].values[offset..offset + len]
            .iter()
            .map(|v| Json::from(*v))
            .collect(),
    )
    .encode()
}

#[test]
fn full_request_cycle_over_the_wire() {
    let (server, data) = fixture();
    let q = query_json(&data, 0, 7, WINDOW);

    // A self-match must come back with a ≈(1, 0) transform at distance ≈0.
    let (status, body) = request(
        &server,
        "POST",
        "/search",
        &format!("{{\"query\":{q},\"epsilon\":0.25}}"),
    );
    assert_eq!(status, 200, "{body}");
    let j = Json::parse(&body).unwrap();
    let matches = j.get("matches").and_then(Json::as_array).unwrap();
    assert!(!matches.is_empty());
    let self_match = matches
        .iter()
        .find(|m| {
            m.get("series").and_then(Json::as_u64) == Some(0)
                && m.get("offset").and_then(Json::as_u64) == Some(7)
        })
        .expect("the query's own window must match");
    assert!(self_match.get("distance").and_then(Json::as_f64).unwrap() < 1e-6);

    // Health, metrics, repair round-trip.
    let (status, body) = request(&server, "GET", "/health", "");
    assert_eq!(status, 200);
    let h = Json::parse(&body).unwrap();
    assert_eq!(h.get("breaker").and_then(Json::as_str), Some("closed"));
    assert_eq!(
        h.get("repair_recommended").and_then(Json::as_bool),
        Some(false)
    );

    let (status, body) = request(&server, "POST", "/repair", "");
    assert_eq!(status, 200);
    assert!(Json::parse(&body)
        .unwrap()
        .get("windows_reindexed")
        .is_some());

    let (status, body) = request(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&body).unwrap();
    assert!(m.get("requests_total").and_then(Json::as_u64).unwrap() >= 3);

    server.shutdown();
}

#[test]
fn append_is_visible_to_subsequent_queries() {
    let (server, data) = fixture();
    // A brand-new series cloned from an existing window, then searched for.
    let vals = query_json(&data, 2, 11, WINDOW + 4);
    let (status, body) = request(
        &server,
        "POST",
        "/append",
        &format!("{{\"name\":\"clone\",\"values\":{vals}}}"),
    );
    assert_eq!(status, 200, "{body}");
    let appended = Json::parse(&body).unwrap();
    let new_series = appended.get("series").and_then(Json::as_u64).unwrap();
    assert_eq!(new_series, 4, "four seed series, the clone is fifth");

    let q = query_json(&data, 2, 11, WINDOW);
    let (status, body) = request(
        &server,
        "POST",
        "/search",
        &format!("{{\"query\":{q},\"epsilon\":0.01}}"),
    );
    assert_eq!(status, 200);
    let j = Json::parse(&body).unwrap();
    let found_in_clone = j
        .get("matches")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|m| m.get("series").and_then(Json::as_u64) == Some(new_series));
    assert!(
        found_in_clone,
        "appended windows must be searchable: {body}"
    );
    server.shutdown();
}

#[test]
fn qos_knobs_travel_the_wire() {
    let (server, data) = fixture();
    let q = query_json(&data, 1, 0, WINDOW);

    // Zero deadline: 503 with the engine's message.
    let (status, body) = request(
        &server,
        "POST",
        "/search",
        &format!(
            "{{\"query\":{q},\"epsilon\":0.5,\"opts\":{{\"deadline\":{{\"max_pages\":0,\"max_steps\":0}}}}}}"
        ),
    );
    assert_eq!(status, 503, "{body}");
    assert!(Json::parse(&body).unwrap().get("error").is_some());

    // Generous deadline: fine, and the spend is reported.
    let (status, body) = request(
        &server,
        "POST",
        "/search",
        &format!(
            "{{\"query\":{q},\"epsilon\":0.5,\"opts\":{{\"deadline\":{{\"max_pages\":100000,\"max_steps\":100000}},\"degradation\":\"strict\"}}}}"
        ),
    );
    assert_eq!(status, 200, "{body}");
    let stats = Json::parse(&body).unwrap().get("stats").cloned().unwrap();
    assert!(stats.get("steps_spent").and_then(Json::as_u64).unwrap() > 0);

    // Cost limits prune: an impossible a-range yields zero matches but
    // counts the rejects.
    let (status, body) = request(
        &server,
        "POST",
        "/search",
        &format!("{{\"query\":{q},\"epsilon\":0.5,\"opts\":{{\"a_range\":[50,60]}}}}"),
    );
    assert_eq!(status, 200);
    let j = Json::parse(&body).unwrap();
    assert_eq!(j.get("total_matches").and_then(Json::as_u64), Some(0));
    assert!(
        j.get("stats")
            .unwrap()
            .get("cost_rejected")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    server.shutdown();
}

#[test]
fn protocol_level_errors_are_answered_not_dropped() {
    let (server, _) = fixture();

    // Malformed request line.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"BOGUS\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 400);
    assert!(Json::parse(&body).unwrap().get("error").is_some());

    // Oversized declared body.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"POST /search HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let (status, _) = parse_response(&raw);
    assert_eq!(status, 413);

    // Unknown route and unsupported method.
    assert_eq!(request(&server, "GET", "/nope", "").0, 404);
    assert_eq!(request(&server, "PUT", "/health", "").0, 405);
    server.shutdown();
}

#[test]
fn batch_and_knn_over_the_wire() {
    let (server, data) = fixture();
    let q0 = query_json(&data, 0, 20, WINDOW);
    let q1 = query_json(&data, 3, 40, WINDOW);

    let (status, body) = request(
        &server,
        "POST",
        "/batch",
        &format!("{{\"queries\":[{q0},{q1}],\"epsilon\":0.4,\"workers\":2}}"),
    );
    assert_eq!(status, 200, "{body}");
    let j = Json::parse(&body).unwrap();
    let results = j.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 2);
    for r in results {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    }

    let (status, body) = request(
        &server,
        "POST",
        "/knn",
        &format!("{{\"query\":{q0},\"k\":5}}"),
    );
    assert_eq!(status, 200, "{body}");
    let j = Json::parse(&body).unwrap();
    let matches = j.get("matches").and_then(Json::as_array).unwrap();
    assert_eq!(matches.len(), 5);
    // kNN results arrive sorted by ascending distance.
    let dists: Vec<f64> = matches
        .iter()
        .map(|m| m.get("distance").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    server.shutdown();
}

/// Reads exactly one response (head + `Content-Length` body) off a
/// kept-alive stream, leaving the connection usable for the next one.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, bool) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Head: read byte-wise until the terminator (test-sized traffic).
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "head cut short");
        raw.push(byte[0]);
    }
    let head = String::from_utf8(raw.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    let keep_alive = head.contains("Connection: keep-alive\r\n");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    raw.extend_from_slice(&body);
    let (status, payload) = parse_response(&raw);
    (status, payload, keep_alive)
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, data) = fixture();
    let q = query_json(&data, 0, 7, WINDOW);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Several requests over the same socket: each response must arrive,
    // announce keep-alive, and leave the connection usable.
    for _ in 0..3 {
        let body = format!("{{\"query\":{q},\"epsilon\":0.25}}");
        let head = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let (status, payload, keep_alive) = read_one_response(&mut stream);
        assert_eq!(status, 200, "{payload}");
        assert!(keep_alive, "mid-connection responses stay keep-alive");
        assert!(Json::parse(&payload).unwrap().get("matches").is_some());
    }

    // An explicit `Connection: close` ends the conversation.
    stream
        .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _, keep_alive) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(!keep_alive, "the final response must announce close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");
    server.shutdown();
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    let data = MarketSimulator::new(MarketConfig::small(4, 80, 99)).generate();
    let engine = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
    let server = Server::start(
        engine,
        &ServerConfig {
            keep_alive_requests: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let get = b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n";

    stream.write_all(get).unwrap();
    let (status, _, keep_alive) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(keep_alive, "first of two allowed requests keeps the socket");

    stream.write_all(get).unwrap();
    let (status, _, keep_alive) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(!keep_alive, "the cap's last response must announce close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close at the request cap");
    server.shutdown();
}

#[test]
fn shutdown_finishes_inflight_work_and_stops_accepting() {
    let (server, data) = fixture();
    let q = query_json(&data, 0, 0, WINDOW);
    let (status, _) = request(
        &server,
        "POST",
        "/search",
        &format!("{{\"query\":{q},\"epsilon\":0.3}}"),
    );
    assert_eq!(status, 200);
    let addr = server.addr();
    server.shutdown();
    // After shutdown the port no longer answers.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut s) = refused {
        // The OS may still accept briefly; the connection must go nowhere.
        let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = s.write_all(b"GET /health HTTP/1.1\r\n\r\n");
        let mut buf = Vec::new();
        let n = s.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "no worker should answer after shutdown");
    }
}
