//! Soak test: concurrent clients hammering a live server with mixed
//! endpoints and mixed QoS. The assertions are the server's service
//! contract under load:
//!
//! - **zero malformed responses** — every reply parses as HTTP with a
//!   JSON body matching its Content-Length;
//! - **bounded tail latency** — p99 stays under a generous ceiling (this
//!   is a hang detector, not a performance benchmark);
//! - **saturation sheds, never hangs** — with a one-worker, one-slot
//!   queue, a flood gets a mix of answers and fast 429s, and every
//!   connection resolves.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsss_core::{EngineConfig, SearchEngine};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_server::json::Json;
use tsss_server::{Server, ServerConfig};

const WINDOW: usize = 16;

fn build_engine(companies: usize, days: usize) -> (SearchEngine, Vec<Series>) {
    let data = MarketSimulator::new(MarketConfig::small(companies, days, 4242)).generate();
    let engine = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
    (engine, data)
}

/// One request; panics on any protocol-level malformation.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    assert!(
        !raw.is_empty(),
        "connection must not close without a response"
    );
    let text = String::from_utf8(raw).expect("response must be UTF-8");
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .expect("response must have a head terminator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .parse()
        .unwrap();
    assert_eq!(payload.len(), len, "body length must match Content-Length");
    Json::parse(payload).expect("every body must be valid JSON");
    (status, payload.to_string())
}

fn q_json(data: &[Series], series: usize, offset: usize) -> String {
    Json::Arr(
        data[series].values[offset..offset + WINDOW]
            .iter()
            .map(|v| Json::from(*v))
            .collect(),
    )
    .encode()
}

#[test]
fn mixed_endpoint_soak_yields_no_malformed_responses_and_bounded_p99() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 25;

    let (engine, data) = build_engine(6, 120);
    let server = Server::start(
        engine,
        &ServerConfig {
            workers: 4,
            queue_capacity: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let data = Arc::new(data);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let data = Arc::clone(&data);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
                let mut statuses = Vec::with_capacity(QUERIES_PER_CLIENT);
                for i in 0..QUERIES_PER_CLIENT {
                    let series = (c + i) % data.len();
                    let offset = (i * 7) % (data[series].values.len() - WINDOW);
                    let q = q_json(&data, series, offset);
                    // Mix endpoints and QoS: every 5th request runs under a
                    // deliberately tight deadline and must 503, not hang.
                    let (path, body) = match i % 5 {
                        0 => ("/knn".to_string(), format!("{{\"query\":{q},\"k\":3}}")),
                        1 => (
                            "/znormalized".to_string(),
                            format!("{{\"query\":{q},\"z_eps\":0.4}}"),
                        ),
                        2 => (
                            "/search".to_string(),
                            format!(
                                "{{\"query\":{q},\"epsilon\":0.4,\"opts\":{{\"deadline\":{{\"max_pages\":0,\"max_steps\":0}}}}}}"
                            ),
                        ),
                        3 => (
                            "/batch".to_string(),
                            format!("{{\"queries\":[{q},{q}],\"epsilon\":0.3,\"workers\":2}}"),
                        ),
                        _ => (
                            "/search".to_string(),
                            format!("{{\"query\":{q},\"epsilon\":0.5,\"limit\":10}}"),
                        ),
                    };
                    let t0 = Instant::now();
                    let (status, _) = request(addr, "POST", &path, &body);
                    latencies.push(t0.elapsed());
                    statuses.push((i % 5, status));
                }
                (latencies, statuses)
            })
        })
        .collect();

    let mut all_latencies = Vec::new();
    for h in handles {
        let (latencies, statuses) = h.join().expect("client thread must not panic");
        for (kind, status) in statuses {
            match kind {
                2 => assert_eq!(status, 503, "tight-deadline requests must 503"),
                _ => assert_eq!(status, 200, "healthy requests must succeed"),
            }
        }
        all_latencies.extend(latencies);
    }

    all_latencies.sort();
    let p99 = all_latencies[all_latencies.len() * 99 / 100];
    assert!(
        p99 < Duration::from_secs(10),
        "p99 {p99:?} exceeds the hang ceiling"
    );

    // The server accounted for everything it served.
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&body).unwrap();
    let total = m.get("requests_total").and_then(Json::as_u64).unwrap();
    assert!(total >= (CLIENTS * QUERIES_PER_CLIENT) as u64);
    let deadline_hits = m
        .get("deadline_exceeded_total")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        deadline_hits >= (CLIENTS * QUERIES_PER_CLIENT / 5) as u64,
        "every tight-deadline request must be counted"
    );
    server.shutdown();
}

#[test]
fn saturating_the_admission_queue_sheds_with_429_not_hangs() {
    // One worker, one queue slot: the server can hold two connections;
    // everything beyond that must shed fast.
    let (engine, data) = build_engine(8, 250);
    let server = Server::start(
        engine,
        &ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let data = Arc::new(data);

    // A slow request to occupy the single worker: a large batch over a
    // fat epsilon verifies thousands of windows per query.
    let occupier = {
        let data = Arc::clone(&data);
        std::thread::spawn(move || {
            let q = q_json(&data, 0, 5);
            let queries: Vec<String> = (0..60).map(|_| q.clone()).collect();
            let body = format!(
                "{{\"queries\":[{}],\"epsilon\":50.0,\"workers\":1}}",
                queries.join(",")
            );
            let (status, _) = request(addr, "POST", "/batch", &body);
            assert_eq!(status, 200);
        })
    };
    // Give the occupier time to reach the worker.
    std::thread::sleep(Duration::from_millis(100));

    let shed = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let flood: Vec<_> = (0..24)
        .map(|i| {
            let data = Arc::clone(&data);
            let shed = Arc::clone(&shed);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let q = q_json(&data, i % 8, 3);
                let t0 = Instant::now();
                let (status, _) = request(
                    addr,
                    "POST",
                    "/search",
                    &format!("{{\"query\":{q},\"epsilon\":0.4}}"),
                );
                let elapsed = t0.elapsed();
                match status {
                    429 => {
                        // Relaxed: independent test counters.
                        shed.fetch_add(1, Ordering::Relaxed);
                        assert!(
                            elapsed < Duration::from_secs(5),
                            "a shed must be fast, got {elapsed:?}"
                        );
                    }
                    200 => {
                        // Relaxed: independent test counters.
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected status {other} under saturation"),
                }
            })
        })
        .collect();
    for h in flood {
        h.join().expect("flood client must resolve, not hang");
    }
    occupier.join().unwrap();

    // Relaxed loads: all writers joined above.
    let shed = shed.load(Ordering::Relaxed);
    let served = served.load(Ordering::Relaxed);
    assert_eq!(shed + served, 24, "every connection resolved");
    assert!(shed > 0, "a 2-slot server flooded by 24 must shed some");

    // The sheds are visible in the metrics.
    let (_, body) = request(addr, "GET", "/metrics", "");
    let m = Json::parse(&body).unwrap();
    assert_eq!(m.get("shed_total").and_then(Json::as_u64), Some(shed));
    server.shutdown();
}
