//! `tsss-server` — an HTTP/1.1 front door for the tsss search engine.
//!
//! Dependency-free by workspace policy: the listener is
//! [`std::net::TcpListener`], concurrency is a fixed pool of OS threads,
//! and JSON is the in-crate [`json`] module. The design goal is the same
//! one the engine's deadlines serve — **bounded work everywhere**:
//!
//! - Admission is a bounded queue ([`admission`]). When every worker is
//!   busy and the queue is full, new connections get an immediate HTTP
//!   429 instead of queueing without limit. Overload degrades into fast,
//!   explicit rejections, never unbounded latency.
//! - Per-request QoS rides in the body: `opts.deadline` /
//!   `opts.page_budget` / `opts.degradation` map straight onto the
//!   engine's [`tsss_core::Deadline`] and
//!   [`tsss_core::DegradationPolicy`]. A spent budget is HTTP 503.
//! - Reads are bounded ([`http`]): head and body caps, plus a socket
//!   read timeout so a stalled client cannot pin a worker.
//!
//! Every response carries the request's [`tsss_core::SearchStats`];
//! `/metrics` aggregates them across the server's lifetime.

#![forbid(unsafe_code)]

pub mod admission;
pub mod api;
pub mod http;
pub mod json;
pub mod metrics;
pub mod routes;

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tsss_core::{DurableEngine, SearchEngine};

use admission::{AdmissionQueue, PushOutcome};
use routes::AppState;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Connections allowed to wait for a worker before shedding with 429.
    pub queue_capacity: usize,
    /// Per-socket read timeout — a stalled client is cut off, not waited
    /// on. On a kept-alive connection this doubles as the idle timeout
    /// between requests: a client that sends nothing for this long is
    /// disconnected.
    pub read_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the last response). Bounds how long one
    /// client can pin a worker; clamped to at least 1.
    pub keep_alive_requests: usize,
    /// Fault domains serving queries. `1` (the default) serves the engine
    /// directly; `N > 1` partitions every published snapshot across N
    /// independent shards — scatter-gather merge with per-shard circuit
    /// breakers, so a corrupt or budget-exhausted shard degrades only its
    /// slice of each answer (`stats.degraded_shards`). Clamped to the
    /// number of series. Ingest stays single-master either way.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            keep_alive_requests: 32,
            shards: 1,
        }
    }
}

/// A running server: acceptor thread + worker pool over one engine.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    queue: Arc<AdmissionQueue<TcpStream>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and starts accepting over a volatile
    /// (memory-only) engine: `/append` acknowledgements do not survive a
    /// crash and `/save` is rejected.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(engine: SearchEngine, cfg: &ServerConfig) -> io::Result<Server> {
        Self::start_with_state(Arc::new(AppState::new_sharded(engine, cfg.shards)), cfg)
    }

    /// As [`Server::start`], but over a durable master engine: every
    /// acknowledged `/append` is fsynced to the write-ahead log first, and
    /// `/save` checkpoints the engine and truncates the log.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start_durable(master: DurableEngine, cfg: &ServerConfig) -> io::Result<Server> {
        Self::start_with_state(
            Arc::new(AppState::new_durable_sharded(master, cfg.shards)),
            cfg,
        )
    }

    fn start_with_state(state: Arc<AppState>, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new(cfg.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let read_timeout = cfg.read_timeout;
                let max_requests = cfg.keep_alive_requests.max(1);
                std::thread::spawn(move || worker_loop(&state, &queue, read_timeout, max_requests))
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &state, &queue, &stop))
        };

        Ok(Server {
            addr,
            state,
            queue,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics and engine), e.g. for inspection in tests.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Signals shutdown and waits for every thread: in-flight requests
    /// finish, queued connections drain, new ones are refused.
    pub fn shutdown(mut self) {
        // Ordering::Relaxed: a plain stop flag — the acceptor re-checks it
        // on its next loop turn; no other memory is published through it.
        self.stop.store(true, Ordering::Relaxed);
        // The acceptor blocks in accept(); a dummy connection unblocks it
        // so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the server stops on its own (it normally never does) —
    /// what `tsss serve` parks the main thread on.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &AppState,
    queue: &AdmissionQueue<TcpStream>,
    stop: &AtomicBool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        // Ordering::Relaxed: stop flag only — see `Server::shutdown`.
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match queue.try_push(stream) {
            PushOutcome::Admitted => {}
            PushOutcome::Shed(mut stream) => {
                // Load shed: a fast explicit 429 written from the acceptor
                // itself — the whole point of bounding the queue. The
                // request must be drained first: closing with unread bytes
                // in the receive buffer sends an RST, which discards the
                // 429 before the client reads it. A well-behaved client
                // has already sent its whole (bounded) request, so the
                // drain is immediate; a stalled one is cut off by the
                // short timeout.
                state.metrics.record_status(429);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let _ = http::read_request(&mut stream, &mut Vec::new());
                let _ = http::write_response(
                    &mut stream,
                    429,
                    &api::error_body("server saturated, retry later"),
                );
            }
            PushOutcome::Closed(_) => return,
        }
    }
}

fn worker_loop(
    state: &AppState,
    queue: &AdmissionQueue<TcpStream>,
    read_timeout: Duration,
    max_requests: usize,
) {
    while let Some(mut stream) = queue.pop() {
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        serve_connection(state, &mut stream, max_requests);
    }
}

/// Serves up to `max_requests` requests on one kept-alive connection.
/// The connection closes when the client asks (`Connection: close`,
/// HTTP/1.0), when the cap is reached (the last response announces
/// `Connection: close`), on any protocol error, or when the socket idles
/// past the read timeout.
fn serve_connection(state: &AppState, stream: &mut TcpStream, max_requests: usize) {
    let mut carry = Vec::new();
    for served in 0..max_requests {
        match http::read_request(stream, &mut carry) {
            Ok(req) => {
                let keep_alive = req.keep_alive && served + 1 < max_requests;
                let (status, body) = routes::handle(state, &req.method, &req.path, &req.body);
                if http::write_response_conn(stream, status, &body, keep_alive).is_err() {
                    break;
                }
                if !keep_alive {
                    break;
                }
            }
            Err(http::HttpError::Closed) => {
                // The client hung up between requests — normal end of a
                // kept-alive connection.
                break;
            }
            Err(http::HttpError::TooLarge(what)) => {
                state.metrics.record_status(413);
                let _ = http::write_response(
                    stream,
                    413,
                    &api::error_body(&format!("{what} too large")),
                );
                break;
            }
            Err(http::HttpError::Malformed(msg)) => {
                state.metrics.record_status(400);
                let _ = http::write_response(stream, 400, &api::error_body(&msg));
                break;
            }
            Err(http::HttpError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Mid-request stall on the first request gets an explicit
                // 408; a kept-alive connection idling out afterwards is
                // routine and closes silently.
                if served == 0 {
                    state.metrics.record_status(408);
                    let _ =
                        http::write_response(stream, 408, &api::error_body("request timed out"));
                }
                break;
            }
            Err(http::HttpError::Io(_)) => {
                // Connection died; nothing to answer.
                break;
            }
        }
    }
    let _ = stream.flush();
}
