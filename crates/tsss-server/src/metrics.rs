//! Server-wide counters, aggregated across workers and served at `/metrics`.
//!
//! Counters are monotone event tallies — the classic case where relaxed
//! atomics are correct: each increment is independent, nothing orders
//! against them, and `/metrics` only needs an eventually-consistent view.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Cumulative counters since server start.
#[derive(Default)]
pub struct Metrics {
    /// Requests fully served (any status except shed/IO-abort).
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub requests_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub requests_client_error: AtomicU64,
    /// Responses with a 5xx status.
    pub requests_server_error: AtomicU64,
    /// Connections shed with 429 by the admission queue.
    pub shed_total: AtomicU64,
    /// Requests that ended in `DeadlineExceeded` or `PageBudgetExceeded`.
    pub deadline_exceeded_total: AtomicU64,
    /// Sum of `SearchStats::candidates` over all search responses.
    pub candidates_total: AtomicU64,
    /// Sum of `SearchStats::verified` over all search responses.
    pub verified_total: AtomicU64,
    /// Sum of `SearchStats::pages_touched` over all search responses.
    pub pages_total: AtomicU64,
    /// `/append` requests that reached the engine (durable or volatile,
    /// successful or not).
    pub appends_total: AtomicU64,
    /// Snapshot publications: how many times a fresh immutable engine was
    /// swapped in for readers after a mutation.
    pub snapshots_published_total: AtomicU64,
    /// Background STR rebuilds triggered by the insert-degradation
    /// threshold after an append.
    pub str_rebuilds_total: AtomicU64,
    /// Successful `/save` checkpoints (each truncates the WAL).
    pub saves_total: AtomicU64,
}

impl Metrics {
    /// Records a completed response with the given HTTP status.
    pub fn record_status(&self, status: u16) {
        // Ordering::Relaxed: independent monotone counters; no other memory
        // is published by these increments and readers tolerate staleness.
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let bucket = match status {
            200..=299 => &self.requests_ok,
            400..=499 => &self.requests_client_error,
            _ => &self.requests_server_error,
        };
        // Ordering::Relaxed: same monotone-counter argument as above.
        bucket.fetch_add(1, Ordering::Relaxed);
        if status == 429 {
            // Ordering::Relaxed: same monotone-counter argument as above.
            self.shed_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one request's search statistics into the aggregate tallies.
    pub fn record_search(&self, candidates: u64, verified: u64, pages: u64) {
        self.candidates_total
            // Ordering::Relaxed: independent monotone counters (see record_status).
            .fetch_add(candidates, Ordering::Relaxed);
        // Ordering::Relaxed: independent monotone counters (see record_status).
        self.verified_total.fetch_add(verified, Ordering::Relaxed);
        // Ordering::Relaxed: independent monotone counters (see record_status).
        self.pages_total.fetch_add(pages, Ordering::Relaxed);
    }

    /// Notes a request that ran out of deadline or page budget.
    pub fn record_deadline_exceeded(&self) {
        // Ordering::Relaxed: independent monotone counter (see record_status).
        self.deadline_exceeded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps one of the ingest-path counters by one.
    pub fn bump(&self, counter: &AtomicU64) {
        // Ordering::Relaxed: independent monotone counter (see record_status).
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as the `/metrics` JSON payload.
    pub fn to_json(&self) -> Json {
        // Ordering::Relaxed on every load: the snapshot is advisory; counters
        // may be mid-update and slight skew between fields is acceptable.
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::obj([
            ("requests_total", load(&self.requests_total)),
            ("requests_ok", load(&self.requests_ok)),
            ("requests_client_error", load(&self.requests_client_error)),
            ("requests_server_error", load(&self.requests_server_error)),
            ("shed_total", load(&self.shed_total)),
            (
                "deadline_exceeded_total",
                load(&self.deadline_exceeded_total),
            ),
            ("candidates_total", load(&self.candidates_total)),
            ("verified_total", load(&self.verified_total)),
            ("pages_total", load(&self.pages_total)),
            ("appends_total", load(&self.appends_total)),
            (
                "snapshots_published_total",
                load(&self.snapshots_published_total),
            ),
            ("str_rebuilds_total", load(&self.str_rebuilds_total)),
            ("saves_total", load(&self.saves_total)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_land_in_the_right_buckets() {
        let m = Metrics::default();
        m.record_status(200);
        m.record_status(201);
        m.record_status(400);
        m.record_status(429);
        m.record_status(500);
        m.record_status(503);
        let j = m.to_json();
        let get = |k: &str| j.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(get("requests_total"), 6);
        assert_eq!(get("requests_ok"), 2);
        assert_eq!(get("requests_client_error"), 2);
        assert_eq!(get("requests_server_error"), 2);
        assert_eq!(get("shed_total"), 1);
    }

    #[test]
    fn search_stats_accumulate() {
        let m = Metrics::default();
        m.record_search(10, 7, 3);
        m.record_search(5, 2, 1);
        m.record_deadline_exceeded();
        let j = m.to_json();
        let get = |k: &str| j.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(get("candidates_total"), 15);
        assert_eq!(get("verified_total"), 9);
        assert_eq!(get("pages_total"), 4);
        assert_eq!(get("deadline_exceeded_total"), 1);
    }
}
