//! Translation between the JSON wire format and the engine's types.
//!
//! Request bodies carry the engine's QoS knobs directly: an `opts` object
//! maps onto [`SearchOptions`] — `deadline.{max_pages,max_steps}` become a
//! [`Deadline`], `page_budget` the index-page cap, `degradation` one of
//! `"fallback"` / `"error"` / `"strict"`, `method` one of `"slab"` /
//! `"spheres"`, and `a_range` / `b_range` the transformation-cost limits.
//! Every successful search response carries its full
//! [`tsss_core::SearchStats`] so callers can see what their budget bought.

use tsss_core::{
    BreakerState, CostLimit, Deadline, DegradationPolicy, EngineError, HealthReport, RepairReport,
    SearchOptions, SearchResult,
};

use crate::json::Json;

/// A request rejected before (or by) the engine: HTTP status plus a
/// message safe to echo to the client.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable diagnosis, returned in the `error` field.
    pub message: String,
    /// Optional operator guidance, returned in the `hint` field — e.g.
    /// which endpoint repairs the condition behind the error.
    pub hint: Option<String>,
}

impl ApiError {
    /// A 400 with the given message.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches operator guidance to the error body.
    pub fn with_hint(mut self, hint: impl Into<String>) -> ApiError {
        self.hint = Some(hint.into());
        self
    }

    /// The JSON error payload: `{"error": ...}` plus `hint` when present.
    pub fn body(&self) -> String {
        let mut j = Json::obj([("error", Json::from(self.message.as_str()))]);
        if let (Some(h), Json::Obj(map)) = (&self.hint, &mut j) {
            map.insert("hint".to_string(), Json::from(h.as_str()));
        }
        j.encode()
    }
}

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> ApiError {
        ApiError {
            status: status_of(&e),
            message: e.to_string(),
            hint: None,
        }
    }
}

/// Maps an engine error to its HTTP status.
///
/// Malformed queries are the client's fault (400/404/413); exhausted
/// budgets are explicit service degradation (503, the client may retry
/// with a looser deadline); corruption is the server's problem (500).
pub fn status_of(e: &EngineError) -> u16 {
    match e {
        EngineError::QueryLength { .. }
        | EngineError::QueryTooShort { .. }
        | EngineError::InvalidEpsilon(_)
        | EngineError::DatasetTooSmall { .. } => 400,
        EngineError::UnknownSeries(_) => 404,
        EngineError::TooLarge { .. } => 413,
        // A failed shard is explicit service degradation like a spent
        // budget: the data is intact, a retry after repair succeeds.
        EngineError::PageBudgetExceeded { .. }
        | EngineError::DeadlineExceeded { .. }
        | EngineError::ShardUnavailable { .. } => 503,
        // A WAL failure means the append was not acknowledged — a server-side
        // durability fault the client should retry, like corruption a 500.
        EngineError::Corrupt { .. } | EngineError::Wal { .. } => 500,
    }
}

/// True when the error is explicit service degradation — a spent deadline
/// or page budget, or a shard that failed with one (a sharded snapshot
/// reports per-shard exhaustion as [`EngineError::ShardUnavailable`]).
/// These are the 503s the `/metrics` `deadline_exceeded_total` counter
/// tracks, matching the grouping in [`status_of`].
pub fn is_budget_exhaustion(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::DeadlineExceeded { .. }
            | EngineError::PageBudgetExceeded { .. }
            | EngineError::ShardUnavailable { .. }
    )
}

/// The standard error payload: `{"error": ...}`.
pub fn error_body(message: &str) -> String {
    Json::obj([("error", Json::from(message))]).encode()
}

/// Extracts a required array of finite numbers.
pub fn require_f64_array(body: &Json, key: &str) -> Result<Vec<f64>, ApiError> {
    let arr = body
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request(format!("missing array field {key:?}")))?;
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| ApiError::bad_request(format!("{key:?} must hold finite numbers")))
        })
        .collect()
}

/// Extracts a required finite number.
pub fn require_f64(body: &Json, key: &str) -> Result<f64, ApiError> {
    body.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad_request(format!("missing numeric field {key:?}")))
}

/// Extracts a required non-negative integer.
pub fn require_u64(body: &Json, key: &str) -> Result<u64, ApiError> {
    body.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::bad_request(format!("missing integer field {key:?}")))
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ApiError::bad_request(format!("{key:?} must be a non-negative integer"))
        }),
    }
}

fn opt_range(body: &Json, key: &str) -> Result<Option<(f64, f64)>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let arr = v
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| ApiError::bad_request(format!("{key:?} must be [lo, hi]")))?;
            let lo = arr[0]
                .as_f64()
                .ok_or_else(|| ApiError::bad_request(format!("{key:?} bounds must be finite")))?;
            let hi = arr[1]
                .as_f64()
                .ok_or_else(|| ApiError::bad_request(format!("{key:?} bounds must be finite")))?;
            Ok(Some((lo, hi)))
        }
    }
}

/// Decodes the optional `opts` object of a request body into
/// [`SearchOptions`]. Absent fields keep the engine defaults.
pub fn parse_options(body: &Json) -> Result<SearchOptions, ApiError> {
    let mut opts = SearchOptions::default();
    let Some(o) = body.get("opts") else {
        return Ok(opts);
    };
    if !matches!(o, Json::Obj(_)) {
        return Err(ApiError::bad_request("\"opts\" must be an object"));
    }

    if let Some(d) = o.get("deadline") {
        if !matches!(d, Json::Null) {
            opts.deadline = Some(Deadline {
                max_pages: require_u64(d, "max_pages")?,
                max_steps: require_u64(d, "max_steps")?,
            });
        }
    }
    opts.page_budget = opt_u64(o, "page_budget")?;
    if let Some(policy) = o.get("degradation") {
        opts.degradation = match policy.as_str() {
            Some("fallback") => DegradationPolicy::SeqScanFallback,
            Some("error") => DegradationPolicy::Error,
            Some("strict") => DegradationPolicy::Strict,
            _ => {
                return Err(ApiError::bad_request(
                    "\"degradation\" must be \"fallback\", \"error\", or \"strict\"",
                ))
            }
        };
    }
    if let Some(method) = o.get("method") {
        opts.method = match method.as_str() {
            Some("slab") => tsss_geometry::penetration::PenetrationMethod::EnteringExiting,
            Some("spheres") => tsss_geometry::penetration::PenetrationMethod::BoundingSpheres,
            _ => {
                return Err(ApiError::bad_request(
                    "\"method\" must be \"slab\" or \"spheres\"",
                ))
            }
        };
    }
    opts.cost = CostLimit {
        a_range: opt_range(o, "a_range")?,
        b_range: opt_range(o, "b_range")?,
    };
    Ok(opts)
}

fn breaker_str(b: BreakerState) -> &'static str {
    match b {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

/// Encodes one search result: matches (optionally truncated to `limit`)
/// plus the full per-query statistics.
pub fn encode_result(res: &SearchResult, limit: Option<usize>) -> Json {
    let shown = limit.unwrap_or(res.matches.len()).min(res.matches.len());
    let matches: Vec<Json> = res.matches[..shown]
        .iter()
        .map(|m| {
            Json::obj([
                ("series", Json::from(m.id.series_idx())),
                ("offset", Json::from(m.id.offset_idx())),
                ("a", Json::from(m.transform.a)),
                ("b", Json::from(m.transform.b)),
                ("distance", Json::from(m.distance)),
            ])
        })
        .collect();
    let s = &res.stats;
    let stats = Json::obj([
        ("candidates", Json::from(s.candidates)),
        ("verified", Json::from(s.verified)),
        ("false_alarms", Json::from(s.false_alarms)),
        ("cost_rejected", Json::from(s.cost_rejected)),
        ("index_pages", Json::from(s.index_pages)),
        ("data_pages", Json::from(s.data_pages)),
        ("steps_spent", Json::from(s.steps_spent)),
        ("retries", Json::from(s.retries)),
        ("degraded", Json::from(s.degraded)),
        (
            "degraded_reason",
            match &s.degraded_reason {
                Some(r) => Json::from(r.as_str()),
                None => Json::Null,
            },
        ),
        ("breaker", Json::from(breaker_str(s.breaker))),
        ("degraded_shards", Json::from(s.degraded_shards)),
        ("shards_ok", Json::from(s.shards_ok)),
        ("epoch", Json::from(s.epoch)),
        ("wal_tail_records", Json::from(s.wal_tail_records)),
        (
            "elapsed_us",
            Json::from(u64::try_from(s.elapsed.as_micros()).unwrap_or(u64::MAX)),
        ),
    ]);
    Json::obj([
        ("total_matches", Json::from(res.matches.len())),
        ("matches", Json::Arr(matches)),
        ("stats", stats),
    ])
}

/// Encodes the `/health` payload.
pub fn encode_health(h: &HealthReport) -> Json {
    Json::obj([
        ("breaker", Json::from(breaker_str(h.breaker))),
        ("strikes", Json::from(u64::from(h.strikes))),
        ("seqscan_served", Json::from(h.seqscan_served)),
        ("breaker_trips", Json::from(h.breaker_trips)),
        (
            "quarantined_pages",
            Json::Arr(
                h.quarantined_pages
                    .iter()
                    .map(|p| Json::from(u64::from(*p)))
                    .collect(),
            ),
        ),
        ("index_retries", Json::from(h.index_retries)),
        ("data_retries", Json::from(h.data_retries)),
        ("append_tail_unindexed", Json::from(h.append_tail_unindexed)),
        ("max_norm_loose", Json::from(h.max_norm_loose)),
        ("wal_tail_records", Json::from(h.wal_tail_records)),
        ("wal_replayed", Json::from(h.wal_replayed)),
        ("repair_recommended", Json::from(h.repair_recommended())),
    ])
}

/// Encodes the `/repair` payload.
pub fn encode_repair(r: &RepairReport) -> Json {
    Json::obj([
        ("windows_reindexed", Json::from(r.windows_reindexed)),
        (
            "quarantine_cleared",
            Json::Arr(
                r.quarantine_cleared
                    .iter()
                    .map(|p| Json::from(u64::from(*p)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_when_opts_absent() {
        let body = Json::parse(r#"{"query":[1,2]}"#).unwrap();
        let opts = parse_options(&body).unwrap();
        assert_eq!(opts, SearchOptions::default());
    }

    #[test]
    fn full_opts_decode() {
        let body = Json::parse(
            r#"{"opts":{
                "deadline":{"max_pages":100,"max_steps":50},
                "page_budget":64,
                "degradation":"strict",
                "method":"spheres",
                "a_range":[0.5,2],
                "b_range":[-10,10]
            }}"#,
        )
        .unwrap();
        let opts = parse_options(&body).unwrap();
        assert_eq!(
            opts.deadline,
            Some(Deadline {
                max_pages: 100,
                max_steps: 50
            })
        );
        assert_eq!(opts.page_budget, Some(64));
        assert_eq!(opts.degradation, DegradationPolicy::Strict);
        assert_eq!(
            opts.method,
            tsss_geometry::penetration::PenetrationMethod::BoundingSpheres
        );
        assert_eq!(opts.cost.a_range, Some((0.5, 2.0)));
        assert_eq!(opts.cost.b_range, Some((-10.0, 10.0)));
    }

    #[test]
    fn bad_opts_are_400() {
        for bad in [
            r#"{"opts":{"degradation":"maybe"}}"#,
            r#"{"opts":{"method":"cubes"}}"#,
            r#"{"opts":{"deadline":{"max_pages":3}}}"#,
            r#"{"opts":{"page_budget":-1}}"#,
            r#"{"opts":{"a_range":[1]}}"#,
            r#"{"opts":42}"#,
        ] {
            let body = Json::parse(bad).unwrap();
            let err = parse_options(&body).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
    }

    #[test]
    fn engine_errors_map_to_statuses() {
        assert_eq!(
            status_of(&EngineError::QueryLength {
                expected: 16,
                got: 3
            }),
            400
        );
        assert_eq!(status_of(&EngineError::UnknownSeries(9)), 404);
        assert_eq!(
            status_of(&EngineError::TooLarge {
                what: "series length",
                value: 1
            }),
            413
        );
        assert_eq!(
            status_of(&EngineError::DeadlineExceeded { pages: 1, steps: 2 }),
            503
        );
        assert_eq!(
            status_of(&EngineError::PageBudgetExceeded { budget: 8 }),
            503
        );
        assert_eq!(
            status_of(&EngineError::ShardUnavailable {
                shard: 2,
                detail: "index page 4 corrupt".to_string()
            }),
            503
        );
        assert_eq!(
            status_of(&EngineError::Corrupt {
                detail: "x".to_string(),
                page: None
            }),
            500
        );
        assert_eq!(
            status_of(&EngineError::Wal {
                detail: "fsync failed".to_string()
            }),
            500
        );
    }
}
