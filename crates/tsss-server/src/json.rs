//! A minimal, dependency-free JSON value, parser and encoder.
//!
//! The workspace is offline by policy, so the server hand-rolls the same
//! JSON subset every other piece hand-rolls its dependency (`tsss-rand`
//! replaced `rand`, `tsss-analyze` replaced clippy plugins). The parser is
//! a bounded recursive-descent scanner hardened against hostile input:
//! recursion depth is capped, strings reject raw control characters, and
//! `\u` escapes validate surrogate pairs. Numbers are `f64` throughout —
//! the engine's own currency — and integral fields are range-checked on
//! extraction ([`Json::as_u64`]).
//!
//! Encoding uses Rust's shortest-round-trip `f64` formatting (`3.0`
//! encodes as `3`, still valid JSON); non-finite numbers encode as `null`,
//! since JSON has no spelling for them.

use std::collections::BTreeMap;
use std::fmt;

/// Largest integer exactly representable in an `f64` (2⁵³).
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0;

/// Maximum nesting depth the parser accepts (arrays/objects).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps encoding deterministic.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: byte offset and diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Encodes the value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip formatting; integral values print
                    // without a fraction part, which is still a JSON number.
                    out.push_str(&format!("{n}"));
                } else {
                    // JSON has no NaN/∞; null is the least-wrong encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor: an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer (rejects fractions and
    /// anything past 2⁵³, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= MAX_SAFE_INT && n.fract().abs() < f64::EPSILON => {
                // The guards above make this cast exact.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // u64 → f64 may round above 2⁵³; counters and sizes stay far below.
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(n))
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let run_start = self.pos;
            // Copy a plain run (no quote, escape, or control byte) verbatim.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > run_start {
                let seg = std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| self.err("non-UTF-8 string content"))?;
                out.push_str(seg);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // A high surrogate needs its low pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u')
                            .map_err(|_| self.err("high surrogate not followed by \\u"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u code point"))?
            }
            other => return Err(self.err(format!("unknown escape \\{}", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-3.25",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":[1,{\"b\":null}],\"c\":\"x\"}",
        ] {
            let v = Json::parse(text).unwrap();
            let re = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn floats_encode_shortest_and_round_trip() {
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(0.1).encode(), "0.1");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        let x = 0.123_456_789_012_345_67_f64;
        let enc = Json::Num(x).encode();
        let back = Json::parse(&enc).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "round trip must be exact");
    }

    #[test]
    fn string_escapes_both_ways() {
        let v = Json::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé😀");
        let enc = Json::Str("x\"y\\z\n\t\u{1}".to_string()).encode();
        assert_eq!(enc, r#""x\"y\\z\n\t\u0001""#);
        assert_eq!(
            Json::parse(&enc).unwrap().as_str().unwrap(),
            "x\"y\\z\n\t\u{1}"
        );
    }

    #[test]
    fn hostile_input_is_rejected_not_panicked() {
        for bad in [
            "",
            "[",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "\"\\udc00 lone\"",
            "1 2",
            "--1",
            "1e999",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integral_extraction_is_exact() {
        assert_eq!(Json::parse("5").unwrap().as_u64(), Some(5));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("5.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"5\"").unwrap().as_u64(), None);
    }

    #[test]
    fn object_helpers() {
        let v = Json::obj([("a", Json::from(1.0)), ("b", Json::from("x"))]);
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.encode(), r#"{"a":1,"b":"x"}"#);
    }
}
