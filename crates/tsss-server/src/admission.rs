//! Bounded admission queue: the server's load-shedding valve.
//!
//! The acceptor thread pushes accepted connections here; worker threads
//! pop them. The queue has a hard capacity — when it is full the acceptor
//! does **not** block or buffer, it sheds the connection with an HTTP 429
//! immediately. That keeps tail latency bounded under overload: a client
//! either gets a worker promptly or a fast explicit rejection, never a
//! silent multi-second stall in an unbounded backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded MPMC queue with explicit shutdown.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// Outcome of a non-blocking push. The rejected item is handed back so
/// the caller can answer it (write the 429) before dropping it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// Enqueued; a worker will pick it up.
    Admitted,
    /// Queue full — the caller must shed the item (HTTP 429).
    Shed(T),
    /// Queue closed — the server is shutting down.
    Closed(T),
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue that admits at most `capacity` waiting items.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, item: T) -> PushOutcome<T> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            // A poisoned lock means a worker panicked; treat as shutdown.
            Err(_) => return PushOutcome::Closed(item),
        };
        if inner.closed {
            return PushOutcome::Closed(item);
        }
        if inner.items.len() >= inner.capacity {
            return PushOutcome::Shed(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        PushOutcome::Admitted
    }

    /// Blocks until an item is available or the queue closes.
    /// Returns `None` only on shutdown with the queue drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(_) => return None,
        };
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(_) => return None,
            };
        }
    }

    /// Closes the queue and wakes every blocked worker. Items already
    /// queued still drain; new pushes return [`PushOutcome::Closed`].
    pub fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.closed = true;
        }
        self.ready.notify_all();
    }

    /// Number of items currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().map(|g| g.items.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_when_full_and_admits_after_drain() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), PushOutcome::Admitted);
        assert_eq!(q.try_push(2), PushOutcome::Admitted);
        assert_eq!(
            q.try_push(3),
            PushOutcome::Shed(3),
            "rejected item comes back"
        );
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), PushOutcome::Admitted);
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains_remainder() {
        let q = Arc::new(AdmissionQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // The waiter may or may not have blocked yet; either way close()
        // must resolve its pop.
        q.try_push(7);
        assert_eq!(waiter.join().unwrap(), Some(7));
        q.try_push(8);
        q.close();
        assert_eq!(q.pop(), Some(8), "queued work drains after close");
        assert_eq!(q.pop(), None, "then pops report shutdown");
        assert_eq!(q.try_push(9), PushOutcome::Closed(9));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(AdmissionQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        assert_eq!(q.try_push(p * 100 + i), PushOutcome::Admitted);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
