//! Request dispatch: path + method → engine call → JSON response.
//!
//! Concurrency model: **snapshot reads, serialized ingest.** Every query
//! endpoint clones an `Arc` to the current immutable engine snapshot and
//! searches it with no lock held, so `/search` latency is independent of
//! `/append` traffic. Mutations (`/append`, `/repair`, `/save`) serialize
//! on the ingest mutex guarding the durable master engine; after each
//! mutation the master is republished — serialized through its own
//! persistence format into a fresh engine and swapped in for readers —
//! and the snapshot epoch advances by one. The epoch and the WAL tail
//! size are stamped into every search's stats so clients can tell exactly
//! which generation answered them.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use tsss_core::{
    BreakerState, DurableEngine, EngineError, HealthReport, SearchEngine, SearchOptions,
    SearchResult, ShardedEngine,
};
use tsss_data::Series;

use crate::api::{
    self, encode_health, encode_repair, encode_result, parse_options, require_f64,
    require_f64_array, require_u64, ApiError,
};
use crate::json::Json;
use crate::metrics::Metrics;

/// Ingest-side health, cached at every snapshot publication (and after
/// `/save`) so `/health` and `/metrics` answer without touching the ingest
/// lock — they must stay responsive while an append or rebuild holds it.
#[derive(Default)]
struct IngestGauges {
    /// Mirror of [`tsss_core::HealthReport::append_tail_unindexed`] on the
    /// master engine.
    append_tail_unindexed: AtomicBool,
    /// Mirror of [`tsss_core::HealthReport::max_norm_loose`] on the master.
    max_norm_loose: AtomicBool,
    /// Acknowledged appends in the WAL, not yet folded into a save.
    wal_tail_records: AtomicU64,
    /// WAL records replayed when the master was opened.
    wal_replayed: AtomicU64,
    /// Whether appends are write-ahead logged (false for a volatile engine).
    durable: AtomicBool,
}

/// What query endpoints run against: the published immutable snapshot,
/// served either by one engine or by a scatter-gather sharded view with
/// per-shard fault isolation. Chosen at startup ([`AppState::new_sharded`]
/// / `ServerConfig::shards`) and rebuilt on every snapshot publication.
pub enum ServingSnapshot {
    /// A single engine — one fault domain, the default. Boxed so the
    /// variants stay comparably sized; the snapshot lives behind an `Arc`.
    Single(Box<SearchEngine>),
    /// N independent shards: a corrupt or budget-exhausted shard degrades
    /// only its slice of each answer (`stats.degraded_shards`).
    Sharded(ShardedEngine),
}

impl ServingSnapshot {
    /// How many fault domains serve queries (`1` for a single engine).
    pub fn num_shards(&self) -> usize {
        match self {
            ServingSnapshot::Single(_) => 1,
            ServingSnapshot::Sharded(s) => s.num_shards(),
        }
    }

    /// Total series across all fault domains.
    pub fn num_series(&self) -> usize {
        match self {
            ServingSnapshot::Single(e) => e.num_series(),
            ServingSnapshot::Sharded(s) => s.num_series(),
        }
    }

    /// Total indexed windows across all fault domains.
    pub fn num_windows(&self) -> usize {
        match self {
            ServingSnapshot::Single(e) => e.num_windows(),
            ServingSnapshot::Sharded(s) => s.num_windows(),
        }
    }

    fn stride(&self) -> usize {
        match self {
            ServingSnapshot::Single(e) => e.config().stride,
            ServingSnapshot::Sharded(s) => s.config().stride,
        }
    }

    /// Per-shard circuit-breaker positions, in shard order (one entry for
    /// a single engine).
    pub fn shard_breakers(&self) -> Vec<BreakerState> {
        match self {
            ServingSnapshot::Single(e) => vec![e.breaker_state()],
            ServingSnapshot::Sharded(s) => s.breaker_states(),
        }
    }

    /// Query-path health. A sharded snapshot folds its per-shard reports
    /// into one: worst breaker, summed lifetime counters, OR'd repair
    /// flags, and the concatenation of quarantined pages (page ids are
    /// shard-local, so the list says *whether* repair is due, not where —
    /// `shard_breakers` locates the sick domain).
    pub fn health(&self) -> HealthReport {
        match self {
            ServingSnapshot::Single(e) => e.health(),
            ServingSnapshot::Sharded(s) => {
                let mut agg = HealthReport {
                    breaker: BreakerState::Closed,
                    strikes: 0,
                    seqscan_served: 0,
                    breaker_trips: 0,
                    quarantined_pages: Vec::new(),
                    index_retries: 0,
                    data_retries: 0,
                    append_tail_unindexed: false,
                    max_norm_loose: false,
                    wal_tail_records: 0,
                    wal_replayed: 0,
                };
                for r in s.health() {
                    if breaker_rank(r.breaker) > breaker_rank(agg.breaker) {
                        agg.breaker = r.breaker;
                    }
                    // Strikes count *consecutive* corrupt probes within one
                    // domain; across domains the worst one is the signal.
                    agg.strikes = agg.strikes.max(r.strikes);
                    agg.seqscan_served += r.seqscan_served;
                    agg.breaker_trips += r.breaker_trips;
                    agg.quarantined_pages.extend(r.quarantined_pages);
                    agg.index_retries += r.index_retries;
                    agg.data_retries += r.data_retries;
                    agg.append_tail_unindexed |= r.append_tail_unindexed;
                    agg.max_norm_loose |= r.max_norm_loose;
                    agg.wal_tail_records += r.wal_tail_records;
                    agg.wal_replayed += r.wal_replayed;
                }
                agg
            }
        }
    }

    /// Range search — [`SearchEngine::search`] or the scatter-gather
    /// [`ShardedEngine::search`].
    pub fn search(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        match self {
            ServingSnapshot::Single(e) => e.search(query, epsilon, opts),
            ServingSnapshot::Sharded(s) => s.search(query, epsilon, opts),
        }
    }

    /// k-nearest search (the sharded path re-tightens the global k-th
    /// bound across shards).
    pub fn nearest_search_opts(
        &self,
        query: &[f64],
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        match self {
            ServingSnapshot::Single(e) => e.nearest_search_opts(query, k, opts),
            ServingSnapshot::Sharded(s) => s.nearest_search_opts(query, k, opts),
        }
    }

    /// z-normalized search.
    pub fn search_znormalized_opts(
        &self,
        query: &[f64],
        z_eps: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        match self {
            ServingSnapshot::Single(e) => e.search_znormalized_opts(query, z_eps, opts),
            ServingSnapshot::Sharded(s) => s.search_znormalized_opts(query, z_eps, opts),
        }
    }

    /// Long-query search (piece decomposition).
    pub fn search_long(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        match self {
            ServingSnapshot::Single(e) => e.search_long(query, epsilon, opts),
            ServingSnapshot::Sharded(s) => s.search_long(query, epsilon, opts),
        }
    }

    /// Batch search: per-query isolation either way.
    pub fn search_batch_results(
        &self,
        queries: &[Vec<f64>],
        epsilon: f64,
        opts: SearchOptions,
        workers: usize,
    ) -> Vec<Result<SearchResult, EngineError>> {
        match self {
            ServingSnapshot::Single(e) => e.search_batch_results(queries, epsilon, opts, workers),
            ServingSnapshot::Sharded(s) => s.search_batch_results(queries, epsilon, opts, workers),
        }
    }
}

/// Severity order for folding breakers across shards: an open breaker
/// anywhere outranks half-open, which outranks closed.
fn breaker_rank(b: BreakerState) -> u8 {
    match b {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    }
}

/// State shared by every worker thread.
pub struct AppState {
    /// The published immutable snapshot all query endpoints read. The lock
    /// is held only to clone or swap the `Arc` — never across a search.
    snapshot: RwLock<Arc<ServingSnapshot>>,
    /// Fault domains every publication partitions the snapshot into
    /// (`1` = serve the engine directly); fixed at startup.
    shards: usize,
    /// The durable master engine; appends, repairs and saves serialize here.
    ingest: Mutex<DurableEngine>,
    /// Snapshot generation: bumped once per publication, `0` until the
    /// first mutation.
    epoch: AtomicU64,
    /// Lock-free cache of the master's ingest-side health.
    gauges: IngestGauges,
    /// Server-wide counters.
    pub metrics: Metrics,
}

impl AppState {
    /// Wraps a volatile (memory-only) engine for serving: same API, but
    /// `/append` acknowledgements do not survive a crash and `/save` is
    /// rejected.
    pub fn new(engine: SearchEngine) -> AppState {
        Self::new_sharded(engine, 1)
    }

    /// As [`AppState::new`], but queries are served by a scatter-gather
    /// [`ShardedEngine`] over `shards` independent fault domains (clamped
    /// to the number of series; `<= 1` serves the engine directly).
    /// Ingest stays single-master: every publication re-partitions the
    /// fresh snapshot.
    pub fn new_sharded(engine: SearchEngine, shards: usize) -> AppState {
        Self::new_durable_sharded(DurableEngine::new_volatile(engine), shards)
    }

    /// Wraps a durable master engine for serving.
    pub fn new_durable(master: DurableEngine) -> AppState {
        Self::new_durable_sharded(master, 1)
    }

    /// As [`AppState::new_durable`], with queries served across `shards`
    /// fault domains (see [`AppState::new_sharded`]).
    pub fn new_durable_sharded(master: DurableEngine, shards: usize) -> AppState {
        // The first snapshot is cloned out of the master by the same
        // save/load roundtrip `publish` uses, so an engine that cannot
        // snapshot fails at startup rather than on the first mutation.
        let snapshot = make_snapshot(master.engine(), shards)
            .expect("a loaded engine must roundtrip through its own persistence format");
        let state = AppState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            shards,
            ingest: Mutex::new(master),
            epoch: AtomicU64::new(0),
            gauges: IngestGauges::default(),
            metrics: Metrics::default(),
        };
        {
            let master = lock_ingest(&state);
            state.refresh_gauges(&master);
        }
        state
    }

    /// The current snapshot generation.
    pub fn epoch(&self) -> u64 {
        // Ordering::Relaxed: the epoch is an advisory generation stamp —
        // readers correlate it loosely with the snapshot they cloned and
        // no memory is published through it.
        self.epoch.load(Ordering::Relaxed)
    }

    /// Recaches the master's ingest-side health into the lock-free gauges.
    ///
    /// Every gauge store and load is `Relaxed`: the gauges are an advisory
    /// cache refreshed under the ingest lock and read lock-free by
    /// `/health`, `/metrics` and stats stamping. Slight staleness between
    /// fields is acceptable and nothing synchronizes through them.
    fn refresh_gauges(&self, master: &DurableEngine) {
        let h = master.health();
        let g = &self.gauges;
        g.append_tail_unindexed
            // Ordering::Relaxed: advisory gauge cache (doc comment above).
            .store(h.append_tail_unindexed, Ordering::Relaxed);
        // Ordering::Relaxed: advisory gauge cache (doc comment above).
        g.max_norm_loose.store(h.max_norm_loose, Ordering::Relaxed);
        g.wal_tail_records
            // Ordering::Relaxed: advisory gauge cache (doc comment above).
            .store(h.wal_tail_records, Ordering::Relaxed);
        // Ordering::Relaxed: advisory gauge cache (doc comment above).
        g.wal_replayed.store(h.wal_replayed, Ordering::Relaxed);
        // Ordering::Relaxed: advisory gauge cache (doc comment above).
        g.durable.store(master.is_durable(), Ordering::Relaxed);
    }
}

/// Clones the current snapshot `Arc` — queries then run with no lock held.
pub fn snapshot(state: &AppState) -> Arc<ServingSnapshot> {
    // Poison recovery: this lock is held only to clone or swap the Arc,
    // never across engine work, so a poisoned lock still guards a fully
    // consistent pointer.
    state
        .snapshot
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Locks the ingest master, recovering from a poisoned mutex.
///
/// This is the **only** sanctioned way to take the ingest lock — every
/// mutation path goes through it, and `tsss-analyze`'s R7 pass
/// recognizes `lock_ingest(..)` as the blessed ingest acquisition.
/// Query paths never call it: searches run on a cloned snapshot `Arc`
/// (see [`snapshot`]), so a slow ingest can never block a reader.
///
/// A worker that panicked mid-mutation may have left a half-applied
/// append on the master (values stored, windows not yet indexed). The
/// guard data is still a valid engine, so recovery is: take it, and if
/// the health report shows an unindexed tail, repair before serving the
/// next writer — otherwise every later search of a published snapshot
/// would silently miss the tail windows.
fn lock_ingest(state: &AppState) -> MutexGuard<'_, DurableEngine> {
    match state.ingest.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut master = poisoned.into_inner();
            if master.engine().health().append_tail_unindexed {
                // analyze::allow(result-discipline): best-effort tail repair on poison recovery — on failure the unindexed tail stays visible in `/health` (repair_recommended) and the next explicit `/repair` surfaces the error.
                let _ = master.engine_mut().repair();
            }
            master
        }
    }
}

/// Publishes the master's current state as a fresh immutable snapshot and
/// bumps the epoch. Runs under the ingest lock; readers only ever block
/// for the pointer swap.
fn publish(state: &AppState, master: &DurableEngine) -> Result<u64, ApiError> {
    let fresh = make_snapshot(master.engine(), state.shards).map_err(|e| ApiError {
        status: 500,
        message: format!("snapshot publish failed: {e}"),
        hint: Some(
            "the master engine and its WAL are intact; readers keep the previous \
                 snapshot — retry the request"
                .to_string(),
        ),
    })?;
    {
        let mut slot = state
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::new(fresh);
    }
    // Ordering::Relaxed: advisory generation stamp (see `AppState::epoch`).
    let epoch = state.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    state.refresh_gauges(master);
    state.metrics.bump(&state.metrics.snapshots_published_total);
    Ok(epoch)
}

/// Roundtrips an engine through its own persistence format — the snapshot
/// mechanism. Serialization guarantees the copy is bit-identical to what a
/// save/reload would produce, so snapshot answers can never drift from
/// post-restart answers.
fn clone_engine(engine: &SearchEngine) -> io::Result<SearchEngine> {
    let mut buf = Vec::new();
    engine.save_to(&mut buf)?;
    SearchEngine::load_from(&mut io::Cursor::new(buf))
}

/// Builds the serving snapshot for a publication: a roundtripped clone of
/// the master, re-partitioned into a sharded view when the server was
/// configured with more than one fault domain.
fn make_snapshot(engine: &SearchEngine, shards: usize) -> io::Result<ServingSnapshot> {
    let fresh = clone_engine(engine)?;
    if shards <= 1 {
        return Ok(ServingSnapshot::Single(Box::new(fresh)));
    }
    ShardedEngine::from_engine(&fresh, shards)
        .map(ServingSnapshot::Sharded)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Handles one parsed request; returns `(status, body)`. Also folds the
/// outcome into the shared metrics.
pub fn handle(state: &AppState, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let (status, payload) = dispatch(state, method, path, body);
    state.metrics.record_status(status);
    (status, payload)
}

fn dispatch(state: &AppState, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let outcome = match (method, path) {
        ("GET", "/health") => health(state),
        ("GET", "/metrics") => Ok(metrics_json(state)),
        ("POST", "/repair") => repair(state),
        ("POST", "/save") => save(state),
        ("POST", "/append") => with_body(body, |b| append(state, b)),
        ("POST", "/search") => with_body(body, |b| search(state, b)),
        ("POST", "/knn") => with_body(body, |b| knn(state, b)),
        ("POST", "/znormalized") => with_body(body, |b| znormalized(state, b)),
        ("POST", "/long") => with_body(body, |b| long(state, b)),
        ("POST", "/batch") => with_body(body, |b| batch(state, b)),
        ("GET" | "POST", _) => Err(ApiError {
            status: 404,
            message: format!("no route {path:?}"),
            hint: None,
        }),
        _ => Err(ApiError {
            status: 405,
            message: format!("method {method} not supported"),
            hint: None,
        }),
    };
    match outcome {
        Ok(json) => (200, json.encode()),
        Err(e) => (e.status, e.body()),
    }
}

fn with_body(
    body: &[u8],
    f: impl FnOnce(&Json) -> Result<Json, ApiError>,
) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let json = Json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ApiError::bad_request("request body must be a JSON object"));
    }
    f(&json)
}

fn health(state: &AppState) -> Result<Json, ApiError> {
    let engine = snapshot(state);
    let mut h = engine.health();
    // Query-path health (breaker, quarantine, retries) comes from the
    // snapshot, which is what queries actually run against. Ingest-path
    // health comes from the gauge cache, not the master — this endpoint
    // must answer while an append or rebuild holds the ingest lock.
    let g = &state.gauges;
    // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
    h.append_tail_unindexed = g.append_tail_unindexed.load(Ordering::Relaxed);
    // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
    h.max_norm_loose = g.max_norm_loose.load(Ordering::Relaxed);
    // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
    h.wal_tail_records = g.wal_tail_records.load(Ordering::Relaxed);
    // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
    h.wal_replayed = g.wal_replayed.load(Ordering::Relaxed);
    let mut j = encode_health(&h);
    if let Json::Obj(map) = &mut j {
        map.insert("num_series".to_string(), Json::from(engine.num_series()));
        map.insert("num_windows".to_string(), Json::from(engine.num_windows()));
        map.insert("shards".to_string(), Json::from(engine.num_shards()));
        map.insert("shard_breakers".to_string(), encode_shard_breakers(&engine));
        map.insert("epoch".to_string(), Json::from(state.epoch()));
        map.insert(
            "durable".to_string(),
            // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
            Json::from(state.gauges.durable.load(Ordering::Relaxed)),
        );
    }
    Ok(j)
}

/// Per-shard breaker positions as a JSON array of `"closed"` /
/// `"half-open"` / `"open"`, in shard order.
fn encode_shard_breakers(snapshot: &ServingSnapshot) -> Json {
    Json::Arr(
        snapshot
            .shard_breakers()
            .iter()
            .map(|b| Json::from(b.to_string().as_str()))
            .collect(),
    )
}

fn metrics_json(state: &AppState) -> Json {
    let mut j = state.metrics.to_json();
    if let Json::Obj(map) = &mut j {
        let engine = snapshot(state);
        map.insert("shards".to_string(), Json::from(engine.num_shards()));
        map.insert("shard_breakers".to_string(), encode_shard_breakers(&engine));
        map.insert("epoch".to_string(), Json::from(state.epoch()));
        map.insert(
            "wal_tail_records".to_string(),
            // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
            Json::from(state.gauges.wal_tail_records.load(Ordering::Relaxed)),
        );
        map.insert(
            "durable".to_string(),
            // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
            Json::from(state.gauges.durable.load(Ordering::Relaxed)),
        );
    }
    j
}

fn repair(state: &AppState) -> Result<Json, ApiError> {
    let mut master = lock_ingest(state);
    let report = master.engine_mut().repair()?;
    let epoch = publish(state, &master)?;
    let mut j = encode_repair(&report);
    if let Json::Obj(map) = &mut j {
        map.insert("epoch".to_string(), Json::from(epoch));
    }
    Ok(j)
}

fn save(state: &AppState) -> Result<Json, ApiError> {
    let mut master = lock_ingest(state);
    if !master.is_durable() {
        return Err(ApiError::bad_request(
            "engine is volatile (no save path); serve a saved engine file to enable /save",
        ));
    }
    master.save()?;
    state.metrics.bump(&state.metrics.saves_total);
    // The WAL is now empty; the in-memory engine did not change, so the
    // gauges refresh without a full republish.
    state.refresh_gauges(&master);
    Ok(Json::obj([
        ("saved", Json::from(true)),
        ("wal_tail_records", Json::from(master.wal_tail_records())),
    ]))
}

/// Which series an `/append` addresses, parsed before the ingest lock is
/// taken so malformed requests never serialize with real writers.
enum AppendTarget {
    /// Append to the existing series at this index.
    Existing(usize),
    /// Create a new series with this name.
    New(String),
}

fn append_target(body: &Json) -> Result<AppendTarget, ApiError> {
    match (body.get("series"), body.get("name")) {
        (Some(s), None) => {
            let si = s
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("\"series\" must be an integer index"))?;
            let si = usize::try_from(si)
                .map_err(|_| ApiError::bad_request("\"series\" index out of range"))?;
            Ok(AppendTarget::Existing(si))
        }
        (None, Some(n)) => {
            let name = n
                .as_str()
                .ok_or_else(|| ApiError::bad_request("\"name\" must be a string"))?;
            Ok(AppendTarget::New(name.to_string()))
        }
        _ => Err(ApiError::bad_request(
            "provide exactly one of \"series\" (append to existing) or \"name\" (new series)",
        )),
    }
}

fn append(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let values = require_f64_array(body, "values")?;
    let target = append_target(body)?;
    let mut master = lock_ingest(state);
    state.metrics.bump(&state.metrics.appends_total);
    let applied = match target {
        AppendTarget::Existing(si) => master.append_values(si, &values).map(|()| si),
        AppendTarget::New(name) => master.append_series(&Series::new(&name, values)),
    };
    let mut rebuilt = false;
    if applied.is_ok() && master.engine().str_rebuild_due() {
        // Past the measured insert-degradation threshold an STR bulk
        // rebuild beats continuing to pay incremental R*-insert costs
        // (see `SearchEngine::str_rebuild_due`). Readers keep answering
        // from the previous snapshot while this runs.
        if master.engine_mut().repair().is_ok() {
            rebuilt = true;
            state.metrics.bump(&state.metrics.str_rebuilds_total);
        }
    }
    // Publish whatever state the master is now in — success or failure —
    // so readers see exactly what the master holds and the health gauges
    // are fresh. A failed append may still have mutated the master (e.g.
    // values stored with the tail unindexed).
    let published = publish(state, &master);
    let series = match applied {
        Ok(s) => s,
        Err(e) => {
            let mut err = ApiError::from(e);
            if master.engine().health().append_tail_unindexed {
                err = err.with_hint(
                    "the append half-landed (values stored, windows unindexed); \
                     POST /repair reindexes from the data file and clears this",
                );
            }
            return Err(err);
        }
    };
    let epoch = published?;
    let len = master.engine().series_len(series)?;
    Ok(Json::obj([
        ("series", Json::from(series)),
        ("series_len", Json::from(len)),
        ("num_windows", Json::from(master.engine().num_windows())),
        // The acknowledgement contract: when true, this response was sent
        // only after the append was fsynced to the write-ahead log.
        ("durable", Json::from(master.is_durable())),
        ("epoch", Json::from(epoch)),
        ("wal_tail_records", Json::from(master.wal_tail_records())),
        ("str_rebuilt", Json::from(rebuilt)),
    ]))
}

fn opt_limit(body: &Json) -> Result<Option<usize>, ApiError> {
    match body.get("limit") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("\"limit\" must be a non-negative integer"))?;
            Ok(Some(usize::try_from(n).unwrap_or(usize::MAX)))
        }
    }
}

/// Stamps the serving-layer fields into a result's stats: which snapshot
/// generation answered, and how deep the WAL tail was at that moment.
fn stamp_stats(state: &AppState, stats: &mut tsss_core::SearchStats) {
    stats.epoch = state.epoch();
    // Ordering::Relaxed: advisory gauge read (see `refresh_gauges`).
    stats.wal_tail_records = state.gauges.wal_tail_records.load(Ordering::Relaxed);
}

fn run_search(
    state: &AppState,
    body: &Json,
    f: impl FnOnce(&ServingSnapshot, &[f64], SearchOptions) -> Result<SearchResult, EngineError>,
) -> Result<Json, ApiError> {
    let query = require_f64_array(body, "query")?;
    let opts = parse_options(body)?;
    let limit = opt_limit(body)?;
    let engine = snapshot(state);
    match f(&engine, &query, opts) {
        Ok(mut res) => {
            stamp_stats(state, &mut res.stats);
            state.metrics.record_search(
                res.stats.candidates,
                res.stats.verified,
                res.stats.total_pages(),
            );
            Ok(encode_result(&res, limit))
        }
        Err(e) => {
            if api::is_budget_exhaustion(&e) {
                state.metrics.record_deadline_exceeded();
            }
            Err(e.into())
        }
    }
}

fn search(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    run_search(state, body, |e, q, o| e.search(q, epsilon, o))
}

fn knn(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let k = require_u64(body, "k")?;
    let k = usize::try_from(k).map_err(|_| ApiError::bad_request("\"k\" out of range"))?;
    run_search(state, body, |e, q, o| e.nearest_search_opts(q, k, o))
}

fn znormalized(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let z_eps = require_f64(body, "z_eps")?;
    run_search(state, body, |e, q, o| {
        e.search_znormalized_opts(q, z_eps, o)
    })
}

fn long(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    // `search_long` panics on stride ≠ 1 (the piece decomposition needs
    // every offset indexed) — turn that contract into a client error.
    if snapshot(state).stride() != 1 {
        return Err(ApiError::bad_request(
            "long queries require an engine built with stride 1",
        ));
    }
    run_search(state, body, |e, q, o| e.search_long(q, epsilon, o))
}

fn batch(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    let opts = parse_options(body)?;
    let limit = opt_limit(body)?;
    let workers =
        match body.get("workers") {
            None | Some(Json::Null) => 1,
            Some(v) => usize::try_from(v.as_u64().ok_or_else(|| {
                ApiError::bad_request("\"workers\" must be a non-negative integer")
            })?)
            .unwrap_or(1)
            .min(64),
        };
    let queries_json = body
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request("missing array field \"queries\""))?;
    let mut queries: Vec<Vec<f64>> = Vec::with_capacity(queries_json.len());
    for (i, q) in queries_json.iter().enumerate() {
        let arr = q
            .as_array()
            .ok_or_else(|| ApiError::bad_request(format!("query {i} must be an array")))?;
        let vals: Result<Vec<f64>, ApiError> = arr
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    ApiError::bad_request(format!("query {i} must hold finite numbers"))
                })
            })
            .collect();
        queries.push(vals?);
    }

    let engine = snapshot(state);
    let mut results = engine.search_batch_results(&queries, epsilon, opts, workers);
    for res in results.iter_mut().flatten() {
        stamp_stats(state, &mut res.stats);
    }
    let mut encoded = Vec::with_capacity(results.len());
    for r in &results {
        encoded.push(match r {
            Ok(res) => {
                state.metrics.record_search(
                    res.stats.candidates,
                    res.stats.verified,
                    res.stats.total_pages(),
                );
                let mut obj = encode_result(res, limit);
                if let Json::Obj(map) = &mut obj {
                    map.insert("ok".to_string(), Json::from(true));
                }
                obj
            }
            Err(e) => {
                if api::is_budget_exhaustion(e) {
                    state.metrics.record_deadline_exceeded();
                }
                Json::obj([
                    ("ok", Json::from(false)),
                    ("status", Json::from(u64::from(api::status_of(e)))),
                    ("error", Json::from(e.to_string())),
                ])
            }
        });
    }
    Ok(Json::obj([("results", Json::Arr(encoded))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_core::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator};

    const WINDOW: usize = 16;

    fn state() -> (AppState, Vec<tsss_data::Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 80, 42)).generate();
        let st = AppState::new(SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap());
        (st, data)
    }

    fn window_of(data: &[tsss_data::Series], series: usize, offset: usize, len: usize) -> Vec<f64> {
        data[series].values[offset..offset + len].to_vec()
    }

    fn encode_vals(vals: &[f64]) -> String {
        Json::Arr(vals.iter().map(|v| Json::from(*v)).collect()).encode()
    }

    fn query_body(data: &[tsss_data::Series], epsilon: f64) -> String {
        format!(
            "{{\"query\":{},\"epsilon\":{epsilon}}}",
            encode_vals(&window_of(data, 0, 3, WINDOW))
        )
    }

    #[test]
    fn search_route_answers_and_counts() {
        let (st, data) = state();
        let body = query_body(&data, 0.5);
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);
        let stats = j.get("stats").unwrap();
        let c = stats.get("candidates").and_then(Json::as_u64).unwrap();
        let v = stats.get("verified").and_then(Json::as_u64).unwrap();
        let fa = stats.get("false_alarms").and_then(Json::as_u64).unwrap();
        let cr = stats.get("cost_rejected").and_then(Json::as_u64).unwrap();
        assert_eq!(c, v + fa + cr, "stage identity must survive encoding");
        // No mutation yet: stats carry the initial generation.
        assert_eq!(stats.get("epoch").and_then(Json::as_u64), Some(0));
        assert_eq!(
            stats.get("wal_tail_records").and_then(Json::as_u64),
            Some(0)
        );
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(m.get("requests_ok").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn limit_truncates_but_reports_total() {
        let (st, data) = state();
        let mut body = query_body(&data, 50.0);
        body.insert_str(body.len() - 1, ",\"limit\":1");
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200);
        let j = Json::parse(&payload).unwrap();
        let total = j.get("total_matches").and_then(Json::as_u64).unwrap();
        let shown = j.get("matches").and_then(Json::as_array).unwrap().len();
        assert!(total > 1);
        assert_eq!(shown, 1);
    }

    #[test]
    fn tight_deadline_is_503_and_counted() {
        let (st, data) = state();
        let mut body = query_body(&data, 0.5);
        body.insert_str(
            body.len() - 1,
            ",\"opts\":{\"deadline\":{\"max_pages\":0,\"max_steps\":0}}",
        );
        let (status, _) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 503);
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(
            m.get("deadline_exceeded_total").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            m.get("requests_server_error").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn append_then_search_finds_new_windows_and_health_stays_clean() {
        let (st, _) = state();
        let before = {
            let j = Json::parse(&handle(&st, "GET", "/health", b"").1).unwrap();
            assert_eq!(
                j.get("repair_recommended").and_then(Json::as_bool),
                Some(false)
            );
            j.get("num_windows").and_then(Json::as_u64).unwrap()
        };
        let vals: Vec<Json> = (0..40).map(|i| Json::from(f64::from(i) * 0.25)).collect();
        let body = format!(
            "{{\"name\":\"fresh\",\"values\":{}}}",
            Json::Arr(vals).encode()
        );
        let (status, payload) = handle(&st, "POST", "/append", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("series_len").and_then(Json::as_u64), Some(40));
        let after = j.get("num_windows").and_then(Json::as_u64).unwrap();
        assert!(after > before);
        // The response states the acknowledgement contract: this state is
        // volatile, so the append is explicitly not durable.
        assert_eq!(j.get("durable").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("epoch").and_then(Json::as_u64), Some(1));
        // Appending to the new series by index also works.
        let more = format!(
            "{{\"series\":{},\"values\":[1,2,3]}}",
            j.get("series").and_then(Json::as_u64).unwrap()
        );
        let (status, payload) = handle(&st, "POST", "/append", more.as_bytes());
        assert_eq!(status, 200);
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("epoch").and_then(Json::as_u64), Some(2));
        // Searches now run against the published snapshot and are stamped
        // with its generation.
        // WINDOW == 16: the probe is the first window of the "fresh" series.
        let probe: Vec<f64> = (0u32..16).map(|i| f64::from(i) * 0.25).collect();
        let body = format!("{{\"query\":{},\"epsilon\":0.01}}", encode_vals(&probe));
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(
            j.get("stats").unwrap().get("epoch").and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn append_to_unknown_series_is_404() {
        let (st, _) = state();
        let (status, _) = handle(
            &st,
            "POST",
            "/append",
            br#"{"series":999,"values":[1,2,3]}"#,
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn save_on_a_volatile_engine_is_a_client_error() {
        let (st, _) = state();
        let (status, payload) = handle(&st, "POST", "/save", b"");
        assert_eq!(status, 400, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("volatile"));
    }

    #[test]
    fn durable_state_acknowledges_saves_and_empties_the_wal() {
        let data = MarketSimulator::new(MarketConfig::small(4, 80, 43)).generate();
        let engine = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
        let dir = std::env::temp_dir().join(format!("tsss-routes-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tsss");
        engine.save_to_path(&path).unwrap();
        std::fs::remove_file(DurableEngine::wal_path_for(&path)).ok();
        let st = AppState::new_durable(DurableEngine::open(&path).unwrap());

        let (status, payload) = handle(&st, "POST", "/append", br#"{"series":0,"values":[1,2,3]}"#);
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("durable").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("wal_tail_records").and_then(Json::as_u64), Some(1));

        let h = Json::parse(&handle(&st, "GET", "/health", b"").1).unwrap();
        assert_eq!(h.get("wal_tail_records").and_then(Json::as_u64), Some(1));
        assert_eq!(h.get("durable").and_then(Json::as_bool), Some(true));

        let (status, payload) = handle(&st, "POST", "/save", b"");
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("saved").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("wal_tail_records").and_then(Json::as_u64), Some(0));
        let h = Json::parse(&handle(&st, "GET", "/health", b"").1).unwrap();
        assert_eq!(h.get("wal_tail_records").and_then(Json::as_u64), Some(0));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(DurableEngine::wal_path_for(&path)).ok();
    }

    #[test]
    fn search_is_served_from_the_snapshot_while_ingest_is_held() {
        let (st, data) = state();
        let st = Arc::new(st);
        // Simulate a long-running append: hold the ingest lock for the
        // whole test. A search that needed any part of the write path
        // would block and the receive below would time out.
        let guard = st.ingest.lock().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let st2 = Arc::clone(&st);
        let body = query_body(&data, 0.5);
        std::thread::spawn(move || {
            let _ = tx.send(handle(&st2, "POST", "/search", body.as_bytes()));
        });
        let (status, payload) = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("search must not block on the ingest lock");
        assert_eq!(status, 200, "{payload}");
        drop(guard);
    }

    /// The full audit behind `lock_ingest`'s contract: **no** query or
    /// observability route may touch the ingest lock. Every read path is
    /// exercised while the lock is held hostage; any route that reached
    /// for it would hang and trip the timeout.
    #[test]
    fn no_query_route_takes_the_ingest_lock() {
        let (st, data) = state();
        let st = Arc::new(st);
        let guard = st.ingest.lock().unwrap();
        let q_json = encode_vals(&window_of(&data, 1, 5, WINDOW));
        let long_json = encode_vals(&window_of(&data, 1, 0, WINDOW + WINDOW / 2));
        let search = query_body(&data, 0.5);
        let requests: Vec<(&str, &str, String)> = vec![
            ("POST", "/search", search.clone()),
            ("POST", "/knn", format!("{{\"query\":{q_json},\"k\":3}}")),
            (
                "POST",
                "/znormalized",
                format!("{{\"query\":{q_json},\"z_eps\":0.5}}"),
            ),
            (
                "POST",
                "/long",
                format!("{{\"query\":{long_json},\"epsilon\":0.5}}"),
            ),
            (
                "POST",
                "/batch",
                format!("{{\"queries\":[{q_json}],\"epsilon\":0.5}}"),
            ),
            ("GET", "/health", String::new()),
            ("GET", "/metrics", String::new()),
        ];
        for (method, route, body) in requests {
            let (tx, rx) = std::sync::mpsc::channel();
            let st2 = Arc::clone(&st);
            std::thread::spawn(move || {
                let _ = tx.send(handle(&st2, method, route, body.as_bytes()));
            });
            let (status, payload) = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("{route} must not block on the ingest lock"));
            assert_eq!(status, 200, "{route}: {payload}");
        }
        drop(guard);
    }

    #[test]
    fn knn_long_znormalized_and_batch_routes_answer() {
        let (st, data) = state();
        let q_json = encode_vals(&window_of(&data, 1, 5, WINDOW));

        let (status, payload) = handle(
            &st,
            "POST",
            "/knn",
            format!("{{\"query\":{q_json},\"k\":3}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("matches").and_then(Json::as_array).unwrap().len(), 3);

        let (status, payload) = handle(
            &st,
            "POST",
            "/znormalized",
            format!("{{\"query\":{q_json},\"z_eps\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");

        let long_json = encode_vals(&window_of(&data, 1, 0, WINDOW + WINDOW / 2));
        let (status, payload) = handle(
            &st,
            "POST",
            "/long",
            format!("{{\"query\":{long_json},\"epsilon\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);

        let (status, payload) = handle(
            &st,
            "POST",
            "/batch",
            format!("{{\"queries\":[{q_json},[1,2]],\"epsilon\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        let results = j.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(results[1].get("status").and_then(Json::as_u64), Some(400));
    }

    #[test]
    fn repair_route_reindexes() {
        let (st, _) = state();
        let (status, payload) = handle(&st, "POST", "/repair", b"");
        assert_eq!(status, 200);
        let j = Json::parse(&payload).unwrap();
        let reindexed = j.get("windows_reindexed").and_then(Json::as_u64).unwrap();
        assert_eq!(
            usize::try_from(reindexed).unwrap(),
            snapshot(&st).num_windows()
        );
        assert_eq!(j.get("epoch").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn malformed_requests_are_client_errors() {
        let (st, _) = state();
        for (method, path, body, want) in [
            ("POST", "/search", &b"not json"[..], 400),
            ("POST", "/search", &b"[1,2,3]"[..], 400),
            ("POST", "/search", &br#"{"epsilon":1}"#[..], 400),
            (
                "POST",
                "/search",
                &br#"{"query":[1,2],"epsilon":1,"opts":{"degradation":"x"}}"#[..],
                400,
            ),
            ("POST", "/knn", &br#"{"query":[1,2]}"#[..], 400),
            ("GET", "/nope", &b""[..], 404),
            ("DELETE", "/health", &b""[..], 405),
        ] {
            let (status, payload) = handle(&st, method, path, body);
            assert_eq!(status, want, "{method} {path}: {payload}");
            assert!(Json::parse(&payload).unwrap().get("error").is_some());
        }
    }

    fn sharded_state(shards: usize) -> (AppState, Vec<tsss_data::Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 80, 42)).generate();
        let st = AppState::new_sharded(
            SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap(),
            shards,
        );
        (st, data)
    }

    #[test]
    fn sharded_state_answers_bit_identically_to_single() {
        let (single, data) = state();
        let (sharded, _) = sharded_state(4);
        let body = query_body(&data, 0.5);
        let (s1, p1) = handle(&single, "POST", "/search", body.as_bytes());
        let (s2, p2) = handle(&sharded, "POST", "/search", body.as_bytes());
        assert_eq!((s1, s2), (200, 200), "{p1}\n{p2}");
        let j1 = Json::parse(&p1).unwrap();
        let j2 = Json::parse(&p2).unwrap();
        // The merged scatter-gather answer is the single engine's answer,
        // match for match and bit for bit (same JSON rendering).
        assert_eq!(
            j1.get("total_matches").and_then(Json::as_u64),
            j2.get("total_matches").and_then(Json::as_u64)
        );
        assert_eq!(
            j1.get("matches").unwrap().encode(),
            j2.get("matches").unwrap().encode()
        );
        // Shard accounting: 4 healthy domains answered, none degraded, and
        // the stage identity survived the merge and the encoding.
        let stats = j2.get("stats").unwrap();
        assert_eq!(stats.get("shards_ok").and_then(Json::as_u64), Some(4));
        assert_eq!(stats.get("degraded_shards").and_then(Json::as_u64), Some(0));
        let c = stats.get("candidates").and_then(Json::as_u64).unwrap();
        let v = stats.get("verified").and_then(Json::as_u64).unwrap();
        let fa = stats.get("false_alarms").and_then(Json::as_u64).unwrap();
        let cr = stats.get("cost_rejected").and_then(Json::as_u64).unwrap();
        assert_eq!(c, v + fa + cr);
        // A direct single-engine answer has no shards and says so.
        let s1stats = j1.get("stats").unwrap();
        assert_eq!(s1stats.get("shards_ok").and_then(Json::as_u64), Some(0));
        assert_eq!(
            s1stats.get("degraded_shards").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn sharded_knn_and_batch_routes_answer() {
        let (st, data) = sharded_state(4);
        let q_json = encode_vals(&window_of(&data, 1, 5, WINDOW));
        // kNN: exactly k matches even though 4 shards each found up to k.
        let (status, payload) = handle(
            &st,
            "POST",
            "/knn",
            format!("{{\"query\":{q_json},\"k\":3}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("matches").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(
            j.get("stats")
                .unwrap()
                .get("shards_ok")
                .and_then(Json::as_u64),
            Some(4)
        );
        // Batch keeps per-query isolation on the sharded path too.
        let (status, payload) = handle(
            &st,
            "POST",
            "/batch",
            format!("{{\"queries\":[{q_json},[1,2]],\"epsilon\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        let results = j.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn sharded_deadline_503_still_bumps_the_degradation_counter() {
        // On a sharded snapshot a spent budget surfaces as
        // `ShardUnavailable` (every shard exhausted its slice), which must
        // land in the same `/metrics` counter as the single-engine 503.
        let (st, data) = sharded_state(4);
        let mut body = query_body(&data, 0.5);
        body.insert_str(
            body.len() - 1,
            ",\"opts\":{\"deadline\":{\"max_pages\":0,\"max_steps\":0}}",
        );
        let (status, _) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 503);
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(
            m.get("deadline_exceeded_total").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn health_and_metrics_expose_per_shard_breakers() {
        let (st, _) = sharded_state(3);
        let h = Json::parse(&handle(&st, "GET", "/health", b"").1).unwrap();
        assert_eq!(h.get("shards").and_then(Json::as_u64), Some(3));
        let breakers = h.get("shard_breakers").and_then(Json::as_array).unwrap();
        assert_eq!(breakers.len(), 3);
        assert!(breakers.iter().all(|b| b.as_str() == Some("closed")));
        assert_eq!(
            h.get("repair_recommended").and_then(Json::as_bool),
            Some(false)
        );
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(m.get("shards").and_then(Json::as_u64), Some(3));
        assert_eq!(
            m.get("shard_breakers")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            3
        );
        // A single-engine state reports one fault domain, same schema.
        let (st1, _) = state();
        let h = Json::parse(&handle(&st1, "GET", "/health", b"").1).unwrap();
        assert_eq!(h.get("shards").and_then(Json::as_u64), Some(1));
        assert_eq!(
            h.get("shard_breakers")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn append_republishes_the_sharded_snapshot() {
        let (st, data) = sharded_state(2);
        let before = snapshot(&st).num_windows();
        let vals: Vec<Json> = (0..40).map(|i| Json::from(f64::from(i) * 0.25)).collect();
        let body = format!(
            "{{\"name\":\"fresh\",\"values\":{}}}",
            Json::Arr(vals).encode()
        );
        let (status, payload) = handle(&st, "POST", "/append", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        // The republished snapshot is sharded again and holds the new
        // series' windows.
        let snap = snapshot(&st);
        assert_eq!(snap.num_shards(), 2);
        assert!(snap.num_windows() > before);
        assert_eq!(snap.num_series(), data.len() + 1);
        // And the new windows are searchable through the sharded view.
        let probe: Vec<f64> = (0u32..16).map(|i| f64::from(i) * 0.25).collect();
        let body = format!("{{\"query\":{},\"epsilon\":0.01}}", encode_vals(&probe));
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(
            j.get("stats")
                .unwrap()
                .get("shards_ok")
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn query_of_wrong_length_is_400() {
        let (st, _) = state();
        let (status, _) = handle(
            &st,
            "POST",
            "/search",
            br#"{"query":[1,2,3],"epsilon":0.5}"#,
        );
        assert_eq!(status, 400);
    }
}
