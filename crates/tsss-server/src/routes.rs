//! Request dispatch: path + method → engine call → JSON response.
//!
//! Locking discipline: every query endpoint takes the engine's **read**
//! lock — the whole search API is `&self` and thread-safe, so queries run
//! concurrently across workers. Only the mutating endpoints (`/append`,
//! `/repair`) take the write lock, and they hold it exactly for the
//! engine call.

use std::sync::RwLock;

use tsss_core::SearchEngine;
use tsss_data::Series;

use crate::api::{
    self, encode_health, encode_repair, encode_result, error_body, parse_options, require_f64,
    require_f64_array, require_u64, ApiError,
};
use crate::json::Json;
use crate::metrics::Metrics;

/// State shared by every worker thread.
pub struct AppState {
    /// The engine, readers-writer locked (queries share, mutations exclude).
    pub engine: RwLock<SearchEngine>,
    /// Server-wide counters.
    pub metrics: Metrics,
}

impl AppState {
    /// Wraps an engine for serving.
    pub fn new(engine: SearchEngine) -> AppState {
        AppState {
            engine: RwLock::new(engine),
            metrics: Metrics::default(),
        }
    }
}

/// Handles one parsed request; returns `(status, body)`. Also folds the
/// outcome into the shared metrics.
pub fn handle(state: &AppState, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let (status, payload) = dispatch(state, method, path, body);
    state.metrics.record_status(status);
    (status, payload)
}

fn dispatch(state: &AppState, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let outcome = match (method, path) {
        ("GET", "/health") => health(state),
        ("GET", "/metrics") => Ok(state.metrics.to_json()),
        ("POST", "/repair") => repair(state),
        ("POST", "/append") => with_body(body, |b| append(state, b)),
        ("POST", "/search") => with_body(body, |b| search(state, b)),
        ("POST", "/knn") => with_body(body, |b| knn(state, b)),
        ("POST", "/znormalized") => with_body(body, |b| znormalized(state, b)),
        ("POST", "/long") => with_body(body, |b| long(state, b)),
        ("POST", "/batch") => with_body(body, |b| batch(state, b)),
        ("GET" | "POST", _) => Err(ApiError {
            status: 404,
            message: format!("no route {path:?}"),
        }),
        _ => Err(ApiError {
            status: 405,
            message: format!("method {method} not supported"),
        }),
    };
    match outcome {
        Ok(json) => (200, json.encode()),
        Err(e) => (e.status, error_body(&e.message)),
    }
}

fn with_body(
    body: &[u8],
    f: impl FnOnce(&Json) -> Result<Json, ApiError>,
) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let json = Json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ApiError::bad_request("request body must be a JSON object"));
    }
    f(&json)
}

fn read_engine(state: &AppState) -> std::sync::RwLockReadGuard<'_, SearchEngine> {
    // Poison recovery: a panicking worker cannot leave the engine torn —
    // the search API is read-only and mutations are small and transactional
    // at the engine layer, so serving from a poisoned lock is sound.
    state
        .engine
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_engine(state: &AppState) -> std::sync::RwLockWriteGuard<'_, SearchEngine> {
    // Poison recovery: same argument as `read_engine`; the engine's own
    // health/repair machinery handles any partial mutation a panic left.
    state
        .engine
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn health(state: &AppState) -> Result<Json, ApiError> {
    let engine = read_engine(state);
    let h = engine.health();
    let mut j = encode_health(&h);
    if let Json::Obj(map) = &mut j {
        map.insert("num_series".to_string(), Json::from(engine.num_series()));
        map.insert("num_windows".to_string(), Json::from(engine.num_windows()));
    }
    Ok(j)
}

fn repair(state: &AppState) -> Result<Json, ApiError> {
    let report = write_engine(state).repair()?;
    Ok(encode_repair(&report))
}

fn append(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let values = require_f64_array(body, "values")?;
    let mut engine = write_engine(state);
    let series =
        match (body.get("series"), body.get("name")) {
            (Some(s), None) => {
                let si = s
                    .as_u64()
                    .ok_or_else(|| ApiError::bad_request("\"series\" must be an integer index"))?;
                let si = usize::try_from(si)
                    .map_err(|_| ApiError::bad_request("\"series\" index out of range"))?;
                engine.append_values(si, &values)?;
                si
            }
            (None, Some(n)) => {
                let name = n
                    .as_str()
                    .ok_or_else(|| ApiError::bad_request("\"name\" must be a string"))?;
                engine.append_series(&Series::new(name, values))?
            }
            _ => return Err(ApiError::bad_request(
                "provide exactly one of \"series\" (append to existing) or \"name\" (new series)",
            )),
        };
    let len = engine.series_len(series)?;
    Ok(Json::obj([
        ("series", Json::from(series)),
        ("series_len", Json::from(len)),
        ("num_windows", Json::from(engine.num_windows())),
    ]))
}

fn opt_limit(body: &Json) -> Result<Option<usize>, ApiError> {
    match body.get("limit") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("\"limit\" must be a non-negative integer"))?;
            Ok(Some(usize::try_from(n).unwrap_or(usize::MAX)))
        }
    }
}

fn run_search(
    state: &AppState,
    body: &Json,
    f: impl FnOnce(
        &SearchEngine,
        &[f64],
        tsss_core::SearchOptions,
    ) -> Result<tsss_core::SearchResult, tsss_core::EngineError>,
) -> Result<Json, ApiError> {
    let query = require_f64_array(body, "query")?;
    let opts = parse_options(body)?;
    let limit = opt_limit(body)?;
    let engine = read_engine(state);
    match f(&engine, &query, opts) {
        Ok(res) => {
            state.metrics.record_search(
                res.stats.candidates,
                res.stats.verified,
                res.stats.total_pages(),
            );
            Ok(encode_result(&res, limit))
        }
        Err(e) => {
            if api::is_budget_exhaustion(&e) {
                state.metrics.record_deadline_exceeded();
            }
            Err(e.into())
        }
    }
}

fn search(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    run_search(state, body, |e, q, o| e.search(q, epsilon, o))
}

fn knn(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let k = require_u64(body, "k")?;
    let k = usize::try_from(k).map_err(|_| ApiError::bad_request("\"k\" out of range"))?;
    run_search(state, body, |e, q, o| e.nearest_search_opts(q, k, o))
}

fn znormalized(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let z_eps = require_f64(body, "z_eps")?;
    run_search(state, body, |e, q, o| {
        e.search_znormalized_opts(q, z_eps, o)
    })
}

fn long(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    // `search_long` panics on stride ≠ 1 (the piece decomposition needs
    // every offset indexed) — turn that contract into a client error.
    if read_engine(state).config().stride != 1 {
        return Err(ApiError::bad_request(
            "long queries require an engine built with stride 1",
        ));
    }
    run_search(state, body, |e, q, o| e.search_long(q, epsilon, o))
}

fn batch(state: &AppState, body: &Json) -> Result<Json, ApiError> {
    let epsilon = require_f64(body, "epsilon")?;
    let opts = parse_options(body)?;
    let limit = opt_limit(body)?;
    let workers =
        match body.get("workers") {
            None | Some(Json::Null) => 1,
            Some(v) => usize::try_from(v.as_u64().ok_or_else(|| {
                ApiError::bad_request("\"workers\" must be a non-negative integer")
            })?)
            .unwrap_or(1)
            .min(64),
        };
    let queries_json = body
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request("missing array field \"queries\""))?;
    let mut queries: Vec<Vec<f64>> = Vec::with_capacity(queries_json.len());
    for (i, q) in queries_json.iter().enumerate() {
        let arr = q
            .as_array()
            .ok_or_else(|| ApiError::bad_request(format!("query {i} must be an array")))?;
        let vals: Result<Vec<f64>, ApiError> = arr
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    ApiError::bad_request(format!("query {i} must hold finite numbers"))
                })
            })
            .collect();
        queries.push(vals?);
    }

    let engine = read_engine(state);
    let results = engine.search_batch_results(&queries, epsilon, opts, workers);
    let mut encoded = Vec::with_capacity(results.len());
    for r in &results {
        encoded.push(match r {
            Ok(res) => {
                state.metrics.record_search(
                    res.stats.candidates,
                    res.stats.verified,
                    res.stats.total_pages(),
                );
                let mut obj = encode_result(res, limit);
                if let Json::Obj(map) = &mut obj {
                    map.insert("ok".to_string(), Json::from(true));
                }
                obj
            }
            Err(e) => {
                if api::is_budget_exhaustion(e) {
                    state.metrics.record_deadline_exceeded();
                }
                Json::obj([
                    ("ok", Json::from(false)),
                    ("status", Json::from(u64::from(api::status_of(e)))),
                    ("error", Json::from(e.to_string())),
                ])
            }
        });
    }
    Ok(Json::obj([("results", Json::Arr(encoded))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_core::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator};

    const WINDOW: usize = 16;

    fn state() -> (AppState, Vec<tsss_data::Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 80, 42)).generate();
        let st = AppState::new(SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap());
        (st, data)
    }

    fn window_of(data: &[tsss_data::Series], series: usize, offset: usize, len: usize) -> Vec<f64> {
        data[series].values[offset..offset + len].to_vec()
    }

    fn encode_vals(vals: &[f64]) -> String {
        Json::Arr(vals.iter().map(|v| Json::from(*v)).collect()).encode()
    }

    fn query_body(data: &[tsss_data::Series], epsilon: f64) -> String {
        format!(
            "{{\"query\":{},\"epsilon\":{epsilon}}}",
            encode_vals(&window_of(data, 0, 3, WINDOW))
        )
    }

    #[test]
    fn search_route_answers_and_counts() {
        let (st, data) = state();
        let body = query_body(&data, 0.5);
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);
        let stats = j.get("stats").unwrap();
        let c = stats.get("candidates").and_then(Json::as_u64).unwrap();
        let v = stats.get("verified").and_then(Json::as_u64).unwrap();
        let fa = stats.get("false_alarms").and_then(Json::as_u64).unwrap();
        let cr = stats.get("cost_rejected").and_then(Json::as_u64).unwrap();
        assert_eq!(c, v + fa + cr, "stage identity must survive encoding");
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(m.get("requests_ok").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn limit_truncates_but_reports_total() {
        let (st, data) = state();
        let mut body = query_body(&data, 50.0);
        body.insert_str(body.len() - 1, ",\"limit\":1");
        let (status, payload) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 200);
        let j = Json::parse(&payload).unwrap();
        let total = j.get("total_matches").and_then(Json::as_u64).unwrap();
        let shown = j.get("matches").and_then(Json::as_array).unwrap().len();
        assert!(total > 1);
        assert_eq!(shown, 1);
    }

    #[test]
    fn tight_deadline_is_503_and_counted() {
        let (st, data) = state();
        let mut body = query_body(&data, 0.5);
        body.insert_str(
            body.len() - 1,
            ",\"opts\":{\"deadline\":{\"max_pages\":0,\"max_steps\":0}}",
        );
        let (status, _) = handle(&st, "POST", "/search", body.as_bytes());
        assert_eq!(status, 503);
        let m = Json::parse(&handle(&st, "GET", "/metrics", b"").1).unwrap();
        assert_eq!(
            m.get("deadline_exceeded_total").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            m.get("requests_server_error").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn append_then_search_finds_new_windows_and_health_stays_clean() {
        let (st, _) = state();
        let before = {
            let j = Json::parse(&handle(&st, "GET", "/health", b"").1).unwrap();
            assert_eq!(
                j.get("repair_recommended").and_then(Json::as_bool),
                Some(false)
            );
            j.get("num_windows").and_then(Json::as_u64).unwrap()
        };
        let vals: Vec<Json> = (0..40).map(|i| Json::from(f64::from(i) * 0.25)).collect();
        let body = format!(
            "{{\"name\":\"fresh\",\"values\":{}}}",
            Json::Arr(vals).encode()
        );
        let (status, payload) = handle(&st, "POST", "/append", body.as_bytes());
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("series_len").and_then(Json::as_u64), Some(40));
        let after = j.get("num_windows").and_then(Json::as_u64).unwrap();
        assert!(after > before);
        // Appending to the new series by index also works.
        let more = format!(
            "{{\"series\":{},\"values\":[1,2,3]}}",
            j.get("series").and_then(Json::as_u64).unwrap()
        );
        let (status, _) = handle(&st, "POST", "/append", more.as_bytes());
        assert_eq!(status, 200);
    }

    #[test]
    fn append_to_unknown_series_is_404() {
        let (st, _) = state();
        let (status, _) = handle(
            &st,
            "POST",
            "/append",
            br#"{"series":999,"values":[1,2,3]}"#,
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn knn_long_znormalized_and_batch_routes_answer() {
        let (st, data) = state();
        let q_json = encode_vals(&window_of(&data, 1, 5, WINDOW));

        let (status, payload) = handle(
            &st,
            "POST",
            "/knn",
            format!("{{\"query\":{q_json},\"k\":3}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert_eq!(j.get("matches").and_then(Json::as_array).unwrap().len(), 3);

        let (status, payload) = handle(
            &st,
            "POST",
            "/znormalized",
            format!("{{\"query\":{q_json},\"z_eps\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");

        let long_json = encode_vals(&window_of(&data, 1, 0, WINDOW + WINDOW / 2));
        let (status, payload) = handle(
            &st,
            "POST",
            "/long",
            format!("{{\"query\":{long_json},\"epsilon\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        assert!(j.get("total_matches").and_then(Json::as_u64).unwrap() >= 1);

        let (status, payload) = handle(
            &st,
            "POST",
            "/batch",
            format!("{{\"queries\":[{q_json},[1,2]],\"epsilon\":0.5}}").as_bytes(),
        );
        assert_eq!(status, 200, "{payload}");
        let j = Json::parse(&payload).unwrap();
        let results = j.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(results[1].get("status").and_then(Json::as_u64), Some(400));
    }

    #[test]
    fn repair_route_reindexes() {
        let (st, _) = state();
        let (status, payload) = handle(&st, "POST", "/repair", b"");
        assert_eq!(status, 200);
        let j = Json::parse(&payload).unwrap();
        let reindexed = j.get("windows_reindexed").and_then(Json::as_u64).unwrap();
        assert_eq!(
            usize::try_from(reindexed).unwrap(),
            read_engine(&st).num_windows()
        );
    }

    #[test]
    fn malformed_requests_are_client_errors() {
        let (st, _) = state();
        for (method, path, body, want) in [
            ("POST", "/search", &b"not json"[..], 400),
            ("POST", "/search", &b"[1,2,3]"[..], 400),
            ("POST", "/search", &br#"{"epsilon":1}"#[..], 400),
            (
                "POST",
                "/search",
                &br#"{"query":[1,2],"epsilon":1,"opts":{"degradation":"x"}}"#[..],
                400,
            ),
            ("POST", "/knn", &br#"{"query":[1,2]}"#[..], 400),
            ("GET", "/nope", &b""[..], 404),
            ("DELETE", "/health", &b""[..], 405),
        ] {
            let (status, payload) = handle(&st, method, path, body);
            assert_eq!(status, want, "{method} {path}: {payload}");
            assert!(Json::parse(&payload).unwrap().get("error").is_some());
        }
    }

    #[test]
    fn query_of_wrong_length_is_400() {
        let (st, _) = state();
        let (status, _) = handle(
            &st,
            "POST",
            "/search",
            br#"{"query":[1,2,3],"epsilon":0.5}"#,
        );
        assert_eq!(status, 400);
    }
}
