//! A bounded HTTP/1.1 request reader and response writer.
//!
//! The server speaks exactly as much HTTP as its JSON API needs: a
//! method, a path, an optional `Content-Length` body, and persistent
//! connections — HTTP/1.1 defaults to keep-alive, `Connection: close`
//! (or HTTP/1.0 without `Connection: keep-alive`) opts out, and the
//! serve loop in the crate root caps requests per connection. Bytes a
//! pipelining client sends past the current body are preserved in the
//! caller's carry buffer and become the start of the next request. The
//! reader is hardened the same way the JSON parser is — the head is
//! capped at [`MAX_HEAD_BYTES`], the body at [`MAX_BODY_BYTES`], and a
//! slowloris client is cut off by the socket read timeout the caller
//! installs.

use std::io::{self, Read, Write};

/// Maximum size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request body size. Appends of a few hundred thousand values
/// fit; anything larger belongs in the bulk ingest path, not HTTP.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending any byte of
    /// a request — the normal end of a kept-alive connection, not a
    /// protocol error.
    Closed,
    /// Socket-level failure (including read timeout).
    Io(io::Error),
    /// The bytes on the wire were not an acceptable request. The string
    /// is safe to echo back in an error payload.
    Malformed(String),
    /// Head or body exceeded its cap. `413` is the right answer.
    TooLarge(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`, consuming `carry` (bytes a previous
/// read pulled past its own request) first and leaving any bytes past
/// this request's body back in `carry` for the next call.
///
/// # Errors
/// [`HttpError`] on socket failure, malformed framing, oversized input,
/// or a clean close before the next request ([`HttpError::Closed`]).
pub fn read_request<S: Read>(stream: &mut S, carry: &mut Vec<u8>) -> Result<Request, HttpError> {
    let (head, leftover) = read_head(stream, carry)?;
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let path = target.split('?').next().unwrap_or(target).to_string();

    // HTTP/1.1 persists by default; HTTP/1.0 only on explicit request.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(HttpError::Malformed(
                "chunked transfer encoding is not supported".to_string(),
            ));
        } else if name == "connection" {
            // Token list, case-insensitive: `close` wins over everything,
            // `keep-alive` opts an HTTP/1.0 client in.
            for token in value.split(',') {
                let token = token.trim().to_ascii_lowercase();
                if token == "close" {
                    keep_alive = false;
                } else if token == "keep-alive" && version != "HTTP/1.1" {
                    keep_alive = true;
                }
            }
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }

    // `leftover` is whatever bytes arrived in the same reads as the head.
    // Up to `content_length` of them are this request's body; anything
    // past that is the next pipelined request and goes back into `carry`.
    let mut body;
    if leftover.len() >= content_length {
        body = leftover;
        *carry = body.split_off(content_length);
    } else {
        body = leftover;
        body.reserve(content_length - body.len());
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let want = (content_length - body.len()).min(chunk.len());
            let n = stream.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(HttpError::Malformed(
                    "connection closed mid-body".to_string(),
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
    }

    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Reads until the `\r\n\r\n` head terminator, returning the head bytes
/// (terminator excluded) and any extra bytes read past it. `carry` is
/// consumed before the socket is touched.
fn read_head<S: Read>(
    stream: &mut S,
    carry: &mut Vec<u8>,
) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let rest = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, rest));
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // No request in flight: the peer simply hung up between
                // requests, the clean end of a kept-alive connection.
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(
                "connection closed before request head completed".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response that closes the connection.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response<S: Write>(stream: &mut S, status: u16, body: &str) -> io::Result<()> {
    write_response_conn(stream, status, body, false)
}

/// Writes a complete response: status line, minimal headers, JSON body.
/// The `Connection` header announces whether the server will keep the
/// socket open for another request.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response_conn<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_one(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw), &mut Vec::new())
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /health?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_one(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let raw = b"POST /search HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"a\":[1,2]}";
        let req = read_one(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.body, b"{\"a\":[1,2]}");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close11 = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!read_one(&close11[..]).unwrap().keep_alive);
        let plain10 = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!read_one(&plain10[..]).unwrap().keep_alive);
        let ka10 = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(read_one(&ka10[..]).unwrap().keep_alive);
        let mixed = b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n";
        assert!(!read_one(&mixed[..]).unwrap().keep_alive, "close wins");
    }

    #[test]
    fn pipelined_bytes_carry_over_to_the_next_request() {
        let raw =
            b"POST /append HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /health HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(&raw[..]);
        let mut carry = Vec::new();
        let first = read_request(&mut cursor, &mut carry).unwrap();
        assert_eq!(first.body, b"abc");
        assert!(carry.starts_with(b"GET /health"));
        let second = read_request(&mut cursor, &mut carry).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/health");
        assert!(carry.is_empty());
    }

    #[test]
    fn clean_close_between_requests_is_closed_not_malformed() {
        assert!(matches!(read_one(b""), Err(HttpError::Closed)));
        // Half a request is still a framing error.
        assert!(matches!(
            read_one(b"GET / HT"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversize_head_and_body() {
        let huge_head = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read_one(huge_head.as_bytes()),
            Err(HttpError::TooLarge("request head"))
        ));
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_one(huge_body.as_bytes()),
            Err(HttpError::TooLarge("request body"))
        ));
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"[..],
            &b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
        ] {
            assert!(
                matches!(read_one(raw), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"error\":\"shed\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"shed\"}"));
    }

    #[test]
    fn keep_alive_response_announces_it() {
        let mut out = Vec::new();
        write_response_conn(&mut out, 200, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
