//! A bounded HTTP/1.1 request reader and response writer.
//!
//! The server speaks exactly as much HTTP as its JSON API needs: one
//! request per connection (`Connection: close` on every response), a
//! method, a path, and an optional `Content-Length` body. The reader is
//! hardened the same way the JSON parser is — the head is capped at
//! [`MAX_HEAD_BYTES`], the body at [`MAX_BODY_BYTES`], and a slowloris
//! client is cut off by the socket read timeout the caller installs.

use std::io::{self, Read, Write};

/// Maximum size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request body size. Appends of a few hundred thousand values
/// fit; anything larger belongs in the bulk ingest path, not HTTP.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeout).
    Io(io::Error),
    /// The bytes on the wire were not an acceptable request. The string
    /// is safe to echo back in an error payload.
    Malformed(String),
    /// Head or body exceeded its cap. `413` is the right answer.
    TooLarge(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`.
///
/// # Errors
/// [`HttpError`] on socket failure, malformed framing, or oversized input.
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, HttpError> {
    let (head, mut leftover) = read_head(stream)?;
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(HttpError::Malformed(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }

    // `leftover` is whatever body bytes arrived in the same reads as the
    // head; pull the remainder off the socket.
    if leftover.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length".to_string(),
        ));
    }
    let mut body = leftover.split_off(0);
    body.reserve(content_length - body.len());
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { method, path, body })
}

/// Reads until the `\r\n\r\n` head terminator, returning the head bytes
/// (terminator excluded) and any extra bytes read past it.
fn read_head<S: Read>(stream: &mut S) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let rest = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, rest));
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before request head completed".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response: status line, minimal headers, JSON body.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response<S: Write>(stream: &mut S, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /health?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let raw = b"POST /search HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"a\":[1,2]}";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.body, b"{\"a\":[1,2]}");
    }

    #[test]
    fn rejects_oversize_head_and_body() {
        let huge_head = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read_request(&mut Cursor::new(huge_head.as_bytes())),
            Err(HttpError::TooLarge("request head"))
        ));
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut Cursor::new(huge_body.as_bytes())),
            Err(HttpError::TooLarge("request body"))
        ));
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"[..],
            &b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    read_request(&mut Cursor::new(raw)),
                    Err(HttpError::Malformed(_))
                ),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"error\":\"shed\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"shed\"}"));
    }
}
