//! Criterion micro-benchmarks for the hot kernels of the reproduction:
//! geometry distances, the SE + DFT feature pipeline, R*-tree maintenance
//! and the three end-to-end search methods.
//!
//! Run: `cargo bench -p tsss-bench`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use tsss_core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator};
use tsss_dft::{fft_real, FeatureExtractor};
use tsss_geometry::line::{lld, Line};
use tsss_geometry::penetration::{line_penetrates_mbr, PenetrationMethod};
use tsss_geometry::scale_shift::optimal_scale_shift;
use tsss_geometry::se::se_transform;
use tsss_geometry::Mbr;
use tsss_index::{DataEntry, RTree, TreeConfig};

fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) * 20.0 + 50.0
        })
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    for n in [16usize, 128, 1024] {
        let u = pseudo_series(n, 1);
        let v = pseudo_series(n, 2);
        g.bench_with_input(BenchmarkId::new("lld_scaling_vs_shifting", n), &n, |b, _| {
            let l1 = Line::scaling(&u);
            let l2 = Line::shifting(&v);
            b.iter(|| black_box(lld(black_box(&l1), black_box(&l2))))
        });
        g.bench_with_input(BenchmarkId::new("optimal_scale_shift", n), &n, |b, _| {
            b.iter(|| black_box(optimal_scale_shift(black_box(&u), black_box(&v)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("se_transform", n), &n, |b, _| {
            b.iter(|| black_box(se_transform(black_box(&u))))
        });
    }
    g.finish();
}

fn bench_penetration(c: &mut Criterion) {
    let mut g = c.benchmark_group("penetration");
    let line = Line::new(vec![0.0; 6], pseudo_series(6, 3)).unwrap();
    let lo = pseudo_series(6, 4);
    let hi: Vec<f64> = lo.iter().map(|x| x + 5.0).collect();
    let mbr = Mbr::new(lo, hi).unwrap();
    g.bench_function("slab_test_6d", |b| {
        b.iter(|| black_box(line_penetrates_mbr(black_box(&line), black_box(&mbr))))
    });
    g.finish();
}

fn bench_dft(c: &mut Criterion) {
    let mut g = c.benchmark_group("dft");
    for n in [128usize, 512] {
        let x = pseudo_series(n, 5);
        g.bench_with_input(BenchmarkId::new("fft_real", n), &n, |b, _| {
            b.iter(|| black_box(fft_real(black_box(&x))))
        });
        let fx = FeatureExtractor::new(n, 3);
        let centred = se_transform(&x);
        g.bench_with_input(BenchmarkId::new("extract_fc3", n), &n, |b, _| {
            b.iter(|| black_box(fx.extract(black_box(&centred))))
        });
    }
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    g.sample_size(20);
    let points: Vec<DataEntry> = (0..20_000)
        .map(|i| DataEntry::new(pseudo_series(6, i as u64), i as u64))
        .collect();

    g.bench_function("insert_20k_rstar", |b| {
        b.iter(|| {
            let mut t = RTree::new(TreeConfig::paper(6));
            for e in &points {
                t.insert(e.point.to_vec(), e.id);
            }
            black_box(t.len())
        })
    });
    g.bench_function("bulk_load_20k", |b| {
        b.iter(|| {
            let t = tsss_index::bulk::bulk_load(TreeConfig::paper(6), points.clone());
            black_box(t.len())
        })
    });

    let mut tree = tsss_index::bulk::bulk_load(TreeConfig::paper(6), points.clone());
    let line = Line::scaling(&pseudo_series(6, 77));
    g.bench_function("line_query_20k", |b| {
        b.iter(|| {
            black_box(
                tree.line_query(&line, 1.0, PenetrationMethod::EnteringExiting)
                    .matches
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let data = MarketSimulator::new(MarketConfig::small(100, 400, 9)).generate();
    let mut cfg = EngineConfig::paper();
    cfg.window_len = 64;
    let mut engine = SearchEngine::build(&data, cfg);
    let query = data[0].values[100..164].to_vec();
    let eps = 0.01 * tsss_geometry::se::se_norm(&query);

    g.bench_function("indexed_search", |b| {
        b.iter(|| {
            black_box(
                engine
                    .search(&query, eps, SearchOptions::default())
                    .unwrap()
                    .matches
                    .len(),
            )
        })
    });
    g.bench_function("sequential_scan", |b| {
        b.iter(|| {
            black_box(
                engine
                    .sequential_search(&query, eps, CostLimit::UNLIMITED)
                    .unwrap()
                    .matches
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_penetration,
    bench_dft,
    bench_rtree,
    bench_end_to_end
);
criterion_main!(benches);
