//! Dependency-free micro-benchmarks for the hot kernels of the
//! reproduction: geometry distances, the SE + DFT feature pipeline, R*-tree
//! maintenance and the end-to-end search methods.
//!
//! `harness = false`: this is a plain binary timing each kernel with
//! `std::time::Instant` (median of repeated batches), so it runs offline
//! with no external benchmarking framework.
//!
//! Run: `cargo bench -p tsss-bench`

use std::hint::black_box;
use std::time::Instant;

use tsss_core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator};
use tsss_dft::{fft_real, FeatureExtractor};
use tsss_geometry::line::{lld, Line};
use tsss_geometry::penetration::{line_penetrates_mbr, PenetrationMethod};
use tsss_geometry::scale_shift::optimal_scale_shift;
use tsss_geometry::se::se_transform;
use tsss_geometry::Mbr;
use tsss_index::{DataEntry, RTree, TreeConfig};

fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) * 20.0 + 50.0
        })
        .collect()
}

/// Times `f` by running batches and reporting the median per-call time.
fn bench<R>(name: &str, iters_per_batch: usize, mut f: impl FnMut() -> R) {
    // Warm-up.
    for _ in 0..iters_per_batch.min(16) {
        black_box(f());
    }
    const BATCHES: usize = 9;
    let mut per_call: Vec<f64> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters_per_batch {
            black_box(f());
        }
        per_call.push(t0.elapsed().as_secs_f64() / iters_per_batch as f64);
    }
    per_call.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_call[BATCHES / 2];
    let (val, unit) = if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<44} {val:>10.3} {unit}/iter  (median of {BATCHES}×{iters_per_batch})");
}

fn bench_geometry() {
    for n in [16usize, 128, 1024] {
        let u = pseudo_series(n, 1);
        let v = pseudo_series(n, 2);
        let l1 = Line::scaling(&u);
        let l2 = Line::shifting(&v);
        bench(
            &format!("geometry/lld_scaling_vs_shifting/{n}"),
            10_000,
            || lld(black_box(&l1), black_box(&l2)),
        );
        bench(&format!("geometry/optimal_scale_shift/{n}"), 10_000, || {
            optimal_scale_shift(black_box(&u), black_box(&v)).unwrap()
        });
        bench(&format!("geometry/se_transform/{n}"), 10_000, || {
            se_transform(black_box(&u))
        });
    }
}

fn bench_penetration() {
    let line = Line::new(vec![0.0; 6], pseudo_series(6, 3)).unwrap();
    let lo = pseudo_series(6, 4);
    let hi: Vec<f64> = lo.iter().map(|x| x + 5.0).collect();
    let mbr = Mbr::new(lo, hi).unwrap();
    bench("penetration/slab_test_6d", 100_000, || {
        line_penetrates_mbr(black_box(&line), black_box(&mbr))
    });
}

fn bench_dft() {
    for n in [128usize, 512] {
        let x = pseudo_series(n, 5);
        bench(&format!("dft/fft_real/{n}"), 10_000, || {
            fft_real(black_box(&x))
        });
        let fx = FeatureExtractor::new(n, 3);
        let centred = se_transform(&x);
        bench(&format!("dft/extract_fc3/{n}"), 10_000, || {
            fx.extract(black_box(&centred))
        });
    }
}

fn bench_rtree() {
    let points: Vec<DataEntry> = (0..20_000)
        .map(|i| DataEntry::new(pseudo_series(6, i as u64), i as u64))
        .collect();

    bench("rtree/insert_20k_rstar", 1, || {
        let mut t = RTree::new(TreeConfig::paper(6)).expect("valid config");
        for e in &points {
            t.insert(e.point.to_vec(), e.id).expect("healthy store");
        }
        t.len()
    });
    bench("rtree/bulk_load_20k", 1, || {
        let t = tsss_index::bulk::bulk_load(TreeConfig::paper(6), points.clone())
            .expect("valid config");
        t.len()
    });

    let tree =
        tsss_index::bulk::bulk_load(TreeConfig::paper(6), points.clone()).expect("valid config");
    let line = Line::scaling(&pseudo_series(6, 77));
    bench("rtree/line_query_20k", 100, || {
        tree.line_query(&line, 1.0, PenetrationMethod::EnteringExiting)
            .expect("healthy store")
            .matches
            .len()
    });
}

fn bench_end_to_end() {
    let data = MarketSimulator::new(MarketConfig::small(100, 400, 9)).generate();
    let mut cfg = EngineConfig::paper();
    cfg.window_len = 64;
    let engine = SearchEngine::build(&data, cfg).expect("bench data fits");
    let query = data[0].values[100..164].to_vec();
    let eps = 0.01 * tsss_geometry::se::se_norm(&query);

    bench("end_to_end/indexed_search", 20, || {
        engine
            .search(&query, eps, SearchOptions::default())
            .unwrap()
            .matches
            .len()
    });
    bench("end_to_end/sequential_scan", 5, || {
        engine
            .sequential_search(&query, eps, CostLimit::UNLIMITED)
            .unwrap()
            .matches
            .len()
    });
}

fn main() {
    bench_geometry();
    bench_penetration();
    bench_dft();
    bench_rtree();
    bench_end_to_end();
}
