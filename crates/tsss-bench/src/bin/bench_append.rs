//! Ingest-path benchmark, machine-readable: ms per acknowledged append for
//! the volatile engine vs the write-ahead-logged durable engine, plus the
//! snapshot-publish roundtrip cost, written to `BENCH_append.json`.
//!
//! The durable column prices the durability contract itself — every
//! acknowledged append pays a frame encode, a CRC and an fsync before the
//! in-memory insert. The publish column prices what the server pays to
//! hand readers a fresh immutable snapshot after a mutation (a full
//! serialize + reload of the engine).
//!
//! Run: `cargo run --release -p tsss-bench --bin bench_append`
//! (optionally `TSSS_BENCH_OUT=path/to/BENCH_append.json`)

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::Instant;

use tsss_core::{DurableEngine, EngineConfig, SearchEngine};
use tsss_data::{MarketConfig, MarketSimulator};

const BATCH: usize = 64;
const BATCHES: usize = 40;

fn batch_values(i: usize) -> Vec<f64> {
    (0..BATCH)
        .map(|j| {
            let x = u32::try_from((i * BATCH + j) % 997).unwrap_or(0);
            f64::from(x).mul_add(0.25, -40.0)
        })
        .collect()
}

/// Streams `BATCHES` acknowledged appends into the engine; returns mean
/// ms per append call.
fn measure_appends(de: &mut DurableEngine) -> f64 {
    let t0 = Instant::now();
    for i in 0..BATCHES {
        de.append_values(0, &batch_values(i))
            .expect("benchmark appends must succeed");
    }
    let denom = u32::try_from(BATCHES).expect("BATCHES fits u32");
    t0.elapsed().as_secs_f64() * 1e3 / f64::from(denom)
}

fn main() {
    let data = MarketSimulator::new(MarketConfig::small(50, 400, 0x7555_1999)).generate();
    let cfg = EngineConfig::small(64);
    let engine = SearchEngine::build(&data, cfg.clone()).expect("build benchmark engine");

    // Volatile: acknowledgement is memory-only.
    let mut volatile = DurableEngine::new_volatile(
        SearchEngine::build(&data, cfg.clone()).expect("build benchmark engine"),
    );
    let volatile_ms = measure_appends(&mut volatile);

    // Durable: every acknowledgement is preceded by a WAL fsync.
    let dir = std::env::temp_dir().join(format!("tsss-bench-append-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create benchmark dir");
    let path = dir.join("engine.tsss");
    engine.save_to_path(&path).expect("save benchmark engine");
    let mut durable = DurableEngine::open(&path).expect("open durable engine");
    let durable_ms = measure_appends(&mut durable);

    // Snapshot publish: serialize + reload, the cost of giving readers a
    // fresh immutable engine after a mutation.
    let publish_ms = {
        let iters = 5u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut buf = Vec::new();
            durable
                .engine()
                .save_to(&mut buf)
                .expect("serialize snapshot");
            let fresh =
                SearchEngine::load_from(&mut std::io::Cursor::new(buf)).expect("reload snapshot");
            assert_eq!(fresh.num_windows(), durable.engine().num_windows());
        }
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
    };

    let fsync_overhead = durable_ms / volatile_ms;
    println!("volatile: {volatile_ms:.3} ms/append ({BATCH} values per append)");
    println!("durable:  {durable_ms:.3} ms/append (WAL fsync before ack)");
    println!("overhead: {fsync_overhead:.1}x");
    println!("publish:  {publish_ms:.3} ms/snapshot roundtrip");

    std::fs::remove_dir_all(&dir).ok();

    let out = std::env::var("TSSS_BENCH_OUT").unwrap_or_else(|_| "BENCH_append.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"append\",\n  \"dataset\": {{\"companies\": 50, \"days\": 400, \"window\": 64}},\n  \"values_per_append\": {BATCH},\n  \"appends\": {BATCHES},\n  \"volatile_ms_per_append\": {volatile_ms:.3},\n  \"durable_ms_per_append\": {durable_ms:.3},\n  \"fsync_overhead\": {fsync_overhead:.2},\n  \"publish_ms_per_snapshot\": {publish_ms:.3}\n}}\n"
    );
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");
}
