//! Scatter-gather sharding benchmark, machine-readable: ms/iter for the
//! same query batch over a `ShardedEngine` with 1, 2, 4 and 8 shards,
//! written to `BENCH_shard.json`.
//!
//! Like `bench_search`, this is the per-PR regression probe for the
//! sharded hot path: the four shard-count latencies are gated (see
//! [`tsss_bench::gate::SHARD_GATED`]); the derived `merge_overhead` —
//! one-shard scatter-gather over a direct engine call, i.e. the pure cost
//! of the fan-out/merge machinery — is reported but not gated.
//!
//! Run: `cargo run --release -p tsss-bench --bin bench_shard`
//! (optionally `TSSS_BENCH_OUT=path/to/BENCH_shard.json`)

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::Instant;

use tsss_bench::Harness;
use tsss_core::{EngineConfig, SearchOptions, ShardedEngine};

fn main() {
    // Moderate scale (~46k values): large enough that per-shard tree
    // descents dominate, small enough for a CI lane.
    let h = Harness::build(96, 480, 12, EngineConfig::paper(), 0x7555_1999);
    let epsilon = h.epsilon_grid()[3];
    let queries_per_iter = h.queries.len();

    let run_direct = |iters: u32| -> f64 {
        let _ = direct_iter(&h, epsilon);
        let t0 = Instant::now();
        for _ in 0..iters {
            assert!(direct_iter(&h, epsilon) > 0, "a search must verify work");
        }
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
    };
    let run_sharded = |shards: usize, iters: u32| -> f64 {
        let sh = ShardedEngine::build(&h.data, h.engine.config().clone(), shards)
            .expect("bench data fits the u32 window ids");
        assert_eq!(sh.num_shards(), shards);
        let _ = sharded_iter(&sh, &h.queries, epsilon);
        let t0 = Instant::now();
        for _ in 0..iters {
            assert!(
                sharded_iter(&sh, &h.queries, epsilon) > 0,
                "a search must verify work"
            );
        }
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
    };

    let direct_ms = run_direct(3);
    let shard_counts = [1usize, 2, 4, 8];
    let mut shard_ms = Vec::with_capacity(shard_counts.len());
    for &n in &shard_counts {
        shard_ms.push(run_sharded(n, 3));
    }
    let merge_overhead = shard_ms[0] / direct_ms;

    println!("direct:   {direct_ms:.3} ms/iter ({queries_per_iter} queries per iter)");
    for (&n, &ms) in shard_counts.iter().zip(&shard_ms) {
        println!("shard{n}:   {ms:.3} ms/iter");
    }
    println!("merge overhead (1 shard / direct): {merge_overhead:.2}x");

    let out = std::env::var("TSSS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"dataset\": {{\"companies\": 96, \"days\": 480, \"window\": 128, \"fc\": 3}},\n  \"queries_per_iter\": {queries_per_iter},\n  \"epsilon\": {epsilon},\n  \"direct_ms_per_iter\": {direct:.3},\n  \"shard1_ms_per_iter\": {s1:.3},\n  \"shard2_ms_per_iter\": {s2:.3},\n  \"shard4_ms_per_iter\": {s4:.3},\n  \"shard8_ms_per_iter\": {s8:.3},\n  \"merge_overhead\": {merge_overhead:.3}\n}}\n",
        direct = direct_ms,
        s1 = shard_ms[0],
        s2 = shard_ms[1],
        s4 = shard_ms[2],
        s8 = shard_ms[3],
    );
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");
}

/// One iteration over the whole query batch on the direct (unsharded)
/// engine; returns total verified matches as the anti-dead-code check.
fn direct_iter(h: &Harness, epsilon: f64) -> usize {
    let mut verified = 0;
    for q in &h.queries {
        let res = h
            .engine
            .search(q, epsilon, SearchOptions::default())
            .expect("bench search must succeed");
        verified += usize::try_from(res.stats.verified).unwrap_or(usize::MAX);
    }
    verified
}

/// One iteration over the whole query batch on a sharded engine.
fn sharded_iter(sh: &ShardedEngine, queries: &[Vec<f64>], epsilon: f64) -> usize {
    let mut verified = 0;
    for q in queries {
        let res = sh
            .search(q, epsilon, SearchOptions::default())
            .expect("bench search must succeed");
        assert_eq!(res.stats.degraded_shards, 0, "healthy bench shards");
        verified += usize::try_from(res.stats.verified).unwrap_or(usize::MAX);
    }
    verified
}
