//! Ablation: index dimensionality — the §7 motivation for DFT reduction.
//!
//! The paper: "the searching time increases as the overlap of the R-tree
//! increases. Moreover, the overlap increases significantly when the
//! dimension of the R-tree is larger than 10. Thus, in our implementation,
//! we use a technique … to reduce the dimension." This sweep indexes the
//! *same* windows at increasing dimension — DFT features from 2-d up to
//! 16-d, then the raw SE window (window_len-d) — and measures the R*-tree's
//! directory overlap and query cost.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_dimension`

#![forbid(unsafe_code)]

use tsss_bench::{median_window_fluctuation, Method};
use tsss_core::{EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};
use tsss_index::Node;

const WINDOW: usize = 34; // full-dim mode gives a 34-d tree (> the paper's 10)

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (companies, queries) = if quick { (60, 10) } else { (300, 40) };
    let data = MarketSimulator::new(MarketConfig {
        companies,
        days: 650,
        seed: 0x7555_1999,
        ..MarketConfig::paper()
    })
    .generate();
    let workload = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries,
            window_len: WINDOW,
            noise_level: 0.005,
            seed: 0xD1111,
            ..Default::default()
        },
    );
    let eps = 0.002 * median_window_fluctuation(&data, WINDOW);

    println!(
        "{:>8} {:>6} {:>10} {:>14} {:>12} {:>10}",
        "dim", "fc", "leaves M", "mean overlap", "pages/query", "cpu µs"
    );
    for fc in [Some(1usize), Some(3), Some(6), Some(8), None] {
        let mut cfg = EngineConfig::paper();
        cfg.window_len = WINDOW;
        cfg.fc = fc;
        let dim = cfg.feature_dim();
        let max_m = Node::max_internal_fanout(cfg.page_size, dim);
        if cfg.max_entries > max_m {
            cfg.max_entries = max_m;
            cfg.min_entries = (max_m * 2 / 5).max(2);
            cfg.reinsert_count = max_m * 3 / 10;
        }
        let engine = SearchEngine::build(&data, cfg).expect("data set fits the u32 window ids");

        // Mean pairwise overlap fraction among sibling directory boxes —
        // the quantity the paper says explodes past ~10 dimensions.
        let boxes = engine.tree().directory_mbrs().expect("healthy store");
        let sample = &boxes[..boxes.len().min(400)];
        let mut overlap_frac = 0.0;
        let mut pairs = 0u64;
        for (i, a) in sample.iter().enumerate() {
            for b in sample.iter().skip(i + 1) {
                let o = a.overlap(b);
                let denom = a.volume().min(b.volume());
                if denom > 0.0 {
                    overlap_frac += o / denom;
                    pairs += 1;
                }
            }
        }
        overlap_frac /= pairs.max(1) as f64;

        let mut pages = 0.0;
        let mut cpu = 0.0;
        for q in &workload.queries {
            let r = engine
                .search(&q.values, eps, SearchOptions::default())
                .unwrap();
            pages += r.stats.total_pages() as f64;
            cpu += r.stats.elapsed.as_secs_f64() * 1e6;
        }
        let n = workload.queries.len() as f64;
        println!(
            "{:>8} {:>6} {:>10} {:>13.4} {:>12.1} {:>10.1}",
            dim,
            fc.map(|f| f.to_string()).unwrap_or_else(|| "—".into()),
            engine.config().tree_config().leaf_max_entries,
            overlap_frac,
            pages / n,
            cpu / n
        );
    }
    let _ = Method::ALL;
    println!(
        "\n(same {} windows in every row; dim = window length {WINDOW} in the fc = — row)",
        WINDOW
    );
}
