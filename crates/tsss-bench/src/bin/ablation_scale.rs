//! Ablation **A4**: data-set size scaling.
//!
//! Grows the market from 100 to 1000 companies (0.065 M → 0.65 M values)
//! and tracks how both methods' page accesses and CPU scale. The sequential
//! scan is linear in the data by construction; the tree's exact-match cost
//! grows sublinearly, so the gap widens with scale — the regime where the
//! paper's Figure 5 lives.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_scale`

#![forbid(unsafe_code)]

use tsss_bench::{Harness, Method};
use tsss_core::EngineConfig;

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[100, 200, 400, 700, 1000]
    };
    let queries = if quick { 10 } else { 50 };

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "companies", "windows", "seq pages", "tree pages", "ratio", "seq µs", "tree µs"
    );
    for &companies in sizes {
        let h = Harness::build(companies, 650, queries, EngineConfig::paper(), 0x7555_1999);
        let eps = 0.001 * h.median_fluctuation;
        let seq = h.run_method(Method::Sequential, eps);
        let tree = h.run_method(Method::TreeEnteringExiting, eps);
        println!(
            "{:>10} {:>10} {:>12.1} {:>12.1} {:>12.2} {:>12.1} {:>12.1}",
            companies,
            h.engine.num_windows(),
            seq.pages,
            tree.pages,
            seq.pages / tree.pages,
            seq.cpu_us,
            tree.cpu_us
        );
    }
    println!("\n(eps = 0.001·median fluctuation; set 2 checks)");
}
