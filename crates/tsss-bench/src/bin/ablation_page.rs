//! Ablation **A5**: page size / fanout sweep.
//!
//! The paper fixes 4 KB pages with internal `M = 20`. This sweep varies the
//! page size (which scales the data-file page count, the leaf fanout, and —
//! holding `M` at the 4 KB-page maximum ratio — the directory fanout) and
//! reports the sequential / tree page-access trade-off.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_page`

#![forbid(unsafe_code)]

use tsss_bench::{Harness, Method};
use tsss_core::EngineConfig;
use tsss_index::Node;

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (companies, queries) = if quick { (200, 10) } else { (500, 50) };

    println!(
        "{:>10} {:>6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "page B", "M", "leafM", "seq pages", "tree pages", "idx height", "tree µs"
    );
    for page_size in [1024usize, 2048, 4096, 8192, 16384] {
        let mut cfg = EngineConfig::paper();
        cfg.page_size = page_size;
        // Scale the directory fanout with the page, keeping the paper's
        // 20-per-4KB density and 40 %/30 % ratios.
        let dim = cfg.feature_dim();
        let max_m = Node::max_internal_fanout(page_size, dim);
        cfg.max_entries = (20 * page_size / 4096).clamp(4, max_m);
        cfg.min_entries = (cfg.max_entries * 2 / 5).max(2);
        cfg.reinsert_count = cfg.max_entries * 3 / 10;
        let h = Harness::build(companies, 650, queries, cfg, 0x7555_1999);
        let eps = 0.001 * h.median_fluctuation;
        let seq = h.run_method(Method::Sequential, eps);
        let tree = h.run_method(Method::TreeEnteringExiting, eps);
        println!(
            "{:>10} {:>6} {:>8} {:>12.1} {:>12.1} {:>12} {:>10.1}",
            page_size,
            h.engine.config().max_entries,
            h.engine.config().tree_config().leaf_max_entries,
            seq.pages,
            tree.pages,
            h.engine.index_height(),
            tree.cpu_us
        );
    }
    println!("\n(eps = 0.001·median fluctuation; set 2 checks)");
}
