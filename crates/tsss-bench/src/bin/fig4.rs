//! Figure 4 reproduction: average CPU time per query vs error bound ε for
//! the paper's three experiment sets.
//!
//! Expected shape (paper §7): set 1 (sequential) is flat in ε; sets 2–3
//! (tree) are far below it at small ε and grow with ε; set 3 (spheres) is
//! *slower* than set 2 despite being the "optimised" variant.
//!
//! Run: `cargo run --release -p tsss-bench --bin fig4`
//! (set `TSSS_QUICK=1` for a fast reduced-scale run)

#![forbid(unsafe_code)]

use tsss_bench::{print_table, write_csv, Harness, Method};

fn main() {
    let h = Harness::from_env();
    println!(
        "data: {} series, {} values, {} windows indexed; median fluctuation {:.3}",
        h.data.len(),
        h.data.iter().map(|s| s.len()).sum::<usize>(),
        h.engine.num_windows(),
        h.median_fluctuation
    );

    let grid = h.epsilon_grid();
    let mut rows = Vec::new();
    for method in Method::ALL {
        for &eps in &grid {
            let cell = h.run_method(method, eps);
            eprintln!(
                "[fig4] {method} eps={eps:.4}: cpu {:.1} µs, {:.1} matches",
                cell.cpu_us, cell.matches
            );
            rows.push((method, cell));
        }
    }

    print_table(
        "Figure 4 — CPU time vs error bound",
        "average CPU µs per query",
        &rows,
        |c| c.cpu_us,
    );
    print_table(
        "supporting — matches vs error bound",
        "average verified matches per query",
        &rows,
        |c| c.matches,
    );
    write_csv(std::path::Path::new("results/fig4.csv"), &rows);

    // Shape checks (the paper's qualitative findings).
    let cpu = |m: Method, i: usize| {
        rows.iter()
            .filter(|(mm, _)| *mm == m)
            .nth(i)
            .unwrap()
            .1
            .cpu_us
    };
    let last = grid.len() - 1;
    let seq_flat = cpu(Method::Sequential, last) / cpu(Method::Sequential, 0);
    println!("\nshape checks:");
    println!("  sequential flatness (cpu@max_eps / cpu@0): {seq_flat:.2} (paper: ~1, constant)");
    println!(
        "  tree speedup at eps=0 (set1/set2): {:.0}x (paper: tree ≪ sequential)",
        cpu(Method::Sequential, 0) / cpu(Method::TreeEnteringExiting, 0)
    );
    println!(
        "  tree growth with eps (set2: cpu@max/cpu@0): {:.1}x (paper: increasing)",
        cpu(Method::TreeEnteringExiting, last) / cpu(Method::TreeEnteringExiting, 0)
    );
    let sphere_overhead: f64 = (0..grid.len())
        .map(|i| cpu(Method::TreeBoundingSpheres, i) / cpu(Method::TreeEnteringExiting, i))
        .sum::<f64>()
        / grid.len() as f64;
    println!(
        "  sphere overhead (mean set3/set2 cpu): {sphere_overhead:.2}x (paper: > 1, spheres lose)"
    );
}
