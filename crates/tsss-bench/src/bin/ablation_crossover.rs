//! Ablation: **where the tree stops winning** — extending Figure 5's ε axis
//! beyond the paper's plotted range.
//!
//! Because the model's distance is measured in the target's amplitude,
//! raising ε eventually makes every low-fluctuation window a match (`a ≈ 0`
//! fits anything quiet). Past that point the tree must fetch so many
//! candidate pages that the sequential scan's flat 1270 pages win. The
//! paper plots only the selective regime ("the number of page accesses of
//! our proposed method is less than that of the sequential search method
//! over the whole range of the error bound"); this bench locates the
//! crossover explicitly.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_crossover`

#![forbid(unsafe_code)]

use tsss_bench::{Harness, Method};

fn main() {
    let h = Harness::from_env();
    let seq = h.run_method(Method::Sequential, 0.0);
    println!(
        "sequential scan: {:.0} pages/query (flat in eps)\n",
        seq.pages
    );
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "eps/median", "matches", "idx pages", "data pages", "tree pages", "tree wins"
    );
    let mut crossover: Option<f64> = None;
    for frac in [0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let eps = frac * h.median_fluctuation;
        let cell = h.run_method(Method::TreeEnteringExiting, eps);
        let wins = cell.pages < seq.pages;
        if !wins && crossover.is_none() {
            crossover = Some(frac);
        }
        println!(
            "{:>12.3} {:>14.1} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            frac,
            cell.matches,
            cell.index_pages,
            cell.data_pages,
            cell.pages,
            if wins { "yes" } else { "NO" }
        );
    }
    match crossover {
        Some(f) => println!(
            "\ncrossover at eps ≈ {f}·median fluctuation — beyond it, candidate \
             verification I/O exceeds one full scan."
        ),
        None => println!("\nno crossover in the swept range — the tree wins throughout."),
    }
}
