//! Ablation **A7**: parallel batch query execution (an extension beyond
//! the paper).
//!
//! The paper's experiments run 100 queries serially and report per-query
//! averages. `SearchEngine::search_batch` answers the same batch on N
//! worker threads over one shared engine; this sweep measures the batch
//! wall-clock speedup from 1 worker up to the machine's parallelism and
//! asserts the invariant that makes the parallel numbers citable: the
//! per-query page counts (Figure 5's metric) are *identical* at every
//! worker count, because each query's accesses are tallied by a
//! thread-local scope rather than diffed off the global counter.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_parallel`

#![forbid(unsafe_code)]

use tsss_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let eps = 0.001 * h.median_fluctuation;
    let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut sweep = vec![1usize, 2];
    let mut w = 4;
    while w < max_workers {
        sweep.push(w);
        w *= 2;
    }
    if *sweep.last().unwrap() != max_workers && max_workers > 2 {
        sweep.push(max_workers);
    }

    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>14}",
        "workers", "wall-clock", "speedup", "pages/query", "matches/query"
    );
    let mut rows = Vec::new();
    let mut baseline = None;
    let mut serial_pages = None;
    for &workers in &sweep {
        let (cell, wall) = h.run_tree_batch(eps, workers);
        let base = *baseline.get_or_insert(wall.as_secs_f64());
        // Per-query accounting must not depend on the worker count.
        let pages = *serial_pages.get_or_insert(cell.pages);
        assert!(
            (cell.pages - pages).abs() < 1e-9,
            "page counts changed under parallelism: {} vs {}",
            cell.pages,
            pages
        );
        println!(
            "{workers:>8} {:>12.2?} {:>9.2}x {:>14.1} {:>14.2}",
            wall,
            base / wall.as_secs_f64(),
            cell.pages,
            cell.matches
        );
        rows.push((workers, wall.as_secs_f64(), cell));
    }

    let path = std::path::Path::new("results/ablation_parallel.csv");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut out = String::from("workers,wall_s,speedup,pages_per_query,matches_per_query\n");
    let base = rows[0].1;
    for (workers, wall, cell) in &rows {
        out.push_str(&format!(
            "{workers},{wall:.6},{:.3},{:.2},{:.2}\n",
            base / wall,
            cell.pages,
            cell.matches
        ));
    }
    std::fs::write(path, out).expect("write csv");
    eprintln!("[harness] wrote {}", path.display());
    println!(
        "\n(eps = 0.001·median fluctuation; page counts asserted identical across worker counts)"
    );
}
