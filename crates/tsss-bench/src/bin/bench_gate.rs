//! CI bench-regression gate: compare a fresh bench run against the
//! checked-in baseline and exit nonzero on a >tolerance latency
//! regression.
//!
//! ```text
//! bench_gate --bench search --baseline BENCH_search.json \
//!            --current /tmp/BENCH_search.json [--tolerance 0.15]
//! ```
//!
//! The gated keys per bench live in [`tsss_bench::gate`]; derived ratios
//! are never gated. Run `bench_search` / `bench_append` / `bench_shard`
//! with `TSSS_BENCH_OUT` pointing at a scratch path first, then hand both
//! files to this binary.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use tsss_bench::gate;

fn main() -> ExitCode {
    let mut bench = None;
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = gate::DEFAULT_TOLERANCE;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => bench = args.next(),
            "--baseline" => baseline = args.next(),
            "--current" => current = args.next(),
            "--tolerance" => {
                let Some(t) = args.next().and_then(|t| t.parse::<f64>().ok()) else {
                    eprintln!("bench_gate: --tolerance needs a number (e.g. 0.15)");
                    return ExitCode::from(2);
                };
                tolerance = t;
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate --bench search|append|shard --baseline <file> \
                     --current <file> [--tolerance 0.15]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_gate: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let (Some(bench), Some(baseline), Some(current)) = (bench, baseline, current) else {
        eprintln!("bench_gate: --bench, --baseline and --current are required (see --help)");
        return ExitCode::from(2);
    };
    let Some(gated) = gate::gated_keys(&bench) else {
        eprintln!("bench_gate: unknown bench `{bench}` (expected `search`, `append` or `shard`)");
        return ExitCode::from(2);
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_json), Some(cur_json)) = (read(&baseline), read(&current)) else {
        return ExitCode::from(2);
    };

    let report = gate::check(&base_json, &cur_json, gated, tolerance);
    print!("{}", report.render());
    if report.passed() {
        println!(
            "bench_gate: {bench} within {:.0}% of {baseline}",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: {bench} regressed more than {:.0}% against {baseline}",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}
