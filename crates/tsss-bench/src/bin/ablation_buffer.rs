//! Ablation **A6**: buffer-pool effect (an extension beyond the paper).
//!
//! The paper counts raw, unbuffered page accesses. Real systems put an LRU
//! buffer pool in front of the disk; this sweep gives the index file a pool
//! of varying capacity and reports the *physical* reads (misses) per query
//! when the pool persists across a 100-query batch. The tree's upper levels
//! cache perfectly, so even a tiny pool removes most of its I/O — while the
//! sequential scan (cycling through 1270 pages) defeats LRU caching until
//! the pool holds the whole file.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_buffer`

#![forbid(unsafe_code)]

use tsss_core::{EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (companies, queries) = if quick { (200, 20) } else { (500, 100) };
    let data = MarketSimulator::new(MarketConfig {
        companies,
        days: 650,
        seed: 0x7555_1999,
        ..MarketConfig::paper()
    })
    .generate();
    let window_len = EngineConfig::paper().window_len;
    let workload = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries,
            window_len,
            noise_level: 0.02,
            seed: 0xB0FF,
            ..Default::default()
        },
    );
    let eps = {
        let med = tsss_bench::median_window_fluctuation(&data, window_len);
        0.001 * med
    };

    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "frames", "logical/query", "misses/query", "hit rate"
    );
    for frames in [0usize, 8, 32, 128, 512, 2048] {
        let mut cfg = EngineConfig::paper();
        cfg.index_buffer_frames = frames;
        let engine = SearchEngine::build(&data, cfg).expect("data set fits the u32 window ids");
        engine.reset_counters();
        // One warm batch: the pool persists across queries.
        for q in &workload.queries {
            let _ = engine
                .search(&q.values, eps, SearchOptions::default())
                .unwrap();
        }
        let stats = engine.index_stats();
        let n = workload.queries.len() as f64;
        let logical = stats.reads() as f64 / n;
        let misses = stats.misses() as f64 / n;
        let hit_rate = if stats.reads() == 0 {
            0.0
        } else {
            stats.hits() as f64 / stats.reads() as f64
        };
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>11.1}%",
            frames,
            logical,
            misses,
            100.0 * hit_rate
        );
    }
    println!("\n(index file only; eps = 0.001·median fluctuation; pool persists across the batch)");
}
