//! Figure 5 reproduction: average page accesses per query vs error bound ε
//! for the paper's three experiment sets, plus the two headline numeric
//! claims:
//!
//! * **C1** — the sequential scan reads a constant
//!   `0.65 M values × 8 B / 4 KB ≈ 1300` pages per query;
//! * **C2** — at ε = 0 the tree methods access ~1000× fewer pages.
//!
//! Run: `cargo run --release -p tsss-bench --bin fig5`
//! (set `TSSS_QUICK=1` for a fast reduced-scale run)

#![forbid(unsafe_code)]

use tsss_bench::{print_table, write_csv, Harness, Method};

fn main() {
    let h = Harness::from_env();
    let data_pages = h.engine.data_page_count();
    println!(
        "data: {} values in {} pages of 4 KB",
        h.data.iter().map(|s| s.len()).sum::<usize>(),
        data_pages
    );

    let grid = h.epsilon_grid();
    let mut rows = Vec::new();
    for method in Method::ALL {
        for &eps in &grid {
            let cell = h.run_method(method, eps);
            eprintln!(
                "[fig5] {method} eps={eps:.4}: {:.1} pages ({:.1} index + {:.1} data)",
                cell.pages, cell.index_pages, cell.data_pages
            );
            rows.push((method, cell));
        }
    }

    print_table(
        "Figure 5 — page accesses vs error bound",
        "average page accesses per query",
        &rows,
        |c| c.pages,
    );
    write_csv(std::path::Path::new("results/fig5.csv"), &rows);

    let pages = |m: Method, i: usize| {
        rows.iter()
            .filter(|(mm, _)| *mm == m)
            .nth(i)
            .unwrap()
            .1
            .pages
    };
    let last = grid.len() - 1;
    println!("\nclaim checks:");
    println!(
        "  C1: sequential pages/query = {:.0} (paper: ≈ 1300 at 0.65 M values; \
         file is exactly {} pages)",
        pages(Method::Sequential, 0),
        data_pages
    );
    println!(
        "  C2: pages ratio at eps=0 (set1/set2) = {:.0}x (paper: ~1000x)",
        pages(Method::Sequential, 0) / pages(Method::TreeEnteringExiting, 0)
    );
    let tree_below =
        (0..=last).all(|i| pages(Method::TreeEnteringExiting, i) < pages(Method::Sequential, i));
    println!(
        "  tree below sequential over the whole range: {} (paper: yes)",
        if tree_below { "yes" } else { "NO" }
    );
}
