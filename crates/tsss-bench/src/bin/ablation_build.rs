//! Ablation: index-construction strategy — coordinate STR bulk loading vs
//! **polar** (direction-first) bulk loading vs the paper's one-by-one
//! R*-tree insertion.
//!
//! All three produce identical answers; they differ in box geometry. The
//! engine's only query shape is a *line through the origin* (the query's
//! SE-line), and a line through the origin penetrates a box only if the
//! box's angular extent covers the line's direction. Polar tiling makes
//! boxes angular sectors, collapsing the ε = 0 traversal from "cut across
//! the whole feature cloud" to "walk one sector" — this bench quantifies
//! the effect on the Figure 5 metric.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_build`

#![forbid(unsafe_code)]

use std::time::Instant;

use tsss_bench::{median_window_fluctuation, Method};
use tsss_core::{BuildMethod, EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Insertion-build of the full 523 000 windows is the limiting factor.
    let (companies, queries) = if quick { (100, 10) } else { (500, 50) };
    let data = MarketSimulator::new(MarketConfig {
        companies,
        days: 650,
        seed: 0x7555_1999,
        ..MarketConfig::paper()
    })
    .generate();
    let window_len = EngineConfig::paper().window_len;
    let workload = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries,
            window_len,
            noise_level: 0.02,
            seed: 0xB111D,
            ..Default::default()
        },
    );
    let med = median_window_fluctuation(&data, window_len);

    println!(
        "{:>12} {:>10} | {:>11} {:>11} {:>11}",
        "build", "build s", "pages@0", "pages@1e-3", "pages@5e-3"
    );
    for build in [
        BuildMethod::BulkStr,
        BuildMethod::BulkPolar,
        BuildMethod::Insert,
    ] {
        let mut cfg = EngineConfig::paper();
        cfg.build = build;
        let t0 = Instant::now();
        let engine = SearchEngine::build(&data, cfg).expect("data set fits the u32 window ids");
        let build_s = t0.elapsed().as_secs_f64();

        let mut row = Vec::new();
        for frac in [0.0, 0.001, 0.005] {
            let eps = frac * med;
            let mut pages = 0.0;
            for q in &workload.queries {
                let r = engine
                    .search(&q.values, eps, SearchOptions::default())
                    .unwrap();
                pages += r.stats.total_pages() as f64;
            }
            row.push(pages / workload.queries.len() as f64);
        }
        println!(
            "{:>12} {:>10.1} | {:>11.1} {:>11.1} {:>11.1}",
            format!("{build:?}"),
            build_s,
            row[0],
            row[1],
            row[2]
        );
    }
    let _ = Method::ALL;
    println!("\n(set 2 checks; eps as fractions of the median window fluctuation)");
}
