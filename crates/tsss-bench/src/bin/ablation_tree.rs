//! Ablation **A2**: R*-tree vs Guttman R-tree (quadratic and linear splits)
//! as the underlying index — the paper chose the R*-tree citing its
//! behaviour being "well understood in the database community".
//!
//! Both trees answer identically (the tests prove it); this sweep measures
//! the *cost* difference: build time, node count, and per-query pages/CPU
//! at a fixed ε. Because split quality only matters for incrementally built
//! trees, the engines here are built with one-by-one insertion, not bulk
//! loading.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_tree`

#![forbid(unsafe_code)]

use std::time::Instant;

use tsss_bench::{median_window_fluctuation, Method};
use tsss_core::{EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, WorkloadConfig};
use tsss_index::SplitPolicy;

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Incremental R*-insertion of half a million windows is the slow part;
    // default to a mid-sized setting unless the full scale is forced.
    let (companies, days, queries) = if quick { (60, 650, 10) } else { (200, 650, 50) };
    let data = MarketSimulator::new(MarketConfig {
        companies,
        days,
        seed: 0x7555_1999,
        ..MarketConfig::paper()
    })
    .generate();
    let window_len = EngineConfig::paper().window_len;
    let workload = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries,
            window_len,
            noise_level: 0.02,
            seed: 0xAB1E,
            ..Default::default()
        },
    );
    let eps = 0.002 * median_window_fluctuation(&data, window_len);

    println!(
        "{:>20} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "split policy", "build s", "height", "avg pages", "avg cands", "cpu µs"
    );
    for split in [
        SplitPolicy::RStar,
        SplitPolicy::GuttmanQuadratic,
        SplitPolicy::GuttmanLinear,
    ] {
        let mut cfg = EngineConfig::paper();
        cfg.split = split;
        cfg.build = tsss_core::BuildMethod::Insert; // split quality only shows on incremental builds
        let t0 = Instant::now();
        let engine = SearchEngine::build(&data, cfg).expect("data set fits the u32 window ids");
        let build = t0.elapsed().as_secs_f64();

        let mut pages = 0.0;
        let mut cands = 0.0;
        let mut cpu = 0.0;
        for q in &workload.queries {
            let r = engine
                .search(&q.values, eps, SearchOptions::default())
                .unwrap();
            pages += r.stats.total_pages() as f64;
            cands += r.stats.candidates as f64;
            cpu += r.stats.elapsed.as_secs_f64() * 1e6;
        }
        let n = workload.queries.len() as f64;
        println!(
            "{:>20} {:>12.2} {:>10} {:>12.1} {:>12.1} {:>10.1}",
            format!("{split:?}"),
            build,
            engine.index_height(),
            pages / n,
            cands / n,
            cpu / n
        );
    }
    let _ = Method::ALL; // (methods fixed to set 2 here)
    println!("\n(incremental builds, eps = 0.002·median fluctuation, set 2 checks)");
}
