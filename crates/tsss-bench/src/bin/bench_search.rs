//! Headline search benchmark, machine-readable: ms/iter for the indexed
//! path vs the sequential scan, written to `BENCH_search.json`.
//!
//! Unlike the figure binaries (which sweep the whole ε grid at paper
//! scale), this is the per-PR regression probe: one representative ε on a
//! moderate data set, fast enough for CI, emitting a small JSON file that
//! is checked into the repository each PR and uploaded as a CI artifact —
//! so the performance history rides the git history.
//!
//! Run: `cargo run --release -p tsss-bench --bin bench_search`
//! (optionally `TSSS_BENCH_OUT=path/to/BENCH_search.json`)

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::Instant;

use tsss_bench::{Harness, Method};
use tsss_core::EngineConfig;

fn main() {
    // Moderate scale: ~120k values, enough for the index to matter, small
    // enough for a CI lane (the paper-scale sweeps live in fig4/fig5).
    let h = Harness::build(200, 600, 20, EngineConfig::paper(), 0x7555_1999);
    // Mid-grid ε: selective but non-trivial (some verification happens).
    let epsilon = h.epsilon_grid()[3];
    let queries_per_iter = h.queries.len();

    let measure = |method: Method, iters: u32| -> f64 {
        // One warmup iteration, then the mean of timed ones.
        let _ = h.run_method(method, epsilon);
        let t0 = Instant::now();
        for _ in 0..iters {
            let cell = h.run_method(method, epsilon);
            assert!(cell.pages > 0.0, "a search must touch pages");
        }
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
    };

    let indexed_ms = measure(Method::TreeEnteringExiting, 5);
    let seqscan_ms = measure(Method::Sequential, 2);
    let speedup = seqscan_ms / indexed_ms;

    println!("indexed:  {indexed_ms:.3} ms/iter ({queries_per_iter} queries per iter)");
    println!("seqscan:  {seqscan_ms:.3} ms/iter");
    println!("speedup:  {speedup:.1}x");

    let out = std::env::var("TSSS_BENCH_OUT").unwrap_or_else(|_| "BENCH_search.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"search\",\n  \"dataset\": {{\"companies\": 200, \"days\": 600, \"window\": 128, \"fc\": 3}},\n  \"queries_per_iter\": {queries_per_iter},\n  \"epsilon\": {epsilon},\n  \"indexed_ms_per_iter\": {indexed_ms:.3},\n  \"seqscan_ms_per_iter\": {seqscan_ms:.3},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");
}
