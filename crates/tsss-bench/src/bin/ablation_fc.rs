//! Ablation **A1**: how many Fourier coefficients does the index need?
//!
//! The paper fixes `f_c = 3` "according to the work in \[2\]". This sweep
//! rebuilds the engine for `f_c ∈ {1, 2, 3, 4, 6, 8}` and reports, per
//! query: candidates, false alarms, page accesses and CPU. More
//! coefficients tighten the filter (fewer false alarms) but deepen/widen the
//! index (bigger entries ⇒ smaller fanout ⇒ more node pages), reproducing
//! the classic dimensionality trade-off that makes 3 a sweet spot.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_fc`

#![forbid(unsafe_code)]

use tsss_bench::{write_csv, Harness, Method};
use tsss_core::EngineConfig;

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (companies, days, queries) = if quick {
        (200, 650, 20)
    } else {
        (1000, 650, 100)
    };

    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "fc", "dim", "candidates", "false alarms", "idx pages", "data pages", "cpu µs"
    );
    let mut rows = Vec::new();
    for fc in [1usize, 2, 3, 4, 6, 8] {
        let mut cfg = EngineConfig::paper();
        cfg.fc = Some(fc);
        // High-dimensional entries shrink the page fanout below the paper's
        // M = 20; clamp while keeping the 40 %/30 % ratios.
        let max_m = tsss_index::Node::max_internal_fanout(cfg.page_size, cfg.feature_dim());
        if cfg.max_entries > max_m {
            cfg.max_entries = max_m;
            cfg.min_entries = (max_m * 2 / 5).max(2);
            cfg.reinsert_count = max_m * 3 / 10;
        }
        let h = Harness::build(companies, days, queries, cfg, 0x7555_1999);
        let eps = 0.002 * h.median_fluctuation;
        let cell = h.run_method(Method::TreeEnteringExiting, eps);
        println!(
            "{:>4} {:>10} {:>12.1} {:>14.1} {:>12.1} {:>12.1} {:>10.1}",
            fc,
            2 * fc,
            cell.candidates,
            cell.false_alarms,
            cell.index_pages,
            cell.data_pages,
            cell.cpu_us
        );
        rows.push((Method::TreeEnteringExiting, cell));
    }
    write_csv(std::path::Path::new("results/ablation_fc.csv"), &rows);
    println!("\n(eps fixed at 0.002·median fluctuation; fc = 3 is the paper's setting)");
}
