//! Ablation for claim **C3**: why the bounding-sphere heuristic (set 3)
//! loses to the plain Entering/Exiting-Points test (set 2).
//!
//! The paper's explanation (§7, citing the SR-tree observation \[26\]): R*-tree
//! MBRs have *long diagonals but small volumes*, so the circumscribed sphere
//! is far too big (it rarely rejects) and the inscribed sphere far too small
//! (it rarely accepts) — most tests fall through to the slab test anyway,
//! making the spheres pure overhead. This binary measures exactly that:
//!
//! * the elongation (diagonal / shortest side) distribution of the tree's
//!   directory boxes,
//! * the decision breakdown of every sphere test across the ε grid, with
//!   the CPU penalty.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_spheres`

#![forbid(unsafe_code)]

use tsss_bench::{Harness, Method};
use tsss_core::SearchOptions;
use tsss_geometry::penetration::{PenetrationMethod, SphereStats};

fn main() {
    let h = Harness::from_env();

    // Box-shape evidence.
    let mut elong: Vec<f64> = h
        .engine
        .tree()
        .directory_mbrs()
        .expect("healthy store")
        .iter()
        .map(|m| {
            let min_side = (0..m.dim())
                .map(|i| m.extent(i))
                .fold(f64::INFINITY, f64::min);
            if min_side <= 0.0 {
                f64::INFINITY
            } else {
                m.diagonal() / min_side
            }
        })
        .collect();
    elong.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Percentile rank of an in-memory Vec: the product is < len by construction.
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let pct = |p: f64| elong[((elong.len() - 1) as f64 * p) as usize];
    println!(
        "MBR elongation (diagonal / shortest side) over {} directory boxes:",
        elong.len()
    );
    println!(
        "  p10 {:.1}   p50 {:.1}   p90 {:.1}   p99 {:.1}",
        pct(0.10),
        pct(0.50),
        pct(0.90),
        pct(0.99)
    );
    println!(
        "  (a perfect cube scores √d ≈ {:.2}; larger ⇒ long diagonal / small volume)",
        (h.engine.config().feature_dim() as f64).sqrt()
    );

    // Decision breakdown across the ε grid.
    println!(
        "\n{:>12} | {:>13} {:>13} {:>13} | {:>10} {:>10} {:>8}",
        "epsilon", "outer-reject", "inner-accept", "fallback", "set2 µs", "set3 µs", "penalty"
    );
    let grid = h.epsilon_grid();
    for &eps in &grid {
        // Aggregate the sphere decision counters directly.
        let mut agg = SphereStats::default();
        let queries = h.queries.clone();
        for q in &queries {
            let r = h
                .engine
                .search(
                    q,
                    eps,
                    SearchOptions {
                        method: PenetrationMethod::BoundingSpheres,
                        ..Default::default()
                    },
                )
                .expect("valid query");
            agg.merge(&r.stats.index.sphere);
        }
        let total = agg.total().max(1) as f64;
        let set2 = h.run_method(Method::TreeEnteringExiting, eps);
        let set3 = h.run_method(Method::TreeBoundingSpheres, eps);
        println!(
            "{:>12.4} | {:>12.1}% {:>12.1}% {:>12.1}% | {:>10.1} {:>10.1} {:>7.2}x",
            eps,
            100.0 * agg.outer_reject as f64 / total,
            100.0 * agg.inner_accept as f64 / total,
            100.0 * agg.fallback as f64 / total,
            set2.cpu_us,
            set3.cpu_us,
            set3.cpu_us / set2.cpu_us
        );
    }
    println!(
        "\npaper C3: the fallback share dominates, so the spheres cannot pay for \
         themselves — set 3's CPU ≥ set 2's at equal page counts."
    );
}
