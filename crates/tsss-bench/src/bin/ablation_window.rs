//! Ablation **A3**: window length sweep.
//!
//! The window length `n` sets the dimension of the SE-Plane (n−1, §5.1) —
//! the paper's motivation for DFT reduction — and trades specificity
//! (longer windows are more selective) against the number of indexed
//! windows. This sweep holds `f_c = 3` and varies `n`.
//!
//! Run: `cargo run --release -p tsss-bench --bin ablation_window`

#![forbid(unsafe_code)]

use tsss_bench::{Harness, Method};
use tsss_core::EngineConfig;

fn main() {
    let quick = std::env::var("TSSS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (companies, days, queries) = if quick {
        (200, 650, 20)
    } else {
        (1000, 650, 100)
    };

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "n", "windows", "matches", "candidates", "idx pages", "data pg", "cpu µs"
    );
    for n in [32usize, 64, 128, 256] {
        let mut cfg = EngineConfig::paper();
        cfg.window_len = n;
        let h = Harness::build(companies, days, queries, cfg, 0x7555_1999);
        let eps = 0.002 * h.median_fluctuation;
        let cell = h.run_method(Method::TreeEnteringExiting, eps);
        println!(
            "{:>6} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>10.1} {:>10.1}",
            n,
            h.engine.num_windows(),
            cell.matches,
            cell.candidates,
            cell.index_pages,
            cell.data_pages,
            cell.cpu_us
        );
    }
    println!("\n(eps = 0.002·median fluctuation at each n; set 2 checks)");
}
