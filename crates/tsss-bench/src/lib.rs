//! Shared harness for the paper-reproduction benchmarks.
//!
//! The paper's evaluation (§7) runs three method "sets" over real Hong Kong
//! stock data (1000 companies, ~650 000 values), 100 queries per
//! experiment, reporting **average CPU time** (Figure 4) and **average page
//! accesses** (Figure 5) as functions of the error bound ε:
//!
//! * **set 1** — sequential scan, distance per Lemma 2,
//! * **set 2** — R*-tree + Entering/Exiting-Points penetration checks,
//! * **set 3** — R*-tree + inner/outer bounding spheres with E/E fallback.
//!
//! [`Harness::paper`] builds the full-scale synthetic equivalent
//! (see `DESIGN.md` §3); [`Harness::quick`] is a reduced setting for smoke
//! runs. [`Harness::run_method`] executes one (method, ε) cell and returns
//! the averaged row; binaries under `src/bin/` assemble the figures and
//! ablations from these cells and write CSVs under `results/`.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use tsss_core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, Series, WorkloadConfig};
use tsss_geometry::penetration::PenetrationMethod;

pub mod gate;

/// The three experiment sets of the paper's §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Set 1: sequential scan.
    Sequential,
    /// Set 2: R*-tree with Entering/Exiting-Points checks.
    TreeEnteringExiting,
    /// Set 3: R*-tree with bounding-sphere heuristic.
    TreeBoundingSpheres,
}

impl Method {
    /// All three sets, in the paper's order.
    pub const ALL: [Method; 3] = [
        Method::Sequential,
        Method::TreeEnteringExiting,
        Method::TreeBoundingSpheres,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Sequential => "set1-sequential",
            Method::TreeEnteringExiting => "set2-ee-points",
            Method::TreeBoundingSpheres => "set3-spheres",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One averaged measurement cell: a (method, ε) point of Figures 4/5.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// The error bound used.
    pub epsilon: f64,
    /// Mean CPU time per query, microseconds (Figure 4's axis).
    pub cpu_us: f64,
    /// Mean page accesses per query (Figure 5's axis).
    pub pages: f64,
    /// Mean index-file pages of that.
    pub index_pages: f64,
    /// Mean data-file pages of that.
    pub data_pages: f64,
    /// Mean candidates the method distance-checked.
    pub candidates: f64,
    /// Mean verified matches.
    pub matches: f64,
    /// Mean false alarms (candidates whose exact distance exceeded ε) — the
    /// pipeline's own counter, not derived from `candidates - matches`.
    pub false_alarms: f64,
    /// Mean sphere-test fallback rate (set 3 only; 0 otherwise).
    pub sphere_fallback_rate: f64,
}

/// A ready-to-measure experiment: engine + query workload.
pub struct Harness {
    /// The engine under test.
    pub engine: SearchEngine,
    /// The data set (kept for ε calibration and ablation rebuilds).
    pub data: Vec<Series>,
    /// The query batch (the paper uses 100 queries per experiment).
    pub queries: Vec<Vec<f64>>,
    /// Median SE-norm of the data windows — the natural unit for ε.
    pub median_fluctuation: f64,
}

impl Harness {
    /// Builds a harness over a synthetic market with the given shape and
    /// engine configuration.
    pub fn build(
        companies: usize,
        days: usize,
        queries: usize,
        cfg: EngineConfig,
        seed: u64,
    ) -> Self {
        let data = MarketSimulator::new(MarketConfig {
            companies,
            days,
            seed,
            ..MarketConfig::paper()
        })
        .generate();
        let window_len = cfg.window_len;
        let t0 = Instant::now();
        let engine =
            SearchEngine::build(&data, cfg).expect("synthetic market fits the u32 window ids");
        eprintln!(
            "[harness] built index: {} windows, height {}, {:.1?}",
            engine.num_windows(),
            engine.index_height(),
            t0.elapsed()
        );
        let workload = QueryWorkload::generate(
            &data,
            WorkloadConfig {
                queries,
                window_len,
                noise_level: 0.005,
                seed: seed ^ 0x51ED,
                ..Default::default()
            },
        );
        let median_fluctuation = median_window_fluctuation(&data, window_len);
        Self {
            engine,
            data,
            queries: workload.queries.into_iter().map(|q| q.values).collect(),
            median_fluctuation,
        }
    }

    /// Full paper scale: 1000 companies × 650 days (650 000 values), window
    /// 128, f_c = 3, 100 queries, paper tree parameters, STR-packed index.
    ///
    /// Build-method note: the paper's pre-processing inserts windows one by
    /// one, but on this synthetic feature geometry an insertion-built
    /// R*-tree accumulates enough directory overlap that line queries visit
    /// *more* pages than a sequential scan — the packed (STR) tree is what
    /// reproduces the paper's relative ordering. `ablation_build` quantifies
    /// the gap; `EXPERIMENTS.md` discusses it.
    pub fn paper() -> Self {
        Self::build(1000, 650, 100, EngineConfig::paper(), 0x7555_1999)
    }

    /// Reduced scale for smoke runs (~1/5 the data, 20 queries).
    pub fn quick() -> Self {
        Self::build(200, 650, 20, EngineConfig::paper(), 0x7555_1999)
    }

    /// Chooses the harness size from the environment: set `TSSS_QUICK=1`
    /// for the reduced setting.
    pub fn from_env() -> Self {
        if std::env::var("TSSS_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            eprintln!("[harness] TSSS_QUICK=1 — reduced scale");
            Self::quick()
        } else {
            Self::paper()
        }
    }

    /// The ε grid used for Figures 4/5: fractions of the median window
    /// fluctuation, from exact search to moderately permissive.
    ///
    /// The paper plots an unspecified absolute range. Because the model's
    /// distance is measured in the *target's* amplitude, every window whose
    /// fluctuation is below ε matches trivially (with `a ≈ 0`), so
    /// selectivity collapses once ε reaches the amplitude of the quietest
    /// windows; the informative regime — where the paper's curves live — is
    /// below that. This grid spans selectivities from exact match to
    /// roughly a per-mille of the windows.
    pub fn epsilon_grid(&self) -> Vec<f64> {
        [0.0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.012]
            .iter()
            .map(|f| f * self.median_fluctuation)
            .collect()
    }

    /// Runs one (method, ε) cell over the whole query batch and averages.
    pub fn run_method(&self, method: Method, epsilon: f64) -> Cell {
        let mut cpu = 0.0f64;
        let mut pages = 0.0f64;
        let mut index_pages = 0.0f64;
        let mut data_pages = 0.0f64;
        let mut candidates = 0.0f64;
        let mut matches = 0.0f64;
        let mut false_alarms = 0.0f64;
        let mut sphere_fallbacks = 0u64;
        let mut sphere_total = 0u64;
        let n = self.queries.len() as f64;
        for q in &self.queries {
            self.engine.clear_caches().expect("healthy store");
            let result = match method {
                Method::Sequential => self
                    .engine
                    .sequential_search(q, epsilon, CostLimit::UNLIMITED)
                    .expect("valid query"),
                Method::TreeEnteringExiting => self
                    .engine
                    .search(q, epsilon, SearchOptions::default())
                    .expect("valid query"),
                Method::TreeBoundingSpheres => self
                    .engine
                    .search(
                        q,
                        epsilon,
                        SearchOptions {
                            method: PenetrationMethod::BoundingSpheres,
                            ..Default::default()
                        },
                    )
                    .expect("valid query"),
            };
            cpu += result.stats.elapsed.as_secs_f64() * 1e6;
            pages += result.stats.total_pages() as f64;
            index_pages += result.stats.index_pages as f64;
            data_pages += result.stats.data_pages as f64;
            candidates += result.stats.candidates as f64;
            matches += result.stats.verified as f64;
            false_alarms += result.stats.false_alarms as f64;
            sphere_fallbacks += result.stats.index.sphere.fallback;
            sphere_total += result.stats.index.sphere.total();
        }
        Cell {
            epsilon,
            cpu_us: cpu / n,
            pages: pages / n,
            index_pages: index_pages / n,
            data_pages: data_pages / n,
            candidates: candidates / n,
            matches: matches / n,
            false_alarms: false_alarms / n,
            sphere_fallback_rate: if sphere_total == 0 {
                0.0
            } else {
                sphere_fallbacks as f64 / sphere_total as f64
            },
        }
    }

    /// Runs the set-2 tree method over the whole query batch with
    /// [`SearchEngine::search_batch`] on `workers` threads, returning the
    /// averaged cell plus the batch wall-clock time.
    ///
    /// Page counts are the same logical (unbuffered) accesses `run_method`
    /// reports — the thread-local per-query tallies make them independent
    /// of the worker count, which `ablation_parallel` asserts.
    pub fn run_tree_batch(&self, epsilon: f64, workers: usize) -> (Cell, std::time::Duration) {
        self.engine.clear_caches().expect("healthy store");
        let t0 = Instant::now();
        let results = self
            .engine
            .search_batch(&self.queries, epsilon, SearchOptions::default(), workers)
            .expect("valid queries");
        let wall = t0.elapsed();
        let n = results.len() as f64;
        let mut cell = Cell {
            epsilon,
            cpu_us: 0.0,
            pages: 0.0,
            index_pages: 0.0,
            data_pages: 0.0,
            candidates: 0.0,
            matches: 0.0,
            false_alarms: 0.0,
            sphere_fallback_rate: 0.0,
        };
        for r in &results {
            cell.cpu_us += r.stats.elapsed.as_secs_f64() * 1e6 / n;
            cell.pages += r.stats.total_pages() as f64 / n;
            cell.index_pages += r.stats.index_pages as f64 / n;
            cell.data_pages += r.stats.data_pages as f64 / n;
            cell.candidates += r.stats.candidates as f64 / n;
            cell.matches += r.stats.verified as f64 / n;
            cell.false_alarms += r.stats.false_alarms as f64 / n;
        }
        (cell, wall)
    }
}

/// Median SE-norm over a sample of the data's windows — the natural scale
/// for ε in this model (distances are measured in target-fluctuation units).
pub fn median_window_fluctuation(data: &[Series], window_len: usize) -> f64 {
    let mut norms: Vec<f64> = Vec::new();
    for s in data.iter().step_by((data.len() / 50).max(1)) {
        if s.len() < window_len {
            continue;
        }
        let step = ((s.len() - window_len) / 20).max(1);
        let mut off = 0;
        while off + window_len <= s.len() {
            norms.push(tsss_geometry::se::se_norm(&s.values[off..off + window_len]));
            off += step;
        }
    }
    assert!(!norms.is_empty(), "no windows to calibrate epsilon against");
    norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    norms[norms.len() / 2]
}

/// Writes measurement cells as a CSV (one row per (method, cell)).
///
/// # Panics
/// Panics on I/O errors — benchmark binaries have no meaningful recovery.
pub fn write_csv(path: &Path, rows: &[(Method, Cell)]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(
        f,
        "method,epsilon,cpu_us,pages,index_pages,data_pages,candidates,matches,false_alarms,sphere_fallback_rate"
    )
    .unwrap();
    for (m, c) in rows {
        writeln!(
            f,
            "{},{:.6},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.4}",
            m.label(),
            c.epsilon,
            c.cpu_us,
            c.pages,
            c.index_pages,
            c.data_pages,
            c.candidates,
            c.matches,
            c.false_alarms,
            c.sphere_fallback_rate
        )
        .unwrap();
    }
    eprintln!("[harness] wrote {}", path.display());
}

/// Formats a console table of cells grouped by ε (methods as columns).
// Epsilon values are table keys copied verbatim between rows, so exact
// equality is the correct lookup.
#[allow(clippy::float_cmp)]
pub fn print_table(title: &str, metric: &str, rows: &[(Method, Cell)], pick: fn(&Cell) -> f64) {
    println!("\n== {title} ==");
    println!(
        "{:>12} | {:>16} {:>16} {:>16}",
        "epsilon", "set1-sequential", "set2-ee-points", "set3-spheres"
    );
    let mut epsilons: Vec<f64> = rows.iter().map(|(_, c)| c.epsilon).collect();
    epsilons.sort_by(|a, b| a.partial_cmp(b).unwrap());
    epsilons.dedup();
    for eps in epsilons {
        let get = |m: Method| -> String {
            rows.iter()
                .find(|(mm, c)| *mm == m && c.epsilon == eps)
                .map(|(_, c)| format!("{:.1}", pick(c)))
                .unwrap_or_else(|| "—".into())
        };
        println!(
            "{:>12.4} | {:>16} {:>16} {:>16}",
            eps,
            get(Method::Sequential),
            get(Method::TreeEnteringExiting),
            get(Method::TreeBoundingSpheres)
        );
    }
    println!("({metric})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_are_stable() {
        // The CSV schema depends on these strings.
        assert_eq!(Method::Sequential.label(), "set1-sequential");
        assert_eq!(Method::TreeEnteringExiting.label(), "set2-ee-points");
        assert_eq!(Method::TreeBoundingSpheres.label(), "set3-spheres");
        assert_eq!(Method::ALL.len(), 3);
    }

    #[test]
    fn median_fluctuation_is_positive_and_scale_covariant() {
        let data = MarketSimulator::new(MarketConfig {
            companies: 10,
            days: 120,
            seed: 9,
            ..MarketConfig::paper()
        })
        .generate();
        let med = median_window_fluctuation(&data, 32);
        assert!(med > 0.0);
        // Scaling every price by 10 scales the fluctuation by 10.
        let scaled: Vec<Series> = data
            .iter()
            .map(|s| Series::new(s.name.clone(), s.values.iter().map(|v| v * 10.0).collect()))
            .collect();
        let med10 = median_window_fluctuation(&scaled, 32);
        assert!((med10 / med - 10.0).abs() < 1e-9);
    }

    #[test]
    fn harness_epsilon_grid_is_sorted_and_starts_at_zero() {
        let mut cfg = EngineConfig::paper();
        cfg.window_len = 16;
        let h = Harness::build(4, 60, 3, cfg, 1);
        let grid = h.epsilon_grid();
        assert_eq!(grid[0], 0.0);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn run_method_produces_consistent_cells() {
        let mut cfg = EngineConfig::paper();
        cfg.window_len = 16;
        let h = Harness::build(4, 60, 3, cfg, 1);
        let seq = h.run_method(Method::Sequential, 0.0);
        let tree = h.run_method(Method::TreeEnteringExiting, 0.0);
        assert_eq!(seq.epsilon, 0.0);
        assert_eq!(seq.index_pages, 0.0);
        assert!(seq.data_pages > 0.0);
        assert!((seq.pages - seq.index_pages - seq.data_pages).abs() < 1e-9);
        assert!((tree.pages - tree.index_pages - tree.data_pages).abs() < 1e-9);
        assert_eq!(seq.candidates as usize, h.engine.num_windows());
        // Same matches from both methods.
        assert_eq!(seq.matches, tree.matches);
        // The pipeline's stage identity holds in the averages too (no cost
        // limit in these runs, so candidates = verified + false alarms).
        assert!((seq.candidates - seq.matches - seq.false_alarms).abs() < 1e-9);
        assert!((tree.candidates - tree.matches - tree.false_alarms).abs() < 1e-9);
    }

    #[test]
    fn write_csv_roundtrips_through_the_header() {
        let cell = Cell {
            epsilon: 0.5,
            cpu_us: 1.0,
            pages: 2.0,
            index_pages: 1.5,
            data_pages: 0.5,
            candidates: 3.0,
            matches: 1.0,
            false_alarms: 2.0,
            sphere_fallback_rate: 0.25,
        };
        let dir = std::env::temp_dir().join("tsss-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.csv");
        write_csv(&path, &[(Method::Sequential, cell)]);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("method,epsilon,cpu_us"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("set1-sequential,0.5"));
        std::fs::remove_file(&path).ok();
    }
}
