//! End-to-end tests of the `bench_gate` binary: spawn the real executable
//! against small baseline/current JSON files in a temp dir and check exit
//! codes — in particular that `--tolerance` actually moves the threshold.

use std::path::PathBuf;
use std::process::Command;

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsss-gate-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn gate(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(args)
        .output()
        .expect("spawn bench_gate binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_search_json(path: &PathBuf, indexed: f64, seqscan: f64) {
    std::fs::write(
        path,
        format!(
            "{{\n  \"bench\": \"search\",\n  \"indexed_ms_per_iter\": {indexed:.3},\n  \"seqscan_ms_per_iter\": {seqscan:.3}\n}}\n"
        ),
    )
    .expect("write bench json");
}

#[test]
fn tolerance_flag_moves_the_threshold() {
    let dir = workdir("tolerance");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    write_search_json(&base, 20.0, 100.0);
    // +5% on both metrics: inside the 15% default, outside a 1% tolerance.
    write_search_json(&cur, 21.0, 105.0);
    let common = [
        "--bench",
        "search",
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ];

    let (code, out, _) = gate(&common);
    assert_eq!(code, Some(0), "default tolerance should pass: {out}");
    assert!(out.contains("within 15%"), "unexpected: {out}");

    let mut tight = common.to_vec();
    tight.extend(["--tolerance", "0.01"]);
    let (code, out, err) = gate(&tight);
    assert_eq!(code, Some(1), "1% tolerance should fail: {out}");
    assert!(err.contains("regressed more than 1%"), "unexpected: {err}");

    let mut loose = common.to_vec();
    loose.extend(["--tolerance", "0.5"]);
    write_search_json(&cur, 26.0, 130.0); // +30%
    let (code, out, _) = gate(&loose);
    assert_eq!(code, Some(0), "50% tolerance should absorb +30%: {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_code_2() {
    // A non-numeric tolerance is a usage error, not a gate verdict.
    let (code, _, err) = gate(&["--tolerance", "lots"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("--tolerance needs a number"), "{err}");

    // So is an unknown bench name; the message lists the known ones.
    let dir = workdir("usage");
    let f = dir.join("x.json");
    write_search_json(&f, 1.0, 1.0);
    let (code, _, err) = gate(&[
        "--bench",
        "figure4",
        "--baseline",
        f.to_str().unwrap(),
        "--current",
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(2));
    assert!(
        err.contains("`search`, `append` or `shard`"),
        "stale bench list: {err}"
    );

    // And missing required flags.
    let (code, _, err) = gate(&[]);
    assert_eq!(code, Some(2));
    assert!(err.contains("required"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_bench_keys_are_gated() {
    let dir = workdir("shard");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    let shard_json = |s1: f64| {
        format!(
            "{{\n  \"bench\": \"shard\",\n  \"shard1_ms_per_iter\": {s1:.3},\n  \"shard2_ms_per_iter\": 10.0,\n  \"shard4_ms_per_iter\": 10.0,\n  \"shard8_ms_per_iter\": 10.0,\n  \"merge_overhead\": 99.0\n}}\n"
        )
    };
    std::fs::write(&base, shard_json(10.0)).unwrap();
    // merge_overhead is wildly different but ungated; shard1 +100% fails.
    std::fs::write(&cur, shard_json(20.0)).unwrap();
    let (code, out, _) = gate(&[
        "--bench",
        "shard",
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("FAIL shard1_ms_per_iter"), "{out}");
    assert!(
        !out.contains("merge_overhead"),
        "ratio must not be gated: {out}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
