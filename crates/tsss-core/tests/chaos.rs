//! Chaos suite: seeded fault injection against the whole engine.
//!
//! The contract under test (ISSUE: fault-injection storage layer): with
//! faults injected beneath the checksum layer, **every** query either
//!
//! * returns exactly the sequential-scan oracle's answer (possibly via the
//!   degradation path, with `stats.degraded` set), or
//! * returns a typed [`EngineError`] — never a panic, never a silently
//!   wrong answer.
//!
//! Every case is deterministic: the default run sweeps the eight seeds
//! below, and `TSSS_CHAOS_SEED=<u64>` re-runs any single seed (the CI
//! `chaos` job drives this over its seed matrix).

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use tsss_core::{CostLimit, DegradationPolicy, EngineConfig, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_rand::Rng;
use tsss_storage::FaultConfig;

const WINDOW: usize = 12;
const QUERIES_PER_SEED: usize = 12;

/// Eight fixed seeds, or the single seed from `TSSS_CHAOS_SEED`.
fn seeds() -> Vec<u64> {
    match std::env::var("TSSS_CHAOS_SEED") {
        Ok(s) => vec![s
            .parse()
            .expect("TSSS_CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).map(|i| 0xC4A0_5000 + i).collect(),
    }
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    cfg
}

fn market(seed: u64) -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(4, 50, seed)).generate()
}

fn random_query(rng: &mut Rng) -> Vec<f64> {
    if rng.bool() {
        rng.f64_vec(WINDOW, -20.0, 120.0)
    } else {
        rng.f64_vec(WINDOW, -1.0, 1.0)
    }
}

fn fallback_opts() -> SearchOptions {
    SearchOptions {
        degradation: DegradationPolicy::SeqScanFallback,
        ..Default::default()
    }
}

fn error_opts() -> SearchOptions {
    SearchOptions {
        degradation: DegradationPolicy::Error,
        ..Default::default()
    }
}

/// Read faults on both stores: every query answer is the oracle's or a
/// typed corruption error, under both degradation policies.
#[test]
fn read_fault_chaos_matches_oracle_or_fails_typed() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed);
        let data = market(seed);
        let pristine = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut chaotic = SearchEngine::build(&data, engine_cfg()).unwrap();
        // The read path retries transient faults up to three times, so the
        // per-attempt rates are raised to keep a meaningful probability of a
        // *permanent* (all-attempts-exhausted) failure: 0.6³ ≈ 0.22 per
        // index read, 0.3³ ≈ 0.027 per data read.
        let idx = chaotic.inject_index_faults(FaultConfig::read_errors(seed, 0.6));
        let dat = chaotic.inject_data_faults(FaultConfig::read_errors(seed ^ 0xFF, 0.3));

        let mut degraded = 0usize;
        let mut errors = 0usize;
        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            let oracle = pristine
                .sequential_search(&q, eps, CostLimit::UNLIMITED)
                .unwrap();

            match chaotic.search(&q, eps, fallback_opts()) {
                Ok(res) => {
                    assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
                    if res.stats.degraded {
                        degraded += 1;
                        assert!(res.stats.degraded_reason.is_some(), "seed {seed}");
                    }
                }
                // The fallback scan itself can hit an injected data-read
                // fault; that must surface as a typed corruption error.
                Err(e) => {
                    errors += 1;
                    assert!(e.is_corruption(), "seed {seed}: untyped error {e}");
                }
            }

            match chaotic.search(&q, eps, error_opts()) {
                Ok(res) => {
                    assert!(!res.stats.degraded, "seed {seed}: Error policy degraded");
                    assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
                }
                Err(e) => assert!(e.is_corruption(), "seed {seed}: untyped error {e}"),
            }
        }
        // The profile is aggressive enough that faults actually fired.
        assert!(
            idx.read_errors() + dat.read_errors() > 0,
            "seed {seed}: no fault ever fired — the chaos test has no teeth"
        );
        // And at least one query took *some* non-happy path.
        assert!(degraded + errors > 0, "seed {seed}: chaos was a no-op");
    }
}

/// Index read faults only, through the parallel batch path: the fallback
/// scan runs on the healthy data store, so every per-query result must
/// equal the oracle regardless of thread interleaving.
#[test]
fn batch_read_fault_chaos_every_result_matches_oracle() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0xBA7C);
        let data = market(seed);
        let pristine = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut chaotic = SearchEngine::build(&data, engine_cfg()).unwrap();
        chaotic.inject_index_faults(FaultConfig::read_errors(seed, 0.3));

        let queries: Vec<Vec<f64>> = (0..QUERIES_PER_SEED)
            .map(|_| random_query(&mut rng))
            .collect();
        let eps = rng.f64_range(1.0, 20.0);
        let results = chaotic
            .search_batch(&queries, eps, fallback_opts(), 4)
            .expect("index faults degrade per query; the healthy data store answers");
        for (q, res) in queries.iter().zip(&results) {
            let oracle = pristine
                .sequential_search(q, eps, CostLimit::UNLIMITED)
                .unwrap();
            assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
        }
    }
}

/// Write-side faults (torn writes + bit rot) during dynamic appends: every
/// append and every later query either succeeds honestly or fails typed.
#[test]
fn write_fault_chaos_never_panics_or_lies() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0x3717E);
        let data = market(seed);
        let mut e = SearchEngine::build(&data, engine_cfg()).unwrap();
        e.inject_index_faults(FaultConfig {
            torn_write: 0.05,
            bit_flip: 0.05,
            ..FaultConfig::none(seed)
        });

        // A torn write is silent at write time, so an append only errors
        // when it *reads* a page poisoned by an earlier fault. After any
        // failed append the index may have legitimately lost entries
        // mid-operation, so oracle equality is only asserted while every
        // append has been acknowledged.
        let mut all_acked = true;
        for round in 0..6 {
            let tail = rng.f64_vec(3, -5.0, 5.0);
            match e.append_values(round % 4, &tail) {
                Ok(()) => {}
                Err(err) => {
                    assert!(err.is_corruption(), "seed {seed}: untyped error {err}");
                    all_acked = false;
                }
            }
        }

        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            match e.search(&q, eps, fallback_opts()) {
                Ok(res) => {
                    if all_acked {
                        // The data store is healthy, so the engine's own
                        // sequential scan is the exact oracle for whatever
                        // the file currently holds.
                        let oracle = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
                        assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
                    }
                }
                Err(err) => assert!(err.is_corruption(), "seed {seed}: untyped error {err}"),
            }
        }

        // Structural scrub: clean or typed, never a panic.
        if let Err(err) = e.tree_mut().check_invariants() {
            let msg = err.to_string();
            assert!(!msg.is_empty(), "seed {seed}");
        }
    }
}

/// Direct page corruption (bytes smashed behind the checksum): fallback
/// queries return exactly the oracle with the degraded flag set; the
/// `Error` policy surfaces typed corruption.
#[test]
fn smashed_page_chaos_degrades_to_exact_oracle() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5A5A);
        let data = market(seed);
        let pristine = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut chaotic = SearchEngine::build(&data, engine_cfg()).unwrap();

        // Smash a random half of the index pages (free pages reject the
        // corruption call with a typed error — that is fine too).
        let extent = chaotic.index_extent() as u32;
        for p in 0..extent {
            if rng.bool() {
                let _ = chaotic.corrupt_index_page(p, &mut |b| {
                    let i = b.len() / 2;
                    b[i] ^= 0x81;
                });
            }
        }
        chaotic.tree_mut().clear_cache().unwrap();

        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            let oracle = pristine
                .sequential_search(&q, eps, CostLimit::UNLIMITED)
                .unwrap();

            let res = chaotic
                .search(&q, eps, fallback_opts())
                .expect("healthy data store: the fallback always answers");
            assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");

            if let Err(e) = chaotic.search(&q, eps, error_opts()) {
                assert!(e.is_corruption(), "seed {seed}: untyped error {e}");
            }
        }
    }
}

/// The full recovery arc under chaos, per seed: smash index pages →
/// queries degrade (exact answers via the fallback) → `repair` rebuilds
/// the index from the data file → the very next query is answered by the
/// index again, bit-identical to the sequential oracle, breaker closed.
#[test]
fn recovery_chaos_repair_restores_indexed_service() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9E4A12);
        let data = market(seed);
        let pristine = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut chaotic = SearchEngine::build(&data, engine_cfg()).unwrap();

        // Smash every index page: any probe is guaranteed to find damage
        // (a random subset can miss the probe paths on some seeds).
        let extent = chaotic.index_extent() as u32;
        for p in 0..extent {
            let _ = chaotic.corrupt_index_page(p, &mut |b| {
                let i = b.len() / 3;
                b[i] ^= 0x42;
            });
        }
        chaotic.tree_mut().clear_cache().unwrap();

        // Phase 1: degraded service. Every answer is still exact.
        let mut degraded = 0usize;
        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            let oracle = pristine
                .sequential_search(&q, eps, CostLimit::UNLIMITED)
                .unwrap();
            let res = chaotic
                .search(&q, eps, fallback_opts())
                .expect("healthy data store: the fallback always answers");
            assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
            if res.stats.degraded {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "seed {seed}: corruption never surfaced");

        // Phase 2: repair. The quarantine drains and the breaker closes.
        let report = chaotic
            .repair()
            .unwrap_or_else(|e| panic!("seed {seed}: repair failed on a healthy data file: {e}"));
        assert_eq!(
            report.windows_reindexed,
            chaotic.num_windows(),
            "seed {seed}"
        );
        let h = chaotic.health();
        assert_eq!(h.breaker.to_string(), "closed", "seed {seed}");
        assert!(h.quarantined_pages.is_empty(), "seed {seed}");

        // Phase 3: indexed service restored, answers bit-identical.
        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            let oracle = pristine
                .sequential_search(&q, eps, CostLimit::UNLIMITED)
                .unwrap();
            let res = chaotic.search(&q, eps, fallback_opts()).unwrap();
            assert!(!res.stats.degraded, "seed {seed}: still degraded");
            assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
            for (a, b) in res.matches.iter().zip(&oracle.matches) {
                assert_eq!(a.id, b.id, "seed {seed}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "seed {seed}");
            }
        }
    }
}

/// Tiny page budgets: the guard is a hard stop — either the full (oracle)
/// answer within budget, or a typed budget error. Never a degraded scan,
/// which would defeat the point of bounding work.
#[test]
fn budget_chaos_is_exact_or_a_typed_hard_error() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0xB0D6E7);
        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();

        for _ in 0..QUERIES_PER_SEED {
            let q = random_query(&mut rng);
            let eps = rng.f64_range(0.0, 20.0);
            let budget = rng.usize_below(30) as u64;
            let opts = SearchOptions {
                page_budget: Some(budget),
                ..Default::default()
            };
            match e.search(&q, eps, opts) {
                Ok(res) => {
                    assert!(!res.stats.degraded, "seed {seed}");
                    let oracle = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
                    assert_eq!(res.id_set(), oracle.id_set(), "seed {seed}");
                }
                Err(tsss_core::EngineError::PageBudgetExceeded { budget: b }) => {
                    assert_eq!(b, budget, "seed {seed}");
                }
                Err(other) => panic!("seed {seed}: unexpected error {other}"),
            }
        }
    }
}

/// Persistence chaos: single-bit flips and truncations anywhere in a saved
/// engine stream are rejected at load with a typed error — the layered
/// magic tags, header checksums and per-page checksums leave no byte
/// uncovered.
#[test]
fn persisted_stream_chaos_rejects_every_flip_and_truncation() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(seed ^ 0xF11F);
        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();

        for _ in 0..24 {
            let pos = rng.usize_below(buf.len());
            let bit = rng.usize_below(8);
            let mut bad = buf.clone();
            bad[pos] ^= 1 << bit;
            assert!(
                SearchEngine::load_from(&mut std::io::Cursor::new(bad)).is_err(),
                "seed {seed}: flip at byte {pos} bit {bit} loaded cleanly"
            );
        }
        for _ in 0..12 {
            let cut = rng.usize_below(buf.len());
            assert!(
                SearchEngine::load_from(&mut std::io::Cursor::new(&buf[..cut])).is_err(),
                "seed {seed}: truncation at {cut} loaded cleanly"
            );
        }
        // The untouched stream still loads and answers.
        let l = SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        let q = data[0].window(7, WINDOW).unwrap().to_vec();
        let a = e.search(&q, 5.0, SearchOptions::default()).unwrap();
        let b = l.search(&q, 5.0, SearchOptions::default()).unwrap();
        assert_eq!(a.id_set(), b.id_set(), "seed {seed}");
    }
}
