//! Crash-point chaos: kill the ingest path at every injection point,
//! reopen from disk, and prove the recovered engine answers **bit-identical**
//! to a twin that never crashed.
//!
//! The contract under test (ISSUE: crash-safe streaming ingest): an append
//! acknowledged by [`DurableEngine`] is fsynced to the write-ahead log
//! before the reply, so for every [`CrashPoint`] on the path
//!
//! * a kill **before** the fsync loses only the un-acknowledged append
//!   (the client never got an `Ok`), and
//! * a kill **anywhere after** the fsync — before indexing, mid-insert,
//!   or between a save and the log truncate — loses nothing: replay at
//!   open restores exactly the never-crashed state.
//!
//! Every case is deterministic: the default run sweeps the four seeds
//! below, and `TSSS_CRASH_SEED=<u64>` re-runs any single seed (the CI
//! `crash-recovery` job drives this over its seed matrix).

use std::path::{Path, PathBuf};

use tsss_core::{DurableEngine, EngineConfig, EngineError, SearchEngine, SearchOptions};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_storage::CrashPoint;

const WINDOW: usize = 16;

/// Four fixed seeds, or the single seed from `TSSS_CRASH_SEED`.
fn seeds() -> Vec<u64> {
    match std::env::var("TSSS_CRASH_SEED") {
        Ok(s) => vec![s
            .parse()
            .expect("TSSS_CRASH_SEED must be an unsigned integer")],
        Err(_) => (1..=4).map(|i| 0xC8A5_4000 + i).collect(),
    }
}

fn market(seed: u64) -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(4, 70, seed)).generate()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsss-crash-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

/// One scripted mutation against a [`DurableEngine`].
#[derive(Clone)]
enum Op {
    /// Append values to an existing series.
    Append(usize, Vec<f64>),
    /// Create a new named series with initial values.
    New(String, Vec<f64>),
    /// Checkpoint the engine (truncates the log).
    Save,
}

/// Deterministic value streams: seed-dependent but reproducible, long
/// enough that every append creates indexable windows.
fn vals(seed: u64, tag: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = seed
                .wrapping_mul(31)
                .wrapping_add(tag.wrapping_mul(7))
                .wrapping_add(u64::try_from(i).unwrap())
                % 97;
            // Exactly representable small integers: replay must reproduce
            // these bit-for-bit, so the inputs themselves are exact.
            f64::from(u32::try_from(x).unwrap()).mul_add(0.5, -20.0)
        })
        .collect()
}

/// The ingest script every twin runs: appends around a mid-script save,
/// so crash recovery is exercised both on an empty and a non-empty log.
fn script(seed: u64) -> Vec<Op> {
    vec![
        Op::Append(0, vals(seed, 1, 24)),
        Op::New("live".to_string(), vals(seed, 2, 40)),
        Op::Save,
        Op::Append(1, vals(seed, 3, 18)),
        Op::Append(2, vals(seed, 4, 9)),
    ]
}

fn apply(de: &mut DurableEngine, op: &Op) -> Result<(), EngineError> {
    match op {
        Op::Append(s, v) => de.append_values(*s, v),
        Op::New(name, v) => de.append_series(&Series::new(name, v.clone())).map(|_| ()),
        Op::Save => de.save(),
    }
}

/// The engine position the op advances, captured before the crash so the
/// client's retry decision ("did my write land?") can be made after reopen.
fn position_before(de: &DurableEngine, op: &Op) -> usize {
    match op {
        Op::Append(s, _) => de.engine().series_len(*s).unwrap(),
        Op::New(..) => de.engine().num_series(),
        Op::Save => 0,
    }
}

fn op_landed(de: &DurableEngine, op: &Op, before: usize) -> bool {
    match op {
        Op::Append(s, v) => de.engine().series_len(*s).unwrap() == before + v.len(),
        Op::New(..) => de.engine().num_series() > before,
        // A save interrupted after the atomic rename still left the log
        // non-empty; re-running it is always safe and finishes the job.
        Op::Save => false,
    }
}

/// Queries covering both pre-existing data and the appended tails.
fn query_set(seed: u64, data: &[Series]) -> Vec<Vec<f64>> {
    let mut qs = vec![
        data[0].values[3..3 + WINDOW].to_vec(),
        data[2].values[20..20 + WINDOW].to_vec(),
        vals(seed, 2, 40)[4..4 + WINDOW].to_vec(),
        vals(seed, 1, 24)[0..WINDOW].to_vec(),
    ];
    // A shifted/scaled variant: matching is up to an (a, b) transform.
    let scaled: Vec<f64> = qs[0].iter().map(|v| v.mul_add(1.5, 3.0)).collect();
    qs.push(scaled);
    qs
}

fn assert_twins_identical(a: &DurableEngine, b: &DurableEngine, seed: u64, data: &[Series]) {
    assert_eq!(a.engine().num_series(), b.engine().num_series());
    assert_eq!(a.engine().num_windows(), b.engine().num_windows());
    for s in 0..a.engine().num_series() {
        assert_eq!(
            a.engine().series_len(s).unwrap(),
            b.engine().series_len(s).unwrap(),
            "series {s} length diverged"
        );
    }
    for (qi, q) in query_set(seed, data).iter().enumerate() {
        for eps in [0.1, 2.0, 25.0] {
            let ra = a.engine().search(q, eps, SearchOptions::default()).unwrap();
            let rb = b.engine().search(q, eps, SearchOptions::default()).unwrap();
            assert_eq!(
                ra.matches, rb.matches,
                "query {qi} at eps {eps} diverged after crash recovery (seed {seed})"
            );
        }
    }
}

/// Which script step the crash is armed on: the save for the post-save
/// point, else one of the append/new steps, rotated by seed so the sweep
/// covers crashes on plain appends, on new-series creation, and on the
/// log-tail appends after a save.
fn crash_step(point: CrashPoint, seed: u64) -> usize {
    match point {
        CrashPoint::PostSavePreTruncate => 2,
        _ => [0, 1, 3][usize::try_from(seed % 3).unwrap()],
    }
}

fn run_case(seed: u64, point: CrashPoint) {
    let dir = temp_dir(&format!("{seed}-{}", point.name()));
    let data = market(seed);
    let base = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
    let path_a = dir.join("never-crashed.tsss");
    let path_b = dir.join("crashed.tsss");
    base.save_to_path(&path_a).unwrap();
    base.save_to_path(&path_b).unwrap();

    let ops = script(seed);

    // Twin A: the oracle, never crashes.
    let mut a = DurableEngine::open(&path_a).unwrap();
    for op in &ops {
        apply(&mut a, op).unwrap();
    }

    // Twin B: killed at `point` mid-script, reopened, script completed.
    let crash_at = crash_step(point, seed);
    let mut b = DurableEngine::open(&path_b).unwrap();
    for (i, op) in ops.iter().enumerate() {
        if i != crash_at {
            apply(&mut b, op).unwrap();
            continue;
        }
        let before = position_before(&b, op);
        b.set_crash_point(Some(point));
        let err = apply(&mut b, op).unwrap_err();
        assert!(
            matches!(err, EngineError::Wal { .. }),
            "injected crash must surface as a WAL error, got {err:?}"
        );
        // The "kill": drop all in-memory state, recover from disk alone.
        drop(b);
        b = DurableEngine::open(&path_b).unwrap();
        if op_landed(&b, op, before) {
            // The fsync beat the kill: the un-replied append was
            // acknowledged to disk and replay restored it. Only the
            // points after the sync may take this branch.
            assert_ne!(
                point,
                CrashPoint::PreWalSync,
                "a pre-sync kill must not preserve the append"
            );
        } else {
            // Never acknowledged — the client retries.
            apply(&mut b, op).unwrap();
        }
    }

    assert_twins_identical(&a, &b, seed, &data);

    // Recovery must also survive a final checkpoint cycle.
    a.save().unwrap();
    b.save().unwrap();
    drop(a);
    drop(b);
    let a = DurableEngine::open(&path_a).unwrap();
    let b = DurableEngine::open(&path_b).unwrap();
    assert_eq!(a.wal_tail_records(), 0);
    assert_eq!(b.wal_tail_records(), 0);
    assert_twins_identical(&a, &b, seed, &data);
    cleanup(&dir);
}

#[test]
fn kill_at_every_crash_point_recovers_bit_identical() {
    for seed in seeds() {
        for point in CrashPoint::ALL {
            run_case(seed, point);
        }
    }
}

#[test]
fn post_sync_points_are_on_disk_identical() {
    // PostWalPreIndex and MidIndexInsert differ only in how much of the
    // in-memory engine mutated before the kill; the disk must not be able
    // to tell them apart, so recovery from either is the same state.
    let seed = seeds()[0];
    let data = market(seed);
    let mut recovered = Vec::new();
    for point in [CrashPoint::PostWalPreIndex, CrashPoint::MidIndexInsert] {
        let dir = temp_dir(&format!("disk-eq-{}", point.name()));
        let path = dir.join("engine.tsss");
        SearchEngine::build(&data, EngineConfig::small(WINDOW))
            .unwrap()
            .save_to_path(&path)
            .unwrap();
        let mut de = DurableEngine::open(&path).unwrap();
        de.set_crash_point(Some(point));
        de.append_values(0, &vals(seed, 9, 20)).unwrap_err();
        drop(de);
        let re = DurableEngine::open(&path).unwrap();
        assert_eq!(re.replay_report().applied, 1, "{}", point.name());
        recovered.push((
            re.engine().series_len(0).unwrap(),
            re.engine().num_windows(),
        ));
        cleanup(&dir);
    }
    assert_eq!(recovered[0], recovered[1]);
}

#[test]
fn truncated_final_record_drops_only_the_torn_tail() {
    let seed = seeds()[0];
    let dir = temp_dir("torn-tail");
    let path = dir.join("engine.tsss");
    let data = market(seed);
    SearchEngine::build(&data, EngineConfig::small(WINDOW))
        .unwrap()
        .save_to_path(&path)
        .unwrap();
    let mut de = DurableEngine::open(&path).unwrap();
    let len0 = de.engine().series_len(0).unwrap();
    de.append_values(0, &vals(seed, 5, 12)).unwrap();
    de.append_values(1, &vals(seed, 6, 12)).unwrap();
    drop(de);

    // File surgery: cut into the middle of the last frame — the on-disk
    // shape of a kill mid-write with no fsync.
    let wal_path = DurableEngine::wal_path_for(&path);
    let bytes = std::fs::read(&wal_path).unwrap();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    file.set_len(u64::try_from(bytes.len() - 7).unwrap())
        .unwrap();
    drop(file);

    let re = DurableEngine::open(&path).unwrap();
    let r = re.replay_report();
    assert!(r.damaged_tail, "the cut record must be reported");
    assert_eq!(r.tail_records, 1, "only the intact record survives");
    assert_eq!(r.applied, 1);
    assert_eq!(re.engine().series_len(0).unwrap(), len0 + 12);
    // The torn append was never acknowledged, so losing it is correct.
    assert_eq!(
        re.engine().series_len(1).unwrap(),
        market(seed)[1].values.len()
    );
    cleanup(&dir);
}

#[test]
fn repeated_opens_without_a_save_stay_idempotent() {
    let seed = seeds()[0];
    let dir = temp_dir("reopen");
    let path = dir.join("engine.tsss");
    let data = market(seed);
    SearchEngine::build(&data, EngineConfig::small(WINDOW))
        .unwrap()
        .save_to_path(&path)
        .unwrap();
    let base_len = data[0].values.len();
    let mut de = DurableEngine::open(&path).unwrap();
    de.append_values(0, &vals(seed, 7, 10)).unwrap();
    drop(de);
    // Each open replays from the same saved image; the append must land
    // exactly once no matter how many times the process bounces.
    for _ in 0..3 {
        let de = DurableEngine::open(&path).unwrap();
        assert_eq!(de.replay_report().applied, 1);
        assert_eq!(de.engine().series_len(0).unwrap(), base_len + 10);
        drop(de);
    }
    cleanup(&dir);
}

#[test]
fn empty_and_header_only_logs_open_clean() {
    let seed = seeds()[0];
    let dir = temp_dir("empty");
    let path = dir.join("engine.tsss");
    SearchEngine::build(&market(seed), EngineConfig::small(WINDOW))
        .unwrap()
        .save_to_path(&path)
        .unwrap();
    // No sidecar at all: open creates one.
    let de = DurableEngine::open(&path).unwrap();
    assert_eq!(de.replay_report().tail_records, 0);
    assert!(!de.replay_report().damaged_tail);
    drop(de);
    // Header-only sidecar (the state right after a save): also clean.
    let de = DurableEngine::open(&path).unwrap();
    assert_eq!(de.replay_report().tail_records, 0);
    assert_eq!(de.wal_tail_records(), 0);
    cleanup(&dir);
}

#[test]
fn replay_composes_with_engine_file_index_repair() {
    // A crash can tear more than the log: here the engine file's index
    // stream is damaged *and* the log holds an acknowledged append. Open
    // must rebuild the index from the data stream (the tolerant-load
    // path), then replay the log on top — both recoveries compose.
    let seed = seeds()[0];
    let dir = temp_dir("index-repair");
    let path = dir.join("engine.tsss");
    let data = market(seed);
    SearchEngine::build(&data, EngineConfig::small(WINDOW))
        .unwrap()
        .save_to_path(&path)
        .unwrap();
    let mut de = DurableEngine::open(&path).unwrap();
    let len0 = de.engine().series_len(0).unwrap();
    de.append_values(0, &vals(seed, 8, 20)).unwrap();
    drop(de);

    // Flip a byte near the end of the engine file — the index stream is
    // the final stream, so this damages it without touching the data.
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 10] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let re = DurableEngine::open(&path).unwrap();
    let r = re.replay_report();
    assert!(r.index_repaired, "the damaged index stream must be rebuilt");
    assert_eq!(r.applied, 1, "replay still runs after the index repair");
    assert_eq!(re.engine().series_len(0).unwrap(), len0 + 20);
    // The rebuilt + replayed engine answers exactly like a clean twin.
    let q = vals(seed, 8, 20)[2..2 + WINDOW].to_vec();
    let res = re
        .engine()
        .search(&q, 1e-6, SearchOptions::default())
        .unwrap();
    assert!(
        !res.matches.is_empty(),
        "the appended window must be searchable after composed recovery"
    );
    cleanup(&dir);
}
