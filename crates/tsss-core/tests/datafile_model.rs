//! Model-based randomised test for the paged series store: under arbitrary
//! interleavings of series creation and appends, every window fetch must
//! agree with a plain `Vec<Vec<f64>>` model, and the page arithmetic must
//! hold exactly.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

use tsss_core::datafile::PagedSeriesStore;
use tsss_rand::Rng;

#[derive(Debug, Clone)]
enum Op {
    NewSeries,
    Append { series: usize, values: Vec<f64> },
}

fn random_op(rng: &mut Rng) -> Op {
    if rng.usize_below(5) == 0 {
        Op::NewSeries
    } else {
        let series = rng.usize_below(8);
        let len = 1 + rng.usize_below(39);
        Op::Append {
            series,
            values: rng.f64_vec(len, -1e6, 1e6),
        }
    }
}

#[test]
fn store_matches_vec_model() {
    let mut rng = Rng::seed_from_u64(0xDA7A_0001);
    for case in 0..96 {
        let page_size = [16usize, 64, 256, 4096][rng.usize_below(4)];
        let n_ops = 1 + rng.usize_below(59);

        let mut store = PagedSeriesStore::new(page_size, 0);
        let mut model: Vec<Vec<f64>> = Vec::new();
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::NewSeries => {
                    let idx = store.add_series(format!("s{}", model.len()));
                    assert_eq!(idx, model.len());
                    model.push(Vec::new());
                }
                Op::Append { series, values } => {
                    if model.is_empty() {
                        assert!(store.append(series, &values).is_err());
                        continue;
                    }
                    let s = series % model.len();
                    store.append(s, &values).unwrap();
                    model[s].extend_from_slice(&values);
                }
            }
        }

        // Shape agreement.
        assert_eq!(store.num_series(), model.len());
        let total: usize = model.iter().map(Vec::len).sum();
        assert_eq!(store.total_values(), total);
        assert_eq!(store.page_count(), total.div_ceil(page_size / 8));
        for (i, m) in model.iter().enumerate() {
            assert_eq!(store.series_len(i).unwrap(), m.len());
        }

        // read_everything reproduces the model, one page read each.
        store.stats().reset();
        let all = store.read_everything().unwrap();
        assert_eq!(
            store.stats().reads(),
            store.page_count() as u64,
            "case {case}"
        );
        assert_eq!(&all, &model);

        // Pseudo-random window fetches agree with the model.
        for _ in 0..20 {
            if model.is_empty() {
                break;
            }
            let s = rng.usize_below(model.len());
            if model[s].is_empty() {
                continue;
            }
            let off = rng.usize_below(model[s].len());
            let len = 1 + rng.usize_below(model[s].len() - off);
            let got = store.fetch_window(s, off, len).unwrap();
            assert_eq!(&got[..], &model[s][off..off + len], "case {case}");
        }
    }
}
