//! Model-based property test for the paged series store: under arbitrary
//! interleavings of series creation and appends, every window fetch must
//! agree with a plain `Vec<Vec<f64>>` model, and the page arithmetic must
//! hold exactly.

use proptest::prelude::*;
use tsss_core::datafile::PagedSeriesStore;

#[derive(Debug, Clone)]
enum Op {
    NewSeries,
    Append { series: usize, values: Vec<f64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::NewSeries),
        4 => (
            0usize..8,
            prop::collection::vec(-1e6f64..1e6, 1..40),
        )
            .prop_map(|(series, values)| Op::Append { series, values }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn store_matches_vec_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        page_size in prop::sample::select(vec![16usize, 64, 256, 4096]),
        fetch_seed in any::<u64>(),
    ) {
        let mut store = PagedSeriesStore::new(page_size, 0);
        let mut model: Vec<Vec<f64>> = Vec::new();
        for op in ops {
            match op {
                Op::NewSeries => {
                    let idx = store.add_series(format!("s{}", model.len()));
                    prop_assert_eq!(idx, model.len());
                    model.push(Vec::new());
                }
                Op::Append { series, values } => {
                    if model.is_empty() {
                        prop_assert!(store.append(series, &values).is_err());
                        continue;
                    }
                    let s = series % model.len();
                    store.append(s, &values).unwrap();
                    model[s].extend_from_slice(&values);
                }
            }
        }

        // Shape agreement.
        prop_assert_eq!(store.num_series(), model.len());
        let total: usize = model.iter().map(Vec::len).sum();
        prop_assert_eq!(store.total_values(), total);
        prop_assert_eq!(store.page_count(), total.div_ceil(page_size / 8));
        for (i, m) in model.iter().enumerate() {
            prop_assert_eq!(store.series_len(i).unwrap(), m.len());
        }

        // read_everything reproduces the model, one page read each.
        store.stats().reset();
        let all = store.read_everything();
        prop_assert_eq!(store.stats().reads(), store.page_count() as u64);
        prop_assert_eq!(&all, &model);

        // Pseudo-random window fetches agree with the model.
        let mut x = fetch_seed | 1;
        let mut next = move |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as usize % m
        };
        for _ in 0..20 {
            if model.is_empty() {
                break;
            }
            let s = next(model.len());
            if model[s].is_empty() {
                continue;
            }
            let off = next(model[s].len());
            let len = 1 + next(model[s].len() - off);
            let got = store.fetch_window(s, off, len).unwrap();
            prop_assert_eq!(&got[..], &model[s][off..off + len]);
        }
    }
}
