//! Sharded chaos suite: smash one fault domain, keep the other N−1 exact.
//!
//! The contract under test (ISSUE 9): with 1 of N shards smashed, **every**
//! query mode returns the N−1 surviving shards' results bit-identical to an
//! unsharded engine built over the same (surviving) series, with
//! `stats.degraded_shards == 1` — and after `repair()` on the sick shard,
//! full bit-identity with a never-smashed unsharded twin.
//!
//! Every case is deterministic. The default run sweeps the eight chaos
//! seeds and every smash target; `TSSS_CHAOS_SEED=<u64>` re-runs one seed
//! and `TSSS_SMASH_SHARD=<idx>` one smashed-shard index (the CI
//! `sharded-chaos` job drives the seed × shard matrix).

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use tsss_core::{
    BreakerState, DegradationPolicy, EngineConfig, EngineError, SearchEngine, SearchOptions,
    SearchResult, ShardedEngine, SubsequenceMatch,
};
use tsss_data::{MarketConfig, MarketSimulator, Series};

const WINDOW: usize = 12;
const SHARDS: usize = 4;

/// Eight fixed seeds, or the single seed from `TSSS_CHAOS_SEED`.
fn seeds() -> Vec<u64> {
    match std::env::var("TSSS_CHAOS_SEED") {
        Ok(s) => vec![s
            .parse()
            .expect("TSSS_CHAOS_SEED must be an unsigned integer")],
        Err(_) => (1..=8).map(|i| 0xC4A0_5000 + i).collect(),
    }
}

/// Every smashed-shard index, or the single one from `TSSS_SMASH_SHARD`.
fn smash_targets() -> Vec<usize> {
    match std::env::var("TSSS_SMASH_SHARD") {
        Ok(s) => vec![s.parse().expect("TSSS_SMASH_SHARD must be a shard index")],
        Err(_) => (0..SHARDS).collect(),
    }
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    cfg
}

fn market(seed: u64) -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(6, 50, seed)).generate()
}

/// Corrupts every index page of shard `sick` and drops its page cache, so
/// each of its probes fails the checksum — an index-only smash the shard's
/// own `repair()` can fully undo from its intact data file.
fn smash(sharded: &mut ShardedEngine, sick: usize) {
    let extent = sharded.shard(sick).unwrap().index_extent() as u32;
    let shard = sharded.shard_mut(sick).unwrap();
    for p in 0..extent {
        let _ = shard.corrupt_index_page(p, &mut |b| {
            b[12] ^= 0x42;
        });
    }
    shard.tree_mut().clear_cache().unwrap();
}

/// Runs every single-query mode; tags name the mode in failure output.
fn run_modes_single(e: &SearchEngine, data: &[Series]) -> Vec<(&'static str, SearchResult)> {
    let q = data[0].window(3, WINDOW).unwrap().to_vec();
    let ql = data[1].window(10, 30).unwrap().to_vec();
    vec![
        (
            "range",
            e.search(&q, 0.8, SearchOptions::default()).unwrap(),
        ),
        (
            "knn",
            e.nearest_search_opts(&q, 5, SearchOptions::default())
                .unwrap(),
        ),
        (
            "znorm",
            e.search_znormalized_opts(&q, 1.0, SearchOptions::default())
                .unwrap(),
        ),
        (
            "long",
            e.search_long(&ql, 2.0, SearchOptions::default()).unwrap(),
        ),
    ]
}

/// The same modes through the sharded engine, with per-mode outcomes.
fn run_modes_sharded(
    e: &ShardedEngine,
    data: &[Series],
) -> Vec<(&'static str, Result<SearchResult, EngineError>)> {
    let q = data[0].window(3, WINDOW).unwrap().to_vec();
    let ql = data[1].window(10, 30).unwrap().to_vec();
    vec![
        ("range", e.search(&q, 0.8, SearchOptions::default())),
        (
            "knn",
            e.nearest_search_opts(&q, 5, SearchOptions::default()),
        ),
        (
            "znorm",
            e.search_znormalized_opts(&q, 1.0, SearchOptions::default()),
        ),
        ("long", e.search_long(&ql, 2.0, SearchOptions::default())),
    ]
}

/// Asserts `got` is bit-for-bit `expected` after mapping the expected
/// engine's series numbering into the global one via `map`.
fn assert_bit_identical(
    tag: &str,
    expected: &[SubsequenceMatch],
    got: &[SubsequenceMatch],
    map: &dyn Fn(usize) -> usize,
) {
    assert_eq!(expected.len(), got.len(), "{tag}: match count");
    for (a, b) in expected.iter().zip(got) {
        assert_eq!(map(a.id.series_idx()), b.id.series_idx(), "{tag}: series");
        assert_eq!(a.id.offset_idx(), b.id.offset_idx(), "{tag}: offset");
        assert_eq!(
            a.distance.to_bits(),
            b.distance.to_bits(),
            "{tag}: distance bits"
        );
        assert_eq!(
            a.transform.a.to_bits(),
            b.transform.a.to_bits(),
            "{tag}: scale bits"
        );
        assert_eq!(
            a.transform.b.to_bits(),
            b.transform.b.to_bits(),
            "{tag}: shift bits"
        );
    }
}

/// The acceptance matrix: seeds × smashed-shard index × every query mode.
/// Survivors stay bit-identical to an unsharded engine over the surviving
/// series; repairing the sick shard restores bit-identity with the
/// never-smashed twin.
#[test]
fn smashed_shard_matrix_survivors_exact_then_repair_restores_twin() {
    for seed in seeds() {
        let data = market(seed);
        let twin = SearchEngine::build(&data, engine_cfg()).unwrap();
        for sick in smash_targets() {
            let tagp = format!("seed={seed:#x} sick={sick}");
            let mut sharded = ShardedEngine::build(&data, engine_cfg(), SHARDS).unwrap();
            smash(&mut sharded, sick);

            // The surviving twin: an unsharded engine over exactly the
            // series the healthy shards hold, in global order.
            let surviving: Vec<usize> = (0..data.len()).filter(|g| g % SHARDS != sick).collect();
            let surviving_data: Vec<Series> = surviving.iter().map(|&g| data[g].clone()).collect();
            let surv_twin = SearchEngine::build(&surviving_data, engine_cfg()).unwrap();
            let surv_map = |j: usize| surviving[j];

            let expected = run_modes_single(&surv_twin, &data);
            let got = run_modes_sharded(&sharded, &data);
            for ((tag, exp), (tag2, out)) in expected.iter().zip(&got) {
                assert_eq!(tag, tag2);
                let tag = format!("{tagp} {tag}");
                let res = out.as_ref().unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(res.stats.degraded_shards, 1, "{tag}");
                assert_eq!(res.stats.shards_ok as usize, SHARDS - 1, "{tag}");
                assert!(res.stats.degraded, "{tag}");
                let reason = res.stats.degraded_reason.clone().unwrap();
                assert!(
                    reason.starts_with(&format!("shard {sick}:")),
                    "{tag}: {reason}"
                );
                assert_eq!(
                    res.stats.candidates,
                    res.stats.verified + res.stats.false_alarms + res.stats.cost_rejected,
                    "{tag}: identity"
                );
                assert_bit_identical(&tag, &exp.matches, &res.matches, &surv_map);
            }

            // Repairing only the sick shard restores full, undegraded
            // service — bit-identical to the never-smashed twin.
            let report = sharded.repair_shard(sick).unwrap();
            assert!(report.windows_reindexed > 0, "{tagp}: repair reindexed");
            assert_eq!(
                sharded.breaker_states()[sick],
                BreakerState::Closed,
                "{tagp}: repair closes the sick shard's breaker"
            );
            let expected = run_modes_single(&twin, &data);
            let got = run_modes_sharded(&sharded, &data);
            for ((tag, exp), (_, out)) in expected.iter().zip(&got) {
                let tag = format!("{tagp} healed {tag}");
                let res = out.as_ref().unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(res.stats.degraded_shards, 0, "{tag}");
                assert_eq!(res.stats.shards_ok as usize, SHARDS, "{tag}");
                assert!(!res.stats.degraded, "{tag}");
                assert_bit_identical(&tag, &exp.matches, &res.matches, &|j| j);
            }
        }
    }
}

/// A batch over a smashed shard: per-query isolation holds. Degradable
/// queries degrade individually (each carrying its own shard accounting),
/// a malformed query in the middle fails alone, and every per-query
/// answer equals the same query issued on its own.
#[test]
fn batch_with_smashed_shard_isolates_per_query() {
    for seed in seeds() {
        let data = market(seed);
        let mut sharded = ShardedEngine::build(&data, engine_cfg(), SHARDS).unwrap();
        let sick = smash_targets()[0];
        smash(&mut sharded, sick);

        let q0 = data[0].window(3, WINDOW).unwrap().to_vec();
        let q1 = data[2].window(7, WINDOW).unwrap().to_vec();
        let malformed = vec![0.0; WINDOW + 1];
        let batch = vec![q0.clone(), malformed, q1.clone()];
        let results = sharded.search_batch_results(&batch, 0.8, SearchOptions::default(), 3);
        assert_eq!(results.len(), 3);

        let r0 = results[0].as_ref().unwrap();
        assert_eq!(r0.stats.degraded_shards, 1, "seed={seed:#x}");
        assert!(matches!(
            results[1].as_ref().unwrap_err(),
            EngineError::QueryLength { .. }
        ));
        let r2 = results[2].as_ref().unwrap();
        assert_eq!(r2.stats.degraded_shards, 1, "seed={seed:#x}");

        // Batch answers are identical to the same queries issued solo.
        let solo0 = sharded.search(&q0, 0.8, SearchOptions::default()).unwrap();
        let solo2 = sharded.search(&q1, 0.8, SearchOptions::default()).unwrap();
        assert_bit_identical("batch[0]", &solo0.matches, &r0.matches, &|j| j);
        assert_bit_identical("batch[2]", &solo2.matches, &r2.matches, &|j| j);
    }
}

/// Zero survivors: when every shard is smashed there is nothing to answer
/// from, and the query fails with the typed fan-out error instead of an
/// empty (silently wrong) result — under every policy.
#[test]
fn zero_shard_survivors_is_a_typed_error() {
    let seed = seeds()[0];
    let data = market(seed);
    let mut sharded = ShardedEngine::build(&data, engine_cfg(), SHARDS).unwrap();
    for s in 0..SHARDS {
        smash(&mut sharded, s);
    }
    let q = data[0].window(3, WINDOW).unwrap().to_vec();
    let err = sharded
        .search(&q, 0.8, SearchOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ShardUnavailable { shard: 0, .. }),
        "{err:?}"
    );
    let err = sharded
        .nearest_search_opts(&q, 3, SearchOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ShardUnavailable { .. }),
        "{err:?}"
    );
    // Strict still surfaces the first shard's own error verbatim.
    let err = sharded
        .search(
            &q,
            0.8,
            SearchOptions {
                degradation: DegradationPolicy::Strict,
                ..SearchOptions::default()
            },
        )
        .unwrap_err();
    assert!(err.is_corruption(), "{err:?}");
    // Repairing every shard restores full service.
    sharded.repair().unwrap();
    let res = sharded.search(&q, 0.8, SearchOptions::default()).unwrap();
    assert_eq!(res.stats.shards_ok as usize, SHARDS);
    assert_eq!(res.stats.degraded_shards, 0);
}

/// An exhausted per-shard deadline slice degrades like corruption: the
/// slice is dropped, not the query — and when every slice exhausts, the
/// typed zero-survivor error names the deadline.
#[test]
fn deadline_slices_degrade_per_shard() {
    let seed = seeds()[0];
    let data = market(seed);
    let sharded = ShardedEngine::build(&data, engine_cfg(), SHARDS).unwrap();
    let q = data[0].window(3, WINDOW).unwrap().to_vec();
    let opts = SearchOptions {
        deadline: Some(tsss_core::Deadline::uniform(0)),
        ..SearchOptions::default()
    };
    let err = sharded.search(&q, 0.8, opts).unwrap_err();
    match err {
        EngineError::ShardUnavailable { detail, .. } => {
            assert!(detail.contains("deadline"), "{detail}");
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
}
