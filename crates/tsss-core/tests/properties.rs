//! End-to-end randomised tests for the engine: on arbitrary (small) markets
//! and arbitrary queries, the indexed search must agree exactly with the
//! sequential-scan oracle, persistence must be transparent, and the
//! z-normalised search must agree with its own brute force.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use tsss_core::{CostLimit, EngineConfig, SearchEngine, SearchOptions, SubseqId};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_geometry::penetration::PenetrationMethod;
use tsss_rand::Rng;

const WINDOW: usize = 12;
const CASES: usize = 24;

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    cfg
}

fn market(seed: u64) -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(4, 50, seed)).generate()
}

/// An arbitrary query: either in data range or pure noise.
fn random_query(rng: &mut Rng) -> Vec<f64> {
    if rng.bool() {
        rng.f64_vec(WINDOW, -20.0, 120.0)
    } else {
        rng.f64_vec(WINDOW, -1.0, 1.0)
    }
}

/// Recall and precision are exactly 1 against the scan for arbitrary
/// queries, ε values, methods and cost limits.
#[test]
fn index_equals_oracle() {
    let mut rng = Rng::seed_from_u64(0xC07E_0001);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let query = random_query(&mut rng);
        let eps = rng.f64_range(0.0, 30.0);
        let a_lo = rng.f64_range(-2.0, 2.0);
        let use_cost = rng.bool();
        let sphere = rng.bool();

        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();
        let cost = if use_cost {
            CostLimit {
                a_range: Some((a_lo, a_lo + 2.5)),
                b_range: None,
            }
        } else {
            CostLimit::UNLIMITED
        };
        let opts = SearchOptions {
            method: if sphere {
                PenetrationMethod::BoundingSpheres
            } else {
                PenetrationMethod::EnteringExiting
            },
            cost,
            ..Default::default()
        };
        let fast = e.search(&query, eps, opts).unwrap();
        let slow = e.sequential_search(&query, eps, cost).unwrap();
        assert_eq!(fast.id_set(), slow.id_set());
        // Reported distances agree pairwise.
        for (a, b) in fast.matches.iter().zip(&slow.matches) {
            assert_eq!(a.id, b.id);
            assert!((a.distance - b.distance).abs() < 1e-9);
            assert!(a.distance <= eps + 1e-9);
        }
    }
}

/// Save → load is observationally transparent.
#[test]
fn persistence_is_transparent() {
    let mut rng = Rng::seed_from_u64(0xC07E_0002);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let eps = rng.f64_range(0.0, 10.0);
        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        let l = SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        let q = data[0].window(7, WINDOW).unwrap().to_vec();
        let a = e.search(&q, eps, SearchOptions::default()).unwrap();
        let b = l.search(&q, eps, SearchOptions::default()).unwrap();
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.stats.total_pages(), b.stats.total_pages());
    }
}

/// z-normalised search equals its brute force for arbitrary inputs.
#[test]
fn znorm_search_equals_brute_force() {
    let mut rng = Rng::seed_from_u64(0xC07E_0003);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let query = random_query(&mut rng);
        let z_eps = rng.f64_range(0.0, 4.0);
        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();
        let got = e.search_znormalized(&query, z_eps).unwrap().id_set();
        let mut want = std::collections::BTreeSet::new();
        for (si, s) in data.iter().enumerate() {
            for off in 0..=s.len() - WINDOW {
                let zd = tsss_core::normalized::z_distance(&query, s.window(off, WINDOW).unwrap())
                    .unwrap();
                if zd <= z_eps {
                    want.insert(SubseqId {
                        series: si as u32,
                        offset: off as u32,
                    });
                }
            }
        }
        assert_eq!(got, want);
    }
}

/// Dynamic maintenance: after random appends and removals, the index still
/// equals the oracle (which always sees the current data file).
#[test]
fn dynamic_updates_preserve_oracle_equality() {
    let mut rng = Rng::seed_from_u64(0xC07E_0004);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let grow_by = 1 + rng.usize_below(19);
        let remove_offset = rng.usize_below(30);
        let eps = rng.f64_range(0.0, 10.0);

        let mut data = market(seed);
        let tail: Vec<f64> = data[1].values.split_off(50 - grow_by);
        let mut e = SearchEngine::build(&data, engine_cfg()).unwrap();
        e.append_values(1, &tail).unwrap();
        // The oracle scans the engine's own data file, so it reflects the
        // append automatically.
        let victim = SubseqId {
            series: 0,
            offset: (remove_offset % (50 - WINDOW)) as u32,
        };
        assert!(e.remove_window(victim).unwrap());
        let q = data[2].window(11, WINDOW).unwrap().to_vec();
        let fast = e.search(&q, eps, SearchOptions::default()).unwrap();
        let slow = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
        // The scan still sees the removed window (it scans raw data); the
        // index must match it everywhere else.
        let mut slow_ids = slow.id_set();
        slow_ids.remove(&victim);
        assert_eq!(fast.id_set(), slow_ids);
        e.tree_mut().check_invariants().unwrap();
    }
}

/// k-NN results are consistent with the range search: searching with
/// ε = (k-th NN distance) returns at least k windows.
#[test]
fn knn_and_range_search_are_consistent() {
    let mut rng = Rng::seed_from_u64(0xC07E_0005);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let k = 1 + rng.usize_below(7);
        let data = market(seed);
        let e = SearchEngine::build(&data, engine_cfg()).unwrap();
        let q = data[3].window(20, WINDOW).unwrap().to_vec();
        let nn = e.nearest(&q, k).unwrap();
        assert_eq!(nn.len(), k);
        let kth = nn.last().unwrap().distance;
        let range = e.search(&q, kth + 1e-9, SearchOptions::default()).unwrap();
        assert!(range.matches.len() >= k);
        // And every NN is inside that range result.
        let ids = range.id_set();
        for m in &nn {
            assert!(ids.contains(&m.id));
        }
    }
}
