//! End-to-end property tests for the engine: on arbitrary (small) markets
//! and arbitrary queries, the indexed search must agree exactly with the
//! sequential-scan oracle, persistence must be transparent, and the
//! z-normalised search must agree with its own brute force.

use proptest::prelude::*;
use tsss_core::{CostLimit, EngineConfig, SearchEngine, SearchOptions, SubseqId};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_geometry::penetration::PenetrationMethod;

const WINDOW: usize = 12;

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    cfg
}

fn market(seed: u64) -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(4, 50, seed)).generate()
}

/// An arbitrary query: either a disguised data window or pure noise.
fn query_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        // Disguised window: (series, offset, a, b) applied later.
        prop::collection::vec(-20.0f64..120.0, WINDOW),
        prop::collection::vec(-1.0f64..1.0, WINDOW),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recall and precision are exactly 1 against the scan for arbitrary
    /// queries, ε values, methods and cost limits.
    #[test]
    fn index_equals_oracle(
        seed in any::<u64>(),
        query in query_strategy(),
        eps in 0.0f64..30.0,
        a_lo in -2.0f64..2.0,
        use_cost in any::<bool>(),
        sphere in any::<bool>(),
    ) {
        let data = market(seed);
        let mut e = SearchEngine::build(&data, engine_cfg());
        let cost = if use_cost {
            CostLimit { a_range: Some((a_lo, a_lo + 2.5)), b_range: None }
        } else {
            CostLimit::UNLIMITED
        };
        let opts = SearchOptions {
            method: if sphere {
                PenetrationMethod::BoundingSpheres
            } else {
                PenetrationMethod::EnteringExiting
            },
            cost,
        };
        let fast = e.search(&query, eps, opts).unwrap();
        let slow = e.sequential_search(&query, eps, cost).unwrap();
        prop_assert_eq!(fast.id_set(), slow.id_set());
        // Reported distances agree pairwise.
        for (a, b) in fast.matches.iter().zip(&slow.matches) {
            prop_assert_eq!(a.id, b.id);
            prop_assert!((a.distance - b.distance).abs() < 1e-9);
            prop_assert!(a.distance <= eps + 1e-9);
        }
    }

    /// Save → load is observationally transparent.
    #[test]
    fn persistence_is_transparent(seed in any::<u64>(), eps in 0.0f64..10.0) {
        let data = market(seed);
        let mut e = SearchEngine::build(&data, engine_cfg());
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        let mut l = SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        let q = data[0].window(7, WINDOW).unwrap().to_vec();
        let a = e.search(&q, eps, SearchOptions::default()).unwrap();
        let b = l.search(&q, eps, SearchOptions::default()).unwrap();
        prop_assert_eq!(a.matches, b.matches);
        prop_assert_eq!(a.stats.total_pages(), b.stats.total_pages());
    }

    /// z-normalised search equals its brute force for arbitrary inputs.
    #[test]
    fn znorm_search_equals_brute_force(
        seed in any::<u64>(),
        query in query_strategy(),
        z_eps in 0.0f64..4.0,
    ) {
        let data = market(seed);
        let mut e = SearchEngine::build(&data, engine_cfg());
        let got = e.search_znormalized(&query, z_eps).unwrap().id_set();
        let mut want = std::collections::BTreeSet::new();
        for (si, s) in data.iter().enumerate() {
            for off in 0..=s.len() - WINDOW {
                let zd = tsss_core::normalized::z_distance(
                    &query,
                    s.window(off, WINDOW).unwrap(),
                )
                .unwrap();
                if zd <= z_eps {
                    want.insert(SubseqId { series: si as u32, offset: off as u32 });
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Dynamic maintenance: after random appends and removals, the index
    /// still equals the oracle (which always sees the current data file).
    #[test]
    fn dynamic_updates_preserve_oracle_equality(
        seed in any::<u64>(),
        grow_by in 1usize..20,
        remove_offset in 0usize..30,
        eps in 0.0f64..10.0,
    ) {
        let mut data = market(seed);
        let tail: Vec<f64> = data[1].values.split_off(50 - grow_by);
        let mut e = SearchEngine::build(&data, engine_cfg());
        e.append_values(1, &tail).unwrap();
        // The oracle scans the engine's own data file, so it reflects the
        // append automatically.
        let victim = SubseqId { series: 0, offset: (remove_offset % (50 - WINDOW)) as u32 };
        prop_assert!(e.remove_window(victim).unwrap());
        let q = data[2].window(11, WINDOW).unwrap().to_vec();
        let fast = e.search(&q, eps, SearchOptions::default()).unwrap();
        let slow = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
        // The scan still sees the removed window (it scans raw data); the
        // index must match it everywhere else.
        let mut slow_ids = slow.id_set();
        slow_ids.remove(&victim);
        prop_assert_eq!(fast.id_set(), slow_ids);
        e.tree_mut().check_invariants();
    }

    /// k-NN results are consistent with the range search: searching with
    /// ε = (k-th NN distance) returns at least k windows.
    #[test]
    fn knn_and_range_search_are_consistent(seed in any::<u64>(), k in 1usize..8) {
        let data = market(seed);
        let mut e = SearchEngine::build(&data, engine_cfg());
        let q = data[3].window(20, WINDOW).unwrap().to_vec();
        let nn = e.nearest(&q, k).unwrap();
        prop_assert_eq!(nn.len(), k);
        let kth = nn.last().unwrap().distance;
        let range = e.search(&q, kth + 1e-9, SearchOptions::default()).unwrap();
        prop_assert!(range.matches.len() >= k);
        // And every NN is inside that range result.
        let ids = range.id_set();
        for m in &nn {
            prop_assert!(ids.contains(&m.id));
        }
    }
}
