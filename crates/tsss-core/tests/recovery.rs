//! Recovery subsystem integration tests: query deadlines on every entry
//! point, per-query isolation in batches, degradation-policy side-effect
//! contracts, the circuit-breaker lifecycle, online index repair, and the
//! repair-tolerant persistence load.

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use tsss_core::{
    CostLimit, Deadline, DegradationPolicy, EngineConfig, EngineError, SearchEngine, SearchOptions,
};
use tsss_data::{MarketConfig, MarketSimulator, Series};

const WINDOW: usize = 16;

fn market() -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(6, 90, 20260807)).generate()
}

fn engine() -> (SearchEngine, Vec<Series>) {
    let data = market();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    (SearchEngine::build(&data, cfg).unwrap(), data)
}

fn with_deadline(d: Deadline) -> SearchOptions {
    SearchOptions {
        deadline: Some(d),
        ..Default::default()
    }
}

fn assert_deadline_err(what: &str, r: Result<tsss_core::SearchResult, EngineError>) {
    match r {
        Err(EngineError::DeadlineExceeded { pages, steps }) => {
            assert!(
                pages > 0 || steps > 0,
                "{what}: exceeded with zero recorded spend"
            );
        }
        Err(other) => panic!("{what}: expected DeadlineExceeded, got {other}"),
        Ok(_) => panic!("{what}: a zero deadline cannot be met"),
    }
}

/// A zero deadline is exceeded — with a typed error, never a panic or a
/// silently truncated answer — on every query entry point.
#[test]
fn zero_deadline_is_a_typed_error_on_every_entry_point() {
    let (e, data) = engine();
    let q = data[0].window(10, WINDOW).unwrap().to_vec();
    let zero = Deadline::uniform(0);

    assert_deadline_err("indexed", e.search(&q, 5.0, with_deadline(zero)));
    assert_deadline_err(
        "seqscan",
        e.sequential_search_opts(&q, 5.0, with_deadline(zero)),
    );
    assert_deadline_err("knn", e.nearest_search_opts(&q, 3, with_deadline(zero)));
    let long_q = data[1].window(0, 2 * WINDOW).unwrap().to_vec();
    assert_deadline_err("long", e.search_long(&long_q, 5.0, with_deadline(zero)));
    assert_deadline_err(
        "znormalized",
        e.search_znormalized_opts(&q, 0.5, with_deadline(zero)),
    );
}

/// A generous deadline changes nothing: every entry point returns answers
/// and stats bit-identical to the unlimited run, and the spend it metered
/// is observable in `steps_spent`.
#[test]
fn generous_deadline_answers_are_bit_identical_to_unlimited() {
    let (e, data) = engine();
    let q = data[2].window(20, WINDOW).unwrap().to_vec();
    let long_q = data[3].window(5, 2 * WINDOW).unwrap().to_vec();
    let generous = with_deadline(Deadline::uniform(1_000_000_000));

    let pairs = [
        (
            "indexed",
            e.search(&q, 8.0, SearchOptions::default()).unwrap(),
            e.search(&q, 8.0, generous).unwrap(),
        ),
        (
            "seqscan",
            e.sequential_search_opts(&q, 8.0, SearchOptions::default())
                .unwrap(),
            e.sequential_search_opts(&q, 8.0, generous).unwrap(),
        ),
        (
            "knn",
            e.nearest_search_opts(&q, 4, SearchOptions::default())
                .unwrap(),
            e.nearest_search_opts(&q, 4, generous).unwrap(),
        ),
        (
            "long",
            e.search_long(&long_q, 8.0, SearchOptions::default())
                .unwrap(),
            e.search_long(&long_q, 8.0, generous).unwrap(),
        ),
        (
            "znormalized",
            e.search_znormalized_opts(&q, 0.5, SearchOptions::default())
                .unwrap(),
            e.search_znormalized_opts(&q, 0.5, generous).unwrap(),
        ),
    ];
    for (name, free, bounded) in pairs {
        assert_eq!(free.matches.len(), bounded.matches.len(), "{name}");
        for (a, b) in free.matches.iter().zip(&bounded.matches) {
            assert_eq!(a.id, b.id, "{name}");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{name}");
            assert_eq!(a.transform.a.to_bits(), b.transform.a.to_bits(), "{name}");
            assert_eq!(a.transform.b.to_bits(), b.transform.b.to_bits(), "{name}");
        }
        assert_eq!(free.stats.candidates, bounded.stats.candidates, "{name}");
        assert_eq!(free.stats.verified, bounded.stats.verified, "{name}");
        assert_eq!(
            free.stats.false_alarms, bounded.stats.false_alarms,
            "{name}"
        );
        assert_eq!(free.stats.steps_spent, bounded.stats.steps_spent, "{name}");
        assert!(
            bounded.stats.steps_spent > 0 || bounded.stats.candidates == 0,
            "{name}: steps were metered"
        );
    }
}

/// One deadline-exhausted query in a parallel batch must not poison the
/// other results: they come back `Ok` and identical to their serial runs.
#[test]
fn exhausted_query_in_a_batch_does_not_poison_the_others() {
    let (e, data) = engine();
    // Query 1 is crafted to need the most verification steps: it sits in
    // the data, so a wide epsilon nominates many candidates.
    let queries: Vec<Vec<f64>> = (0..4)
        .map(|i| data[i].window(7 * i, WINDOW).unwrap().to_vec())
        .collect();
    let eps = 10.0;

    // Measure each query's actual spend, then pick a budget that splits
    // the pack: at least one query fits, at least one exceeds.
    let serial: Vec<_> = queries
        .iter()
        .map(|q| e.search(q, eps, SearchOptions::default()).unwrap())
        .collect();
    let mut spends: Vec<u64> = serial
        .iter()
        .map(|r| r.stats.steps_spent.max(r.stats.total_pages()))
        .collect();
    spends.sort_unstable();
    let budget = (spends[0] + spends[spends.len() - 1]) / 2;
    assert!(
        spends[0] <= budget && spends[spends.len() - 1] > budget,
        "workload must split around the budget (spends: {spends:?})"
    );

    let opts = with_deadline(Deadline::uniform(budget));
    for workers in [1, 4] {
        let results = e.search_batch_results(&queries, eps, opts, workers);
        assert_eq!(results.len(), queries.len());
        let mut ok = 0usize;
        let mut exhausted = 0usize;
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(res) => {
                    ok += 1;
                    assert_eq!(res.id_set(), serial[i].id_set(), "query {i}");
                    assert_eq!(
                        res.stats.candidates, serial[i].stats.candidates,
                        "query {i}"
                    );
                }
                Err(EngineError::DeadlineExceeded { .. }) => exhausted += 1,
                Err(other) => panic!("query {i}: unexpected error {other}"),
            }
        }
        assert!(ok > 0, "workers {workers}: every query starved");
        assert!(exhausted > 0, "workers {workers}: no query exceeded");
    }

    // And `search_batch` (the Result-of-Vec wrapper) surfaces the first
    // failure instead of fabricating a partial answer.
    assert!(matches!(
        e.search_batch(&queries, eps, opts, 2),
        Err(EngineError::DeadlineExceeded { .. })
    ));
}

fn smash_index(e: &mut SearchEngine) {
    let extent = e.index_extent() as u32;
    for p in 0..extent {
        let _ = e.corrupt_index_page(p, &mut |b| {
            let i = b.len() / 2;
            b[i] ^= 0x81;
        });
    }
    e.tree_mut().clear_cache().unwrap();
}

/// `Strict` surfaces the typed corruption error and leaves the recovery
/// machinery completely untouched: no strikes, no quarantine, no breaker
/// movement. `Error` surfaces the same error but *does* feed both.
#[test]
fn strict_policy_is_isolated_from_the_breaker_and_quarantine() {
    let (mut e, data) = engine();
    smash_index(&mut e);
    let q = data[0].window(3, WINDOW).unwrap().to_vec();

    let strict = SearchOptions {
        degradation: DegradationPolicy::Strict,
        ..Default::default()
    };
    for _ in 0..5 {
        let err = e.search(&q, 5.0, strict).unwrap_err();
        assert!(err.is_corruption(), "strict surfaces the corruption: {err}");
    }
    let h = e.health();
    assert_eq!(h.breaker.to_string(), "closed");
    assert_eq!(h.strikes, 0, "strict must not feed breaker strikes");
    assert_eq!(h.seqscan_served, 0, "strict must not count seqscan service");
    assert!(h.quarantined_pages.is_empty(), "strict must not quarantine");

    let error = SearchOptions {
        degradation: DegradationPolicy::Error,
        ..Default::default()
    };
    let err = e.search(&q, 5.0, error).unwrap_err();
    assert!(err.is_corruption());
    let h = e.health();
    assert_eq!(h.strikes, 1, "Error policy feeds the breaker");
    assert!(
        !h.quarantined_pages.is_empty(),
        "Error policy quarantines the page"
    );
}

/// The full breaker lifecycle: consecutive corrupt probes trip it open,
/// an open breaker routes straight to the sequential scan, sustained
/// seqscan service moves it half-open, the half-open probe re-trips on
/// still-present corruption, and `repair` closes it for good.
#[test]
fn breaker_trips_routes_reprobes_and_repair_closes_it() {
    let data = market();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(2);
    let pristine = SearchEngine::build(&data, cfg.clone()).unwrap();
    let mut e = SearchEngine::build(&data, cfg).unwrap();
    smash_index(&mut e);

    let q = data[1].window(12, WINDOW).unwrap().to_vec();
    let oracle = pristine
        .sequential_search(&q, 5.0, CostLimit::UNLIMITED)
        .unwrap();
    let fallback = SearchOptions {
        degradation: DegradationPolicy::SeqScanFallback,
        ..Default::default()
    };

    // Three consecutive corrupt probes trip the breaker open.
    for i in 0..3 {
        let res = e.search(&q, 5.0, fallback).unwrap();
        assert!(res.stats.degraded, "probe {i}");
        assert_eq!(res.id_set(), oracle.id_set(), "probe {i}");
    }
    assert_eq!(e.health().breaker.to_string(), "open");
    assert_eq!(e.health().breaker_trips, 1);

    // While open, queries skip the probe entirely and say so.
    let res = e.search(&q, 5.0, fallback).unwrap();
    assert!(res.stats.degraded);
    assert!(
        res.stats
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("circuit breaker open"),
        "reason: {:?}",
        res.stats.degraded_reason
    );

    // Sustained successful seqscan service earns a half-open re-probe.
    // Two scans were already served while open (alongside the tripping
    // probe, and the routed query above); two more reach the threshold.
    for _ in 0..2 {
        e.search(&q, 5.0, fallback).unwrap();
    }
    assert_eq!(e.health().breaker.to_string(), "half-open");

    // … which finds the index still corrupt and re-trips.
    let res = e.search(&q, 5.0, fallback).unwrap();
    assert!(res.stats.degraded);
    assert_eq!(res.id_set(), oracle.id_set());
    assert_eq!(e.health().breaker.to_string(), "open");
    assert_eq!(e.health().breaker_trips, 2);

    // Repair rebuilds the index from the data file, drains the
    // quarantine, and closes the breaker.
    let report = e.repair().unwrap();
    assert_eq!(report.windows_reindexed, e.num_windows());
    assert!(!report.quarantine_cleared.is_empty());
    let h = e.health();
    assert_eq!(h.breaker.to_string(), "closed");
    assert!(h.quarantined_pages.is_empty());

    // The next query is answered by the index again, bit-identical.
    let res = e.search(&q, 5.0, fallback).unwrap();
    assert!(!res.stats.degraded, "repaired index answers directly");
    assert_eq!(res.id_set(), oracle.id_set());
    for (a, b) in res.matches.iter().zip(&oracle.matches) {
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }
}

/// A damaged index stream in a persisted engine is rebuilt from the
/// (intact, checksummed) data stream by the tolerant load; damage anywhere
/// else still fails loudly.
#[test]
fn load_repairing_rebuilds_a_damaged_index_stream_only() {
    let (e, data) = engine();
    let mut buf = Vec::new();
    e.save_to(&mut buf).unwrap();
    let q = data[4].window(30, WINDOW).unwrap().to_vec();
    let want = e.search(&q, 5.0, SearchOptions::default()).unwrap();

    // Clean stream: tolerant load reports no rebuild and answers the same.
    let (clean, rebuilt) =
        SearchEngine::load_repairing(&mut std::io::Cursor::new(buf.clone())).unwrap();
    assert!(!rebuilt, "clean stream must not trigger a rebuild");
    let got = clean.search(&q, 5.0, SearchOptions::default()).unwrap();
    assert_eq!(got.id_set(), want.id_set());

    // Damaged index page (the index stream is the final section).
    let mut bad = buf.clone();
    let n = bad.len();
    bad[n - 100] ^= 0x40;
    assert!(
        SearchEngine::load_from(&mut std::io::Cursor::new(bad.clone())).is_err(),
        "strict load must reject the damage"
    );
    let (fixed, rebuilt) = SearchEngine::load_repairing(&mut std::io::Cursor::new(bad)).unwrap();
    assert!(rebuilt, "tolerant load rebuilds the index");
    let got = fixed.search(&q, 5.0, SearchOptions::default()).unwrap();
    assert!(!got.stats.degraded);
    assert_eq!(got.id_set(), want.id_set());
    for (a, b) in got.matches.iter().zip(&want.matches) {
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }

    // Damage to the header / config / data sections still fails, even for
    // the tolerant load — only the index stream is reconstructible.
    for pos in [0usize, 8, 64] {
        let mut bad = buf.clone();
        bad[pos] ^= 0x01;
        assert!(
            SearchEngine::load_repairing(&mut std::io::Cursor::new(bad)).is_err(),
            "tolerant load accepted damage at byte {pos}"
        );
    }
}
