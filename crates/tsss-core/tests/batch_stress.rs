//! Threaded stress test for the parallel batch query path.
//!
//! `search_batch` must be observationally equivalent to looping
//! `search` on one thread: identical match sets (bit-identical transforms
//! and distances), identical per-query page counts (Figure 5's metric must
//! not change when queries run in parallel), and per-query counts that sum
//! to the global counter increase.

use tsss_core::{EngineConfig, SearchEngine, SearchOptions, SearchResult};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_rand::Rng;

const WINDOW: usize = 16;

fn build() -> (SearchEngine, Vec<Series>) {
    let data = MarketSimulator::new(MarketConfig::small(8, 120, 0xBA7C4)).generate();
    let e = SearchEngine::build(&data, EngineConfig::small(WINDOW)).unwrap();
    (e, data)
}

fn query_mix(data: &[Series], n: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(0xBA7C4 + 1);
    (0..n)
        .map(|_| {
            let s = rng.usize_below(data.len());
            let off = rng.usize_below(data[s].len() - WINDOW);
            if rng.bool() {
                // In-data query, possibly disguised.
                let a = rng.f64_range(0.25, 4.0);
                let b = rng.f64_range(-50.0, 50.0);
                data[s]
                    .window(off, WINDOW)
                    .unwrap()
                    .iter()
                    .map(|v| a * v + b)
                    .collect()
            } else {
                rng.f64_vec(WINDOW, -10.0, 110.0)
            }
        })
        .collect()
}

#[test]
fn batch_stress_matches_serial_under_contention() {
    let (e, data) = build();
    let queries = query_mix(&data, 64);
    let eps = 4.0;
    let opts = SearchOptions::default();

    let serial: Vec<SearchResult> = queries
        .iter()
        .map(|q| e.search(q, eps, opts).unwrap())
        .collect();

    for workers in [4, 8, 16] {
        e.reset_counters();
        let batch = e.search_batch(&queries, eps, opts, workers).unwrap();
        assert_eq!(batch.len(), serial.len());

        let mut index_sum = 0u64;
        let mut data_sum = 0u64;
        for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
            // Bit-identical matches: ids, transforms and distances.
            assert_eq!(b.matches, s.matches, "query {i}, workers {workers}");
            // Exact per-query page accounting despite interleaving.
            assert_eq!(
                b.stats.index_pages, s.stats.index_pages,
                "query {i}, workers {workers}"
            );
            assert_eq!(
                b.stats.data_pages, s.stats.data_pages,
                "query {i}, workers {workers}"
            );
            assert_eq!(b.stats.candidates, s.stats.candidates);
            assert_eq!(b.stats.verified, s.stats.verified);
            assert_eq!(b.stats.false_alarms, s.stats.false_alarms);
            index_sum += b.stats.index_pages;
            data_sum += b.stats.data_pages;
        }
        // The thread-local tallies partition the global increment exactly.
        assert_eq!(index_sum, e.index_stats().total_accesses());
        assert_eq!(data_sum, e.data_stats().total_accesses());
    }
}

#[test]
fn concurrent_searches_share_the_engine_across_plain_threads() {
    // Beyond search_batch: a shared reference can be queried from manually
    // spawned threads (SearchEngine is Sync), each getting serial-identical
    // answers.
    let (e, data) = build();
    let queries = query_mix(&data, 16);
    let eps = 2.0;
    let serial: Vec<SearchResult> = queries
        .iter()
        .map(|q| e.search(q, eps, SearchOptions::default()).unwrap())
        .collect();
    std::thread::scope(|s| {
        for chunk in queries.chunks(4).zip(serial.chunks(4)) {
            let (qs, expect) = chunk;
            let e = &e;
            s.spawn(move || {
                for (q, want) in qs.iter().zip(expect) {
                    let got = e.search(q, eps, SearchOptions::default()).unwrap();
                    assert_eq!(got.matches, want.matches);
                    assert_eq!(got.stats.index_pages, want.stats.index_pages);
                    assert_eq!(got.stats.data_pages, want.stats.data_pages);
                }
            });
        }
    });
}

#[test]
fn buffered_engine_still_answers_identically_in_parallel() {
    // With warm caches the page *counts* may differ run to run, but the
    // match sets must not.
    let data = MarketSimulator::new(MarketConfig::small(6, 90, 7)).generate();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.index_buffer_frames = 8;
    cfg.data_buffer_frames = 8;
    let e = SearchEngine::build(&data, cfg).unwrap();
    let queries = query_mix(&data, 24);
    let serial: Vec<SearchResult> = queries
        .iter()
        .map(|q| e.search(q, 3.0, SearchOptions::default()).unwrap())
        .collect();
    let batch = e
        .search_batch(&queries, 3.0, SearchOptions::default(), 6)
        .unwrap();
    for (b, s) in batch.iter().zip(&serial) {
        assert_eq!(b.matches, s.matches);
    }
}
