//! Differential equivalence suite: every public query entry point, run on
//! one seeded workload, locked byte-for-byte against a fixture generated
//! by the pre-pipeline-refactor code.
//!
//! The fixture (`tests/fixtures/equivalence_oracle.txt`) records, per case,
//! the full match list (ids, transforms and distances as exact `f64` bit
//! patterns) and the per-stage statistics including per-query page counts.
//! Any refactor of the query paths must reproduce it exactly — including
//! page accounting under parallel batches, which is also asserted to match
//! the serial runs case by case.
//!
//! Regenerate (only when an *intentional* behaviour change is made) with:
//!
//! ```text
//! TSSS_BLESS=1 cargo test -p tsss-core --test equivalence
//! ```

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use std::fmt::Write as _;

use tsss_core::{
    CostLimit, EngineConfig, SearchEngine, SearchOptions, SearchResult, SubsequenceMatch,
};
use tsss_data::{MarketConfig, MarketSimulator, Series};
use tsss_geometry::scale_shift::ScaleShift;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/equivalence_oracle.txt"
);

fn workload() -> Vec<Series> {
    let mut data = MarketSimulator::new(MarketConfig::small(6, 90, 20260807)).generate();
    data.push(Series::new("flat", vec![42.0; 90]));
    data
}

fn engine() -> SearchEngine {
    SearchEngine::build(&workload(), EngineConfig::small(16)).unwrap()
}

fn fmt_matches(out: &mut String, matches: &[SubsequenceMatch]) {
    for m in matches {
        writeln!(
            out,
            "match {}:{} a={:016x} b={:016x} d={:016x}",
            m.id.series,
            m.id.offset,
            m.transform.a.to_bits(),
            m.transform.b.to_bits(),
            m.distance.to_bits()
        )
        .unwrap();
    }
}

/// Appends one case to the report. `lock_pages` is false for paths whose
/// page accounting was undefined pre-refactor (so only the logical stats
/// are locked there).
fn case(out: &mut String, name: &str, res: &SearchResult, lock_pages: bool) {
    writeln!(out, "case {name}").unwrap();
    write!(
        out,
        "stats candidates={} verified={} false_alarms={} cost_rejected={} degraded={}",
        res.stats.candidates,
        res.stats.verified,
        res.stats.false_alarms,
        res.stats.cost_rejected,
        res.stats.degraded
    )
    .unwrap();
    if lock_pages {
        write!(
            out,
            " index_pages={} data_pages={}",
            res.stats.index_pages, res.stats.data_pages
        )
        .unwrap();
    }
    out.push('\n');
    fmt_matches(out, &res.matches);
    writeln!(out, "end").unwrap();
}

/// A case holding bare matches (the k-NN entry points predate per-query
/// stats, so only the ranked list is locked).
fn case_matches(out: &mut String, name: &str, matches: &[SubsequenceMatch]) {
    writeln!(out, "case {name}").unwrap();
    fmt_matches(out, matches);
    writeln!(out, "end").unwrap();
}

/// The per-stage accounting identity that must hold on every entry point:
/// every candidate is either verified, a false alarm, or cost-rejected.
fn assert_stage_invariant(name: &str, res: &SearchResult) {
    assert_eq!(
        res.stats.candidates,
        res.stats.verified + res.stats.false_alarms + res.stats.cost_rejected,
        "stage accounting broken on {name}: {:?}",
        res.stats
    );
    assert_eq!(res.matches.len() as u64, res.stats.verified, "{name}");
}

fn build_report() -> String {
    let data = workload();
    let e = engine();
    let mut out = String::new();

    let q0 = data[2].window(10, 16).unwrap().to_vec();
    let q1 = ScaleShift { a: 2.5, b: -40.0 }.apply(data[4].window(30, 16).unwrap());
    let q2 = vec![7.0; 16]; // constant: the degenerate shift-only plan
    let q3 = data[0].window(5, 16).unwrap().to_vec();
    let cost_tight = CostLimit {
        a_range: Some((0.9, 1.1)),
        b_range: None,
    };
    let with_cost = SearchOptions {
        cost: cost_tight,
        ..Default::default()
    };

    // Indexed search (the paper's §6 path), including the degenerate
    // constant query and a cost-limited run.
    for (name, q, eps, opts) in [
        ("indexed/q0/eps0.5", &q0, 0.5, SearchOptions::default()),
        ("indexed/q0/eps2", &q0, 2.0, SearchOptions::default()),
        ("indexed/q1/eps1e-6", &q1, 1e-6, SearchOptions::default()),
        ("indexed/q2/eps0.5", &q2, 0.5, SearchOptions::default()),
        ("indexed/q3/eps8/cost", &q3, 8.0, with_cost),
        ("indexed/q0/eps30", &q0, 30.0, SearchOptions::default()),
    ] {
        let res = e.search(q, eps, opts).unwrap();
        assert_stage_invariant(name, &res);
        case(&mut out, name, &res, true);
    }

    // Sequential-scan oracle — including a near-exact-match query (the
    // catastrophic-cancellation regime of the fit), a huge ε (the
    // accept-everything regime), and the degenerate constant query. The
    // locked `data_pages` also pin the scan's one-read-per-page contract,
    // which the read-ahead scanner must preserve exactly.
    for (name, q, eps, cost) in [
        ("seqscan/q0/eps2", &q0, 2.0, CostLimit::UNLIMITED),
        ("seqscan/q3/eps8/cost", &q3, 8.0, cost_tight),
        ("seqscan/q2/eps0.5", &q2, 0.5, CostLimit::UNLIMITED),
        ("seqscan/q1/eps1e-6", &q1, 1e-6, CostLimit::UNLIMITED),
        ("seqscan/q0/eps30", &q0, 30.0, CostLimit::UNLIMITED),
    ] {
        let res = e.sequential_search(q, eps, cost).unwrap();
        assert_stage_invariant(name, &res);
        case(&mut out, name, &res, true);
    }

    // k-NN (plain and cost-constrained).
    case_matches(&mut out, "nn/q0/k5", &e.nearest(&q0, 5).unwrap());
    case_matches(
        &mut out,
        "nn_cost/q3/k5",
        &e.nearest_with_cost(
            &q3,
            5,
            CostLimit {
                a_range: Some((0.5, 2.0)),
                b_range: None,
            },
        )
        .unwrap(),
    );

    // Long queries: prefix stitching vs its brute-force oracle. The oracle
    // predates page accounting, so its pages are not locked.
    let ql = data[1].window(10, 40).unwrap().to_vec();
    let res = e.search_long(&ql, 2.0, SearchOptions::default()).unwrap();
    assert_stage_invariant("long/len40/eps2", &res);
    case(&mut out, "long/len40/eps2", &res, true);
    let res = e.sequential_search_long(&ql, 2.0).unwrap();
    assert_stage_invariant("long_seq/len40/eps2", &res);
    case(&mut out, "long_seq/len40/eps2", &res, false);

    // z-normalised search.
    let res = e.search_znormalized(&q0, 1.0).unwrap();
    assert_stage_invariant("znorm/q0/z1", &res);
    case(&mut out, "znorm/q0/z1", &res, true);

    // Parallel batch: per-query results and page counts must be identical
    // to the serial runs above regardless of interleaving.
    let queries = vec![q0.clone(), q1.clone(), q2.clone(), q3.clone()];
    let batch = e
        .search_batch(&queries, 2.0, SearchOptions::default(), 4)
        .unwrap();
    let serial: Vec<SearchResult> = queries
        .iter()
        .map(|q| e.search(q, 2.0, SearchOptions::default()).unwrap())
        .collect();
    for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
        assert_eq!(b.matches, s.matches, "batch query {i} diverged from serial");
        assert_eq!(b.stats.index_pages, s.stats.index_pages, "batch query {i}");
        assert_eq!(b.stats.data_pages, s.stats.data_pages, "batch query {i}");
        assert_stage_invariant("batch", b);
        case(&mut out, &format!("batch/q{i}/eps2"), b, true);
    }

    // Degraded fallback: smash every index page on a fresh engine; the
    // sequential fallback must still produce the oracle answer, flagged.
    let mut broken = engine();
    for p in 0..broken.index_extent() as u32 {
        let _ = broken.corrupt_index_page(p, &mut |b| b[0] ^= 0xFF);
    }
    let res = broken.search(&q0, 2.0, SearchOptions::default()).unwrap();
    assert!(res.stats.degraded, "fallback must be flagged");
    assert_stage_invariant("degraded/q0/eps2", &res);
    case(&mut out, "degraded/q0/eps2", &res, true);

    out
}

#[test]
fn every_entry_point_matches_the_pre_refactor_oracle() {
    let report = build_report();
    if std::env::var_os("TSSS_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &report).unwrap();
        eprintln!("blessed {FIXTURE} ({} lines)", report.lines().count());
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("missing fixture — run with TSSS_BLESS=1 to generate");
    if report != expected {
        // Surface the first divergence compactly instead of dumping both.
        for (i, (got, want)) in report.lines().zip(expected.lines()).enumerate() {
            assert_eq!(got, want, "first divergence at fixture line {}", i + 1);
        }
        assert_eq!(
            report.lines().count(),
            expected.lines().count(),
            "report length diverged from fixture"
        );
        unreachable!("reports differ but no line-level divergence found");
    }
}

/// Retry accounting: transient index-read faults that succeed on retry are
/// invisible to the answer — matches, transforms, and the stage identity
/// `candidates == verified + false_alarms + cost_rejected` are bit-identical
/// to the no-fault run — while the retries themselves are observable in
/// `SearchStats::retries`.
#[test]
fn retried_transient_faults_leave_answers_bit_identical() {
    let data = workload();
    let pristine = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
    let mut flaky = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
    // 25% per-attempt read failures: almost every query retries somewhere,
    // but a *permanent* (three-attempt) failure is rare (~1.6% per read).
    flaky.inject_index_faults(tsss_storage::FaultConfig::read_errors(0xE7A1, 0.25));

    let error_opts = SearchOptions {
        degradation: tsss_core::DegradationPolicy::Error,
        ..Default::default()
    };
    let mut total_retries = 0u64;
    let mut compared = 0usize;
    for (series, offset, eps) in [
        (0usize, 5usize, 2.0),
        (1, 20, 8.0),
        (2, 40, 0.5),
        (3, 11, 15.0),
        (4, 33, 4.0),
        (5, 60, 1.0),
    ] {
        let q = data[series].window(offset, 16).unwrap().to_vec();
        let want = pristine.search(&q, eps, SearchOptions::default()).unwrap();
        match flaky.search(&q, eps, error_opts) {
            // A permanent failure surfaces typed; it cannot corrupt a
            // comparison, so it is simply not compared.
            Err(e) => assert!(e.is_corruption(), "untyped error: {e}"),
            Ok(got) => {
                compared += 1;
                assert!(!got.stats.degraded);
                assert_eq!(got.matches.len(), want.matches.len());
                for (a, b) in got.matches.iter().zip(&want.matches) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                    assert_eq!(a.transform.a.to_bits(), b.transform.a.to_bits());
                    assert_eq!(a.transform.b.to_bits(), b.transform.b.to_bits());
                }
                assert_eq!(got.stats.candidates, want.stats.candidates);
                assert_eq!(got.stats.verified, want.stats.verified);
                assert_eq!(got.stats.false_alarms, want.stats.false_alarms);
                assert_eq!(got.stats.cost_rejected, want.stats.cost_rejected);
                assert_eq!(
                    got.stats.candidates,
                    got.stats.verified + got.stats.false_alarms + got.stats.cost_rejected
                );
                total_retries += got.stats.retries;
            }
        }
    }
    assert!(compared > 0, "every query failed permanently");
    assert!(
        total_retries > 0,
        "no retry ever fired — the fault profile has no teeth"
    );
}

/// Parallel sequential scans: the seqscan oracle run from many threads at
/// once must be bit-identical to the serial runs — matches, transforms,
/// distances, and the per-query page accounting (each scan charges the
/// whole file exactly once, regardless of interleaving). This pins the
/// read-ahead scan path under concurrency the same way the batch cases in
/// the fixture pin the indexed path.
#[test]
fn parallel_seqscans_are_bit_identical_to_serial() {
    let data = workload();
    let e = engine();
    let queries: Vec<(Vec<f64>, f64)> = [
        (2usize, 10usize, 2.0f64),
        (4, 30, 0.5),
        (0, 5, 8.0),
        (1, 44, 1.0),
        (5, 60, 4.0),
        (3, 12, 30.0),
    ]
    .iter()
    .map(|&(s, off, eps)| (data[s].window(off, 16).unwrap().to_vec(), eps))
    .collect();

    let serial: Vec<SearchResult> = queries
        .iter()
        .map(|(q, eps)| e.sequential_search(q, *eps, CostLimit::UNLIMITED).unwrap())
        .collect();

    let parallel: Vec<SearchResult> = std::thread::scope(|sc| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(q, eps)| {
                let e = &e;
                sc.spawn(move || e.sequential_search(q, *eps, CostLimit::UNLIMITED).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_pages = e.data_page_count() as u64;
    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        assert_eq!(p.matches.len(), s.matches.len(), "query {i}");
        for (a, b) in p.matches.iter().zip(&s.matches) {
            assert_eq!(a.id, b.id, "query {i}");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "query {i}");
            assert_eq!(a.transform.a.to_bits(), b.transform.a.to_bits());
            assert_eq!(a.transform.b.to_bits(), b.transform.b.to_bits());
        }
        assert_eq!(p.stats.candidates, s.stats.candidates, "query {i}");
        assert_eq!(p.stats.data_pages, total_pages, "query {i}");
        assert_eq!(p.stats.index_pages, 0, "query {i}");
        assert_stage_invariant("parallel seqscan", p);
    }
}

/// Write-path equivalence: growing an engine by appends, round-tripping it
/// through save → load, and querying must be bit-identical (matches,
/// transforms, distances) to building an engine from the full data in one
/// shot. The tree *structures* differ (incremental inserts vs bulk load),
/// so page counts are not compared — but the answer must not depend on how
/// the windows got into the index.
#[test]
fn append_save_load_answers_bit_identical_to_build_from_scratch() {
    let full = workload();
    // Split every series: build from a prefix, append the rest in two
    // uneven chunks (exercising windows that span append boundaries), plus
    // one series added entirely via append_series.
    let split = 55;
    let prefixes: Vec<Series> = full[..full.len() - 1]
        .iter()
        .map(|s| Series::new(s.name.clone(), s.values[..split].to_vec()))
        .collect();
    let mut grown = SearchEngine::build(&prefixes, EngineConfig::small(16)).unwrap();
    for (i, s) in full[..full.len() - 1].iter().enumerate() {
        let mid = split + 13;
        grown.append_values(i, &s.values[split..mid]).unwrap();
        grown.append_values(i, &s.values[mid..]).unwrap();
    }
    let last = full.last().unwrap();
    grown.append_series(last).unwrap();

    // Round-trip the grown engine through persistence.
    let dir = std::env::temp_dir().join(format!("tsss-equiv-append-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grown.tsss");
    grown.save_to_path(&path).unwrap();
    let reloaded = SearchEngine::load_from_path(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let scratch = SearchEngine::build(&full, EngineConfig::small(16)).unwrap();
    assert_eq!(reloaded.num_windows(), scratch.num_windows());
    assert_eq!(reloaded.num_series(), scratch.num_series());

    for (series, offset, eps) in [
        (0usize, 5usize, 2.0),
        (2, 40, 0.5),
        (4, 33, 4.0),
        (5, 60, 1.0),
        (3, 50, 8.0), // spans the append boundary (50..66 crosses 55)
    ] {
        let q = full[series].window(offset, 16).unwrap().to_vec();
        let want = scratch.search(&q, eps, SearchOptions::default()).unwrap();
        let got = reloaded.search(&q, eps, SearchOptions::default()).unwrap();
        assert_eq!(got.matches.len(), want.matches.len(), "eps {eps}");
        for (a, b) in got.matches.iter().zip(&want.matches) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            assert_eq!(a.transform.a.to_bits(), b.transform.a.to_bits());
            assert_eq!(a.transform.b.to_bits(), b.transform.b.to_bits());
        }
        assert_eq!(got.stats.verified, want.stats.verified);
        assert_eq!(
            got.stats.candidates,
            got.stats.verified + got.stats.false_alarms + got.stats.cost_rejected
        );
        // The grown engine's z-probe bound must agree too: identical data
        // means identical max SE-norm, so the z-normalised path plans the
        // same feature-space ε.
        assert_eq!(
            reloaded.max_se_norm().to_bits(),
            scratch.max_se_norm().to_bits()
        );
    }
}

/// Shard-count invariance: the scatter-gather engine must answer every
/// query mode bit-identically (ids, transforms, distances) whether the
/// series live in 1 shard or 4 — and identically to the plain unsharded
/// engine. The partition is an implementation detail; the answer is not
/// allowed to depend on it.
#[test]
fn sharded_answers_are_shard_count_invariant() {
    use tsss_core::ShardedEngine;
    let data = workload();
    let single = engine();
    let n1 = ShardedEngine::build(&data, EngineConfig::small(16), 1).unwrap();
    let n4 = ShardedEngine::build(&data, EngineConfig::small(16), 4).unwrap();
    assert_eq!(n1.num_windows(), single.num_windows());
    assert_eq!(n4.num_windows(), single.num_windows());

    let assert_same = |name: &str, want: &SearchResult, got: &SearchResult| {
        assert_eq!(got.matches.len(), want.matches.len(), "{name}: count");
        for (a, b) in got.matches.iter().zip(&want.matches) {
            assert_eq!(a.id, b.id, "{name}");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{name}");
            assert_eq!(a.transform.a.to_bits(), b.transform.a.to_bits(), "{name}");
            assert_eq!(a.transform.b.to_bits(), b.transform.b.to_bits(), "{name}");
        }
        // Only the accounting identity — not `matches == verified`, which
        // k-NN's truncation to k legitimately breaks.
        assert_eq!(
            got.stats.candidates,
            got.stats.verified + got.stats.false_alarms + got.stats.cost_rejected,
            "stage accounting broken on {name}: {:?}",
            got.stats
        );
    };

    let q = data[0].window(5, 16).unwrap().to_vec();
    let ql = data[1].window(10, 40).unwrap().to_vec();
    for (name, base, r1, r4) in [
        (
            "range/eps2",
            single.search(&q, 2.0, SearchOptions::default()).unwrap(),
            n1.search(&q, 2.0, SearchOptions::default()).unwrap(),
            n4.search(&q, 2.0, SearchOptions::default()).unwrap(),
        ),
        (
            "knn/k7",
            single
                .nearest_search_opts(&q, 7, SearchOptions::default())
                .unwrap(),
            n1.nearest_search_opts(&q, 7, SearchOptions::default())
                .unwrap(),
            n4.nearest_search_opts(&q, 7, SearchOptions::default())
                .unwrap(),
        ),
        (
            "znorm/eps1",
            single.search_znormalized(&q, 1.0).unwrap(),
            n1.search_znormalized(&q, 1.0).unwrap(),
            n4.search_znormalized(&q, 1.0).unwrap(),
        ),
        (
            "long/len40",
            single
                .search_long(&ql, 2.0, SearchOptions::default())
                .unwrap(),
            n1.search_long(&ql, 2.0, SearchOptions::default()).unwrap(),
            n4.search_long(&ql, 2.0, SearchOptions::default()).unwrap(),
        ),
    ] {
        assert_same(&format!("{name}/n1"), &base, &r1);
        assert_same(&format!("{name}/n4"), &base, &r4);
        assert_eq!(r1.stats.shards_ok, 1, "{name}");
        assert_eq!(r4.stats.shards_ok, 4, "{name}");
        assert_eq!(r4.stats.degraded_shards, 0, "{name}");
    }

    // Batches too, across worker counts.
    let batch: Vec<Vec<f64>> = (0..5)
        .map(|i| data[i % data.len()].window(3 + 7 * i, 16).unwrap().to_vec())
        .collect();
    let base = single
        .search_batch(&batch, 1.5, SearchOptions::default(), 1)
        .unwrap();
    for workers in [1, 4] {
        let got = n4
            .search_batch(&batch, 1.5, SearchOptions::default(), workers)
            .unwrap();
        for (i, (want, have)) in base.iter().zip(&got).enumerate() {
            assert_same(&format!("batch[{i}]/w{workers}"), want, have);
        }
    }
}
