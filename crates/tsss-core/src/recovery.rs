//! Self-healing machinery: the circuit breaker, page quarantine, and the
//! reports surfaced by [`crate::SearchEngine::repair`] and
//! [`crate::SearchEngine::health`].
//!
//! PR 2 made corruption *detected* and *degraded around*; this module makes
//! it *recoverable*. The state machine is the classic three-state circuit
//! breaker, driven entirely by deterministic probe outcomes (no wall clock):
//!
//! ```text
//!            K consecutive corrupt probes
//!   Closed ────────────────────────────────► Open
//!     ▲                                        │ H seqscan answers served
//!     │ successful probe, or repair            ▼
//!     └──────────────────────────────────── HalfOpen
//!                    (a corrupt half-open probe re-opens)
//! ```
//!
//! While **Closed**, every `SeqScanFallback` query tries the index; a
//! corrupt probe degrades that one query and counts a strike. After
//! `TRIP_THRESHOLD` consecutive strikes the breaker
//! **Opens**: queries skip the doomed probe and go straight to the
//! sequential scan (still exact, still flagged degraded). After
//! `HALF_OPEN_AFTER` scans the breaker moves to
//! **HalfOpen** and lets exactly one query probe the index again — success
//! closes the breaker, corruption re-opens it. A successful
//! [`crate::SearchEngine::repair`] closes it immediately.
//!
//! All state is atomics: the engine's read path is `&self` and runs under
//! [`crate::SearchEngine::search_batch`]'s thread fan-out. Counts are
//! monotone or reset-on-transition; races can at worst delay a transition
//! by one query, never corrupt the state machine.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// The circuit breaker's position (see the module docs for the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: queries probe the index.
    #[default]
    Closed,
    /// Tripped: `SeqScanFallback` queries skip the index entirely.
    Open,
    /// Probation: the next query probes the index once to test recovery.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

const STATE_CLOSED: u8 = 0;
const STATE_OPEN: u8 = 1;
const STATE_HALF_OPEN: u8 = 2;

/// The engine-owned breaker: all-atomic so the `&self` read path can drive
/// it from any number of threads.
#[derive(Debug, Default)]
pub(crate) struct CircuitBreaker {
    state: AtomicU8,
    /// Consecutive corrupt probes while Closed.
    strikes: AtomicU32,
    /// Seqscan answers served while Open (drives the half-open probe).
    open_scans: AtomicU32,
    /// Total queries answered by the sequential scan because of corruption
    /// or an open breaker — the "seqscan counter" of the health report.
    seqscan_served: AtomicU64,
    /// Times the breaker tripped open over the engine's lifetime.
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// Consecutive corrupt probes that trip the breaker open.
    pub(crate) const TRIP_THRESHOLD: u32 = 3;
    /// Seqscan answers served while open before a half-open probe is
    /// allowed.
    pub(crate) const HALF_OPEN_AFTER: u32 = 4;

    pub(crate) fn state(&self) -> BreakerState {
        // analyze::allow(atomics-mixed): the Acquire loads of `state` deliberately pair with the Release stores in trip()/reset()/record_* — the state byte is a published flag, and mixing Acquire/Release on it is the point.
        match self.state.load(Ordering::Acquire) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Whether the next query should attempt the index probe. `false` only
    /// while Open; a HalfOpen breaker admits the probe (that is the test).
    pub(crate) fn allows_probe(&self) -> bool {
        // Acquire pairs with the Release stores that publish transitions.
        self.state.load(Ordering::Acquire) != STATE_OPEN
    }

    /// Records a successful (non-corrupt) index probe: clears the strike
    /// count and closes a half-open breaker.
    pub(crate) fn record_probe_success(&self) {
        // Relaxed: strike counting tolerates reorder — a racing strike at
        // worst delays a trip by one query (see the module docs).
        self.strikes.store(0, Ordering::Relaxed);
        // Acquire/Release pair on the state byte publishes the transition.
        if self.state.load(Ordering::Acquire) == STATE_HALF_OPEN {
            self.state.store(STATE_CLOSED, Ordering::Release); // see above
        }
    }

    /// Records a corrupt index probe: one strike while Closed (tripping
    /// open at the threshold), or an immediate re-open from HalfOpen.
    pub(crate) fn record_probe_corrupt(&self) {
        // Acquire pairs with the Release stores that publish transitions.
        match self.state.load(Ordering::Acquire) {
            STATE_HALF_OPEN => self.trip(),
            STATE_CLOSED
                // Relaxed: fetch_add keeps the count exact; ordering
                // against the state byte is not needed (worst case a trip
                // is delayed by one query).
                if self.strikes.fetch_add(1, Ordering::Relaxed) + 1 >= Self::TRIP_THRESHOLD =>
            {
                self.trip()
            }
            _ => {}
        }
    }

    fn trip(&self) {
        // Release publishes the Open state; the counter resets below are
        // Relaxed because they only gate the *next* transition and a
        // stale read merely delays it by one query.
        self.state.store(STATE_OPEN, Ordering::Release);
        self.open_scans.store(0, Ordering::Relaxed); // see above: reset gate
        self.strikes.store(0, Ordering::Relaxed); // see above: reset gate
        self.trips.fetch_add(1, Ordering::Relaxed); // monotone lifetime total
    }

    /// Records a query answered by the sequential scan because of
    /// corruption or an open breaker. While Open, enough served scans move
    /// the breaker to HalfOpen so the next query re-tests the index.
    pub(crate) fn record_seqscan_served(&self) {
        // Relaxed: monotone lifetime counter, ordered by nothing.
        self.seqscan_served.fetch_add(1, Ordering::Relaxed);
        // Acquire load pairs with the Release transition stores; the scan
        // count itself is Relaxed (an off-by-one race only shifts when the
        // half-open probe happens).
        if self.state.load(Ordering::Acquire) == STATE_OPEN
            // Relaxed: see the comment above the condition.
            && self.open_scans.fetch_add(1, Ordering::Relaxed) + 1 >= Self::HALF_OPEN_AFTER
        {
            // Release publishes the HalfOpen transition.
            self.state.store(STATE_HALF_OPEN, Ordering::Release);
        }
    }

    /// Closes the breaker and clears transient counts (a successful repair
    /// proved the index healthy). Lifetime totals (`trips`,
    /// `seqscan_served`) are preserved.
    pub(crate) fn reset(&self) {
        // Release publishes the repair; Relaxed resets only gate future
        // transitions (a stale read delays them by at most one query).
        self.state.store(STATE_CLOSED, Ordering::Release);
        self.strikes.store(0, Ordering::Relaxed); // see above
        self.open_scans.store(0, Ordering::Relaxed); // see above
    }

    pub(crate) fn seqscan_served(&self) -> u64 {
        // Relaxed: monotone counter read for reporting only.
        self.seqscan_served.load(Ordering::Relaxed)
    }

    pub(crate) fn trips(&self) -> u64 {
        // Relaxed: monotone counter read for reporting only.
        self.trips.load(Ordering::Relaxed)
    }

    pub(crate) fn strikes(&self) -> u32 {
        // Relaxed: advisory health-report read.
        self.strikes.load(Ordering::Relaxed)
    }
}

/// Point-in-time health of an engine, as reported by
/// [`crate::SearchEngine::health`] and the `tsss health` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Current breaker position.
    pub breaker: BreakerState,
    /// Consecutive corrupt probes recorded while Closed.
    pub strikes: u32,
    /// Queries answered by the sequential scan because of corruption or an
    /// open breaker, over the engine's lifetime.
    pub seqscan_served: u64,
    /// Times the breaker tripped open, over the engine's lifetime.
    pub breaker_trips: u64,
    /// Storage pages implicated in corrupt probes and awaiting repair.
    pub quarantined_pages: Vec<u32>,
    /// Transient-fault read retries on the index file.
    pub index_retries: u64,
    /// Transient-fault read retries on the data file.
    pub data_retries: u64,
    /// True when a failed append left stored values whose windows never
    /// reached the index — queries silently miss that tail until
    /// [`crate::SearchEngine::repair`] re-indexes it from the data file.
    pub append_tail_unindexed: bool,
    /// True when a removal deleted the window holding the global SE-norm
    /// bound, leaving z-normalised probes over-reading until
    /// [`crate::SearchEngine::repair`] recomputes the exact bound.
    pub max_norm_loose: bool,
    /// Acknowledged appends sitting in the write-ahead log and not yet
    /// folded into a full engine save — what a crash right now would
    /// replay on reopen. Zero for an engine without a log.
    pub wal_tail_records: u64,
    /// Log records replayed when this engine was opened (a non-zero value
    /// means the last shutdown was a crash and recovery ran).
    pub wal_replayed: u64,
}

impl HealthReport {
    /// Whether running [`crate::SearchEngine::repair`] would improve this
    /// engine: the breaker is not closed, pages are quarantined, an append
    /// left an unindexed tail, or the SE-norm bound is loose.
    pub fn repair_recommended(&self) -> bool {
        self.breaker != BreakerState::Closed
            || !self.quarantined_pages.is_empty()
            || self.append_tail_unindexed
            || self.max_norm_loose
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "breaker:          {}", self.breaker)?;
        writeln!(f, "strikes:          {}", self.strikes)?;
        writeln!(f, "seqscan served:   {}", self.seqscan_served)?;
        writeln!(f, "breaker trips:    {}", self.breaker_trips)?;
        writeln!(
            f,
            "quarantined:      {} pages",
            self.quarantined_pages.len()
        )?;
        writeln!(f, "index retries:    {}", self.index_retries)?;
        writeln!(f, "data retries:     {}", self.data_retries)?;
        writeln!(
            f,
            "unindexed tail:   {}",
            if self.append_tail_unindexed {
                "yes (repair needed)"
            } else {
                "no"
            }
        )?;
        writeln!(
            f,
            "norm bound:       {}",
            if self.max_norm_loose {
                "loose (repair tightens)"
            } else {
                "tight"
            }
        )?;
        writeln!(f, "wal tail:         {} records", self.wal_tail_records)?;
        writeln!(f, "wal replayed:     {}", self.wal_replayed)?;
        write!(
            f,
            "repair:           {}",
            if self.repair_recommended() {
                "recommended"
            } else {
                "not needed"
            }
        )
    }
}

/// What [`crate::SearchEngine::repair`] did, for logging and the `tsss
/// repair` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Windows re-indexed from the authoritative data file.
    pub windows_reindexed: usize,
    /// Quarantined page ids cleared by the rebuild.
    pub quarantine_cleared: Vec<u32>,
}

impl std::fmt::Display for RepairReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reindexed {} windows, cleared {} quarantined pages",
            self.windows_reindexed,
            self.quarantine_cleared.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_starts_closed_and_trips_after_k_strikes() {
        let b = CircuitBreaker::default();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_probe());
        for _ in 0..CircuitBreaker::TRIP_THRESHOLD - 1 {
            b.record_probe_corrupt();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.record_probe_corrupt();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_probe());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_clears_strikes_so_intermittent_faults_never_trip() {
        let b = CircuitBreaker::default();
        for _ in 0..10 {
            b.record_probe_corrupt();
            b.record_probe_corrupt();
            b.record_probe_success(); // never three in a row
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn open_breaker_half_opens_after_enough_scans_then_closes_on_success() {
        let b = CircuitBreaker::default();
        for _ in 0..CircuitBreaker::TRIP_THRESHOLD {
            b.record_probe_corrupt();
        }
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..CircuitBreaker::HALF_OPEN_AFTER {
            b.record_seqscan_served();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows_probe(), "half-open admits one test probe");
        b.record_probe_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn corrupt_half_open_probe_reopens() {
        let b = CircuitBreaker::default();
        for _ in 0..CircuitBreaker::TRIP_THRESHOLD {
            b.record_probe_corrupt();
        }
        for _ in 0..CircuitBreaker::HALF_OPEN_AFTER {
            b.record_seqscan_served();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_probe_corrupt();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn reset_closes_but_preserves_lifetime_totals() {
        let b = CircuitBreaker::default();
        for _ in 0..CircuitBreaker::TRIP_THRESHOLD {
            b.record_probe_corrupt();
        }
        b.record_seqscan_served();
        b.reset();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.strikes(), 0);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.seqscan_served(), 1);
    }

    #[test]
    fn breaker_state_displays_are_stable() {
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}
