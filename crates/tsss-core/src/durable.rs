//! Crash-safe ingest: a [`SearchEngine`] paired with a write-ahead append
//! log ([`tsss_storage::wal`]).
//!
//! # The acknowledgement contract
//!
//! Every mutation accepted through [`DurableEngine::append_values`] /
//! [`DurableEngine::append_series`] is framed, CRC32-checksummed and
//! **fsynced** to the `<engine>.wal` sidecar *before* the in-memory engine
//! mutates. An `Ok` return therefore means the append survives a process
//! kill or power cut at any later instant: [`DurableEngine::open`] replays
//! the log tail (re-running the incremental SE-transform/DFT/R\*-insert)
//! on top of the last atomic save. An `Err` means the append was **not**
//! acknowledged and may or may not survive — callers retry.
//!
//! [`DurableEngine::save`] persists the whole engine atomically
//! (temp + rename, see [`SearchEngine::save_to_path`]) and then truncates
//! the log, whose records are now all reflected in the saved image. A
//! crash *between* the save and the truncate leaves both — which is why
//! replay is idempotent: each record carries enough position information
//! (`prior_len` / `expected series index`) to detect that a save already
//! covers it and skip cleanly.
//!
//! Window *removals* are deliberately not logged: they are index-only
//! edits and the index is always rebuilt from the authoritative data file
//! on a tolerant load, so a crash resurrects removed windows until the
//! next full save. The streaming-ingest durability story is about
//! appends — the paper's dynamic-maintenance requirement (§3).
//!
//! # Crash-point injection
//!
//! [`DurableEngine::set_crash_point`] arms one simulated kill
//! ([`CrashPoint`]) on the next mutation; the chaos suite drives every
//! point, drops the engine ("kill"), re-opens from disk, and asserts
//! search results bit-identical to a never-crashed twin.

use std::io;
use std::path::{Path, PathBuf};

use tsss_data::Series;
use tsss_storage::codec::{get_f64, get_u64, get_u8, put_f64, put_string, put_u64, put_u8};
use tsss_storage::{CrashPoint, Wal};

use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::recovery::HealthReport;

/// Record kind tag: append values to an existing series.
const KIND_APPEND: u8 = 0;
/// Record kind tag: create a new series (optionally with initial values).
const KIND_NEW_SERIES: u8 = 1;

/// What replaying the WAL tail did at open, for operator-facing logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalReplayReport {
    /// Intact records found in the log tail.
    pub tail_records: u64,
    /// Records re-applied to the engine (the last shutdown was a crash).
    pub applied: u64,
    /// Records skipped because the last atomic save already covered them
    /// (a crash between save and log truncate).
    pub skipped: u64,
    /// True when the log ended in a torn or corrupt record — the on-disk
    /// shape of a kill mid-append; the record was never acknowledged and
    /// was dropped.
    pub damaged_tail: bool,
    /// True when the engine file's index stream was itself damaged and
    /// rebuilt from the data stream during the tolerant load.
    pub index_repaired: bool,
}

/// A [`SearchEngine`] whose appends are write-ahead logged; see the module
/// docs for the durability contract.
#[derive(Debug)]
pub struct DurableEngine {
    engine: SearchEngine,
    /// `None` for a volatile (log-less) engine — same API, no durability.
    wal: Option<Wal>,
    /// Where [`DurableEngine::save`] persists the engine; `None` when
    /// volatile.
    engine_path: Option<PathBuf>,
    replay: WalReplayReport,
    /// One-shot armed crash point for the chaos suite.
    crash: Option<CrashPoint>,
}

impl DurableEngine {
    /// Wraps an engine with no log and no save path: appends are
    /// acknowledged from memory only (`durable == false`). The mode the
    /// server falls back to when given an in-memory engine.
    pub fn new_volatile(engine: SearchEngine) -> Self {
        Self {
            engine,
            wal: None,
            engine_path: None,
            replay: WalReplayReport::default(),
            crash: None,
        }
    }

    /// Opens the engine saved at `engine_path` (tolerating a damaged index
    /// stream, as [`SearchEngine::load_repairing_from_path`]), opens or
    /// creates the `<engine_path>.wal` sidecar, and replays any intact log
    /// tail so every acknowledged append is back. The log is **not**
    /// truncated by replay — only a successful [`DurableEngine::save`]
    /// empties it.
    ///
    /// # Errors
    /// `InvalidData` when the engine file or a logged record is damaged
    /// beyond the tolerated cases (a torn log *tail* is tolerated; an
    /// inconsistent record body is not); propagates I/O errors.
    pub fn open(engine_path: &Path) -> io::Result<Self> {
        let (engine, index_repaired) = SearchEngine::load_repairing_from_path(engine_path)?;
        let (wal, scan) = Wal::open(&Self::wal_path_for(engine_path))?;
        let mut de = Self {
            engine,
            wal: Some(wal),
            engine_path: Some(engine_path.to_path_buf()),
            replay: WalReplayReport {
                tail_records: u64::try_from(scan.records.len()).unwrap_or(u64::MAX),
                applied: 0,
                skipped: 0,
                damaged_tail: scan.damaged_tail,
                index_repaired,
            },
            crash: None,
        };
        for record in &scan.records {
            if de.replay_record(record)? {
                de.replay.applied += 1;
            } else {
                de.replay.skipped += 1;
            }
        }
        Ok(de)
    }

    /// The log sidecar path for an engine file: `<engine_path>.wal`.
    pub fn wal_path_for(engine_path: &Path) -> PathBuf {
        let mut os = engine_path.as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// Whether appends are write-ahead logged (`true`) or memory-only.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// What replay did when this engine was opened.
    pub fn replay_report(&self) -> WalReplayReport {
        self.replay
    }

    /// Acknowledged appends in the log and not yet folded into a save.
    pub fn wal_tail_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::records)
    }

    /// Read access to the wrapped engine (queries, health, stats).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// Mutable access to the wrapped engine, for maintenance that is *not*
    /// append-shaped — [`SearchEngine::repair`] in particular, whose
    /// effect is always derivable from the data file and so needs no log
    /// record. Appends must go through [`DurableEngine::append_values`] /
    /// [`DurableEngine::append_series`] or they will not survive a crash.
    pub fn engine_mut(&mut self) -> &mut SearchEngine {
        &mut self.engine
    }

    /// The engine's health, with the WAL durability fields filled in.
    pub fn health(&self) -> HealthReport {
        let mut h = self.engine.health();
        h.wal_tail_records = self.wal_tail_records();
        h.wal_replayed = self.replay.applied;
        h
    }

    /// Arms one simulated process kill at `point` on the next mutation
    /// (chaos testing); `None` disarms.
    pub fn set_crash_point(&mut self, point: Option<CrashPoint>) {
        self.crash = point;
    }

    /// Logs then applies an append to an existing series; the log fsync is
    /// the acknowledgement point (module docs).
    ///
    /// # Errors
    /// [`EngineError::Wal`] when the record could not be made durable (the
    /// engine did not mutate); otherwise as
    /// [`SearchEngine::append_values`].
    pub fn append_values(&mut self, series: usize, values: &[f64]) -> Result<(), EngineError> {
        // Validate before logging, so a doomed request never pollutes the
        // log with a record that cannot replay.
        let prior_len = self.engine.series_len(series)?;
        prior_len
            .checked_add(values.len())
            .ok_or(EngineError::TooLarge {
                what: "series length",
                value: prior_len,
            })?;
        let payload = encode_append(series, prior_len, values).map_err(wal_error)?;
        self.log_then(&payload, |e| e.append_values(series, values))
    }

    /// Logs then applies the creation of a new series (with any initial
    /// values); returns the new series index.
    ///
    /// # Errors
    /// As [`DurableEngine::append_values`].
    pub fn append_series(&mut self, series: &Series) -> Result<usize, EngineError> {
        let expect_idx = self.engine.num_series();
        let payload =
            encode_new_series(expect_idx, &series.name, &series.values).map_err(wal_error)?;
        self.log_then(&payload, |e| e.append_series(series))
    }

    /// Persists the engine atomically and then truncates the log (whose
    /// records the saved image now covers). A kill between the two leaves
    /// both the save and the log — replay idempotence handles it.
    ///
    /// # Errors
    /// [`EngineError::Wal`] when the engine is volatile (no save path) or
    /// when the save or truncate fails.
    pub fn save(&mut self) -> Result<(), EngineError> {
        let path = self.engine_path.clone().ok_or_else(|| EngineError::Wal {
            detail: "volatile engine has no save path".to_string(),
        })?;
        self.engine
            .save_to_path(&path)
            .map_err(|e| wal_error(io::Error::new(e.kind(), format!("engine save failed: {e}"))))?;
        if self.take_crash(CrashPoint::PostSavePreTruncate) {
            return Err(crash_error(CrashPoint::PostSavePreTruncate));
        }
        if let Some(wal) = &mut self.wal {
            wal.truncate().map_err(wal_error)?;
        }
        Ok(())
    }

    /// The write-then-apply core shared by both append entry points,
    /// threading the armed crash point through its exact position on the
    /// path (see [`CrashPoint`] for the per-point on-disk contract).
    fn log_then<R>(
        &mut self,
        payload: &[u8],
        apply: impl FnOnce(&mut SearchEngine) -> Result<R, EngineError>,
    ) -> Result<R, EngineError> {
        if let Some(wal) = &mut self.wal {
            if self.crash == Some(CrashPoint::PreWalSync) {
                self.crash = None;
                // The kill lands mid-write: a torn, unsynced half-frame is
                // on disk and the append was never acknowledged.
                wal.append_torn_unsynced(payload).map_err(wal_error)?;
                return Err(crash_error(CrashPoint::PreWalSync));
            }
            wal.append(payload).map_err(wal_error)?;
        }
        if self.take_crash(CrashPoint::PostWalPreIndex) {
            return Err(crash_error(CrashPoint::PostWalPreIndex));
        }
        if self.take_crash(CrashPoint::MidIndexInsert) {
            // The in-memory mutation fully lands, then the process dies
            // before replying — on disk this is identical to
            // PostWalPreIndex, which is exactly what recovery must prove.
            // analyze::allow(result-discipline): the simulated crash discards the apply result on purpose — the caller only ever sees the injected crash error, exactly like a real kill.
            let _ = apply(&mut self.engine);
            return Err(crash_error(CrashPoint::MidIndexInsert));
        }
        apply(&mut self.engine)
    }

    /// Consumes the armed crash point if it matches `point`.
    fn take_crash(&mut self, point: CrashPoint) -> bool {
        if self.crash == Some(point) {
            self.crash = None;
            true
        } else {
            false
        }
    }

    /// Re-applies one logged record at open. Returns `true` when applied,
    /// `false` when a previous save already covered it (idempotent skip).
    ///
    /// The skip tests are sound because saves are atomic and appends are
    /// synchronous: engine positions (series count, series length) advance
    /// exactly in log order, so a position at or past a record's end means
    /// a save captured that whole record.
    fn replay_record(&mut self, payload: &[u8]) -> io::Result<bool> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        match decode_record(payload)? {
            WalRecord::Append {
                series,
                prior_len,
                values,
            } => {
                let have = self
                    .engine
                    .series_len(series)
                    .map_err(|e| invalid(format!("WAL replay: {e}")))?;
                let end = prior_len
                    .checked_add(values.len())
                    .ok_or_else(|| invalid("WAL replay: series length overflow".to_string()))?;
                if have >= end {
                    return Ok(false); // covered by the last save
                }
                if have != prior_len {
                    return Err(invalid(format!(
                        "WAL replay: series {series} is {have} values long, \
                         record expects {prior_len}"
                    )));
                }
                self.engine
                    .append_values(series, &values)
                    .map_err(|e| invalid(format!("WAL replay: {e}")))?;
                Ok(true)
            }
            WalRecord::NewSeries {
                expect_idx,
                name,
                values,
            } => {
                let have = self.engine.num_series();
                if have > expect_idx {
                    return Ok(false); // covered by the last save
                }
                if have < expect_idx {
                    return Err(invalid(format!(
                        "WAL replay: engine has {have} series, record expects {expect_idx}"
                    )));
                }
                self.engine
                    .append_series(&Series::new(name, values))
                    .map_err(|e| invalid(format!("WAL replay: {e}")))?;
                Ok(true)
            }
        }
    }
}

/// A decoded log record.
enum WalRecord {
    /// Values appended to series `series`, which held `prior_len` values
    /// when the record was logged.
    Append {
        series: usize,
        prior_len: usize,
        values: Vec<f64>,
    },
    /// A new series created at index `expect_idx`.
    NewSeries {
        expect_idx: usize,
        name: String,
        values: Vec<f64>,
    },
}

/// Maps a log I/O failure into the engine's typed error.
fn wal_error(e: io::Error) -> EngineError {
    EngineError::Wal {
        detail: e.to_string(),
    }
}

/// The typed error an armed crash point surfaces as.
fn crash_error(point: CrashPoint) -> EngineError {
    EngineError::Wal {
        detail: format!("injected crash at {}", point.name()),
    }
}

fn encode_append(series: usize, prior_len: usize, values: &[f64]) -> io::Result<Vec<u8>> {
    let mut p = Vec::with_capacity(25 + values.len() * 8);
    put_u8(&mut p, KIND_APPEND)?;
    put_u64(&mut p, as_u64(series)?)?;
    put_u64(&mut p, as_u64(prior_len)?)?;
    put_values(&mut p, values)?;
    Ok(p)
}

fn encode_new_series(expect_idx: usize, name: &str, values: &[f64]) -> io::Result<Vec<u8>> {
    let mut p = Vec::with_capacity(17 + name.len() + values.len() * 8);
    put_u8(&mut p, KIND_NEW_SERIES)?;
    put_u64(&mut p, as_u64(expect_idx)?)?;
    put_string(&mut p, name)?;
    put_values(&mut p, values)?;
    Ok(p)
}

fn put_values(p: &mut Vec<u8>, values: &[f64]) -> io::Result<()> {
    put_u64(p, as_u64(values.len())?)?;
    for v in values {
        put_f64(p, *v)?;
    }
    Ok(())
}

fn decode_record(payload: &[u8]) -> io::Result<WalRecord> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("WAL {msg}"));
    let r = &mut io::Cursor::new(payload);
    match get_u8(r)? {
        KIND_APPEND => {
            let series = as_usize(get_u64(r)?)?;
            let prior_len = as_usize(get_u64(r)?)?;
            let values = get_values(r, payload.len())?;
            Ok(WalRecord::Append {
                series,
                prior_len,
                values,
            })
        }
        KIND_NEW_SERIES => {
            let expect_idx = as_usize(get_u64(r)?)?;
            let name_len = as_usize(get_u64(r)?)?;
            // Bound the allocation by what the record can actually hold.
            if name_len > payload.len() {
                return Err(invalid("record: series name longer than the record"));
            }
            let mut name_bytes = vec![0u8; name_len];
            io::Read::read_exact(r, &mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| invalid("record: series name is not UTF-8"))?;
            let values = get_values(r, payload.len())?;
            Ok(WalRecord::NewSeries {
                expect_idx,
                name,
                values,
            })
        }
        other => Err(invalid(&format!("record: unknown kind tag {other}"))),
    }
}

fn get_values(r: &mut io::Cursor<&[u8]>, payload_len: usize) -> io::Result<Vec<f64>> {
    let n = as_usize(get_u64(r)?)?;
    // Each value is 8 bytes; a count beyond the record is damage, and this
    // check keeps a hostile count from driving a huge allocation.
    if n > payload_len / 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "WAL record: value count exceeds the record size",
        ));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_f64(r)?);
    }
    Ok(values)
}

/// Widening/checked casts so the on-disk u64 fields round-trip exactly.
fn as_u64(v: usize) -> io::Result<u64> {
    u64::try_from(v).map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "length overflow"))
}

fn as_usize(v: u64) -> io::Result<usize> {
    usize::try_from(v).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "WAL record field exceeds this platform's address range",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, SearchOptions};
    use tsss_data::{MarketConfig, MarketSimulator};

    fn market(seed: u64) -> Vec<Series> {
        MarketSimulator::new(MarketConfig::small(4, 60, seed)).generate()
    }

    fn temp_engine_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsss-durable-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("engine.tsss")
    }

    fn durable(tag: &str, seed: u64) -> (DurableEngine, Vec<Series>, PathBuf) {
        let data = market(seed);
        let engine = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
        let path = temp_engine_path(tag);
        engine.save_to_path(&path).unwrap();
        std::fs::remove_file(DurableEngine::wal_path_for(&path)).ok();
        (DurableEngine::open(&path).unwrap(), data, path)
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(DurableEngine::wal_path_for(path)).ok();
    }

    #[test]
    fn acked_appends_survive_a_kill_without_a_save() {
        let (mut de, data, path) = durable("ack", 11);
        let fresh: Vec<f64> = data[0].values.iter().map(|v| v * 1.5 + 2.0).collect();
        de.append_values(0, &fresh[..20]).unwrap();
        de.append_series(&Series::new("live", fresh.clone()))
            .unwrap();
        assert_eq!(de.wal_tail_records(), 2);
        let expect = de
            .engine()
            .search(&fresh[2..18], 1e-6, SearchOptions::default())
            .unwrap();
        drop(de); // the "kill": nothing saved since the appends
        let re = DurableEngine::open(&path).unwrap();
        assert_eq!(re.replay_report().applied, 2);
        assert_eq!(re.replay_report().skipped, 0);
        let got = re
            .engine()
            .search(&fresh[2..18], 1e-6, SearchOptions::default())
            .unwrap();
        assert_eq!(got.matches, expect.matches, "replay must be bit-identical");
        cleanup(&path);
    }

    #[test]
    fn save_truncates_the_log_and_replay_skips_covered_records() {
        let (mut de, data, path) = durable("skip", 12);
        de.append_values(1, &data[1].values[..10]).unwrap();
        de.save().unwrap();
        assert_eq!(de.wal_tail_records(), 0, "save empties the log");
        // Crash between save and truncate: both the save and the log exist.
        de.append_values(2, &[1.0, 2.0, 3.0]).unwrap();
        de.set_crash_point(Some(CrashPoint::PostSavePreTruncate));
        let err = de.save().unwrap_err();
        assert!(matches!(err, EngineError::Wal { .. }), "{err:?}");
        drop(de);
        let re = DurableEngine::open(&path).unwrap();
        let r = re.replay_report();
        assert_eq!(r.tail_records, 1);
        assert_eq!(r.applied, 0, "the save covered the record");
        assert_eq!(r.skipped, 1, "duplicate replay must skip, not double-apply");
        let expected_len = data[2].len() + 3;
        assert_eq!(re.engine().series_len(2).unwrap(), expected_len);
        cleanup(&path);
    }

    #[test]
    fn volatile_engine_accepts_appends_but_reports_not_durable() {
        let data = market(13);
        let engine = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
        let mut de = DurableEngine::new_volatile(engine);
        assert!(!de.is_durable());
        de.append_values(0, &[5.0; 4]).unwrap();
        assert_eq!(de.wal_tail_records(), 0);
        assert!(matches!(de.save(), Err(EngineError::Wal { .. })));
    }

    #[test]
    fn wal_failure_on_append_leaves_the_engine_unmutated() {
        let (mut de, _, path) = durable("unmut", 14);
        let len_before = de.engine().series_len(0).unwrap();
        let windows_before = de.engine().num_windows();
        de.set_crash_point(Some(CrashPoint::PostWalPreIndex));
        let err = de.append_values(0, &[9.0; 8]).unwrap_err();
        assert!(matches!(err, EngineError::Wal { .. }), "{err:?}");
        assert_eq!(de.engine().series_len(0).unwrap(), len_before);
        assert_eq!(de.engine().num_windows(), windows_before);
        // The record *is* durable (fsynced before the kill), so reopen
        // replays it — acknowledged-to-disk beats the lost reply.
        drop(de);
        let re = DurableEngine::open(&path).unwrap();
        assert_eq!(re.replay_report().applied, 1);
        assert_eq!(re.engine().series_len(0).unwrap(), len_before + 8);
        cleanup(&path);
    }

    #[test]
    fn invalid_appends_are_rejected_before_touching_the_log() {
        let (mut de, _, path) = durable("prevalidate", 15);
        assert!(matches!(
            de.append_values(99, &[1.0]),
            Err(EngineError::UnknownSeries(99))
        ));
        assert_eq!(de.wal_tail_records(), 0, "no record for a doomed append");
        cleanup(&path);
    }

    #[test]
    fn health_reports_the_wal_tail() {
        let (mut de, _, path) = durable("health", 16);
        assert_eq!(de.health().wal_tail_records, 0);
        de.append_values(0, &[1.0, 2.0]).unwrap();
        de.append_values(0, &[3.0]).unwrap();
        let h = de.health();
        assert_eq!(h.wal_tail_records, 2);
        assert_eq!(h.wal_replayed, 0);
        drop(de);
        let re = DurableEngine::open(&path).unwrap();
        let h = re.health();
        assert_eq!(h.wal_tail_records, 2, "replay keeps the log until a save");
        assert_eq!(h.wal_replayed, 2);
        cleanup(&path);
    }

    #[test]
    fn record_codec_rejects_hostile_shapes() {
        // Unknown kind tag.
        assert!(decode_record(&[7]).is_err());
        // Value count far beyond the record's actual size.
        let mut p = Vec::new();
        put_u8(&mut p, KIND_APPEND).unwrap();
        put_u64(&mut p, 0).unwrap();
        put_u64(&mut p, 0).unwrap();
        put_u64(&mut p, u64::MAX).unwrap();
        assert!(decode_record(&p).is_err());
        // Name length beyond the record.
        let mut p = Vec::new();
        put_u8(&mut p, KIND_NEW_SERIES).unwrap();
        put_u64(&mut p, 0).unwrap();
        put_u64(&mut p, u64::MAX).unwrap();
        assert!(decode_record(&p).is_err());
        // A good record round-trips.
        let p = encode_new_series(3, "acme", &[1.5, -2.5]).unwrap();
        match decode_record(&p).unwrap() {
            WalRecord::NewSeries {
                expect_idx,
                name,
                values,
            } => {
                assert_eq!(expect_idx, 3);
                assert_eq!(name, "acme");
                assert_eq!(values, vec![1.5, -2.5]);
            }
            WalRecord::Append { .. } => panic!("wrong kind decoded"),
        }
    }
}
