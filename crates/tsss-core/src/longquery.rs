//! Queries longer than the indexed window (paper §7, first remark).
//!
//! The paper adopts the ST-index method \[2\]: partition the long query into
//! length-`n` sub-queries, search each independently, and combine. For
//! scale-shift similarity the combination is sound because squared distance
//! decomposes over disjoint index ranges: if `‖F_{a,b}(Q) − S'‖ ≤ ε` then
//! every aligned piece satisfies `‖F_{a,b}(Q_i) − S'_i‖ ≤ ε`, and each
//! piece's *optimal* per-piece transform does at least as well as the global
//! `(a, b)`. Hence searching each piece with the full ε and intersecting the
//! (alignment-shifted) candidate sets never drops a true match — Theorem 1's
//! no-false-dismissal guarantee survives the decomposition. False alarms are
//! removed by verifying the full-length window.
//!
//! Requires stride 1 (every offset indexed), which is the paper's setting.

use std::collections::BTreeSet;
use std::time::Instant;

use tsss_geometry::scale_shift::optimal_scale_shift;

use crate::config::SearchOptions;
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::id::SubseqId;
use crate::result::{SearchResult, SearchStats, SubsequenceMatch};

impl SearchEngine {
    /// Finds every data subsequence of length `query.len()` similar to the
    /// (long) query within ε. The query must be at least one window long;
    /// the engine must have been built with stride 1.
    ///
    /// # Errors
    /// [`EngineError::QueryTooShort`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    ///
    /// # Panics
    /// Panics when the engine's stride is not 1 (the decomposition needs
    /// every piece offset indexed).
    pub fn search_long(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let n = self.config().window_len;
        assert_eq!(
            self.config().stride,
            1,
            "long-query search requires stride 1"
        );
        if query.len() < n {
            return Err(EngineError::QueryTooShort {
                min: n,
                got: query.len(),
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(EngineError::InvalidEpsilon(epsilon));
        }
        let t0 = Instant::now();
        let index_stats = self.index_stats();
        let data_stats = self.data_stats();
        let index_scope = index_stats.local_scope();
        let data_scope = data_stats.local_scope();
        let total_len = query.len();
        let piece_offsets: Vec<usize> = (0..=total_len - n).step_by(n).collect();

        // Piece 0 establishes the candidate starts; later pieces prune them.
        let mut stats = SearchStats::default();
        let mut candidates: Option<BTreeSet<SubseqId>> = None;
        for (pi, &poff) in piece_offsets.iter().enumerate() {
            let piece = &query[poff..poff + n];
            let line = self.query_line(piece);
            let outcome = self.tree().line_query(&line, epsilon, opts.method)?;
            stats.index.internal_visited += outcome.stats.internal_visited;
            stats.index.leaves_visited += outcome.stats.leaves_visited;
            stats.index.candidates_checked += outcome.stats.candidates_checked;
            stats.index.penetration_tests += outcome.stats.penetration_tests;
            stats.index.sphere.merge(&outcome.stats.sphere);

            let mut starts = BTreeSet::new();
            for m in outcome.matches {
                let hit = SubseqId::unpack(m.id);
                // The whole match would start `poff` values earlier.
                if (hit.offset as usize) < poff {
                    continue;
                }
                starts.insert(SubseqId {
                    series: hit.series,
                    offset: hit.offset - poff as u32,
                });
            }
            candidates = Some(match candidates {
                None => starts,
                Some(prev) => {
                    debug_assert!(pi > 0);
                    prev.intersection(&starts).copied().collect()
                }
            });
            if candidates.as_ref().map(BTreeSet::is_empty).unwrap_or(false) {
                break;
            }
        }

        // Verification on the full-length raw windows.
        let mut matches = Vec::new();
        for id in candidates.unwrap_or_default() {
            let series_len = self.series_len(id.series as usize)?;
            if id.offset as usize + total_len > series_len {
                continue; // the long window runs off the series
            }
            stats.candidates += 1;
            let raw = self.fetch_raw(id, total_len)?;
            let fit = optimal_scale_shift(query, &raw).expect("lengths match");
            if fit.distance > epsilon {
                stats.false_alarms += 1;
                continue;
            }
            if !opts.cost.accepts(fit.transform.a, fit.transform.b) {
                stats.cost_rejected += 1;
                continue;
            }
            stats.verified += 1;
            matches.push(SubsequenceMatch {
                id,
                transform: fit.transform,
                distance: fit.distance,
            });
        }
        matches.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        stats.index_pages = index_scope.finish().total_accesses();
        stats.data_pages = data_scope.finish().total_accesses();
        stats.elapsed = t0.elapsed();
        Ok(SearchResult { matches, stats })
    }

    /// Brute-force oracle for long queries (test/verification facility):
    /// scans every possible start position.
    ///
    /// # Errors
    /// Same validation as [`SearchEngine::search_long`].
    pub fn sequential_search_long(
        &self,
        query: &[f64],
        epsilon: f64,
    ) -> Result<SearchResult, EngineError> {
        let n = self.config().window_len;
        if query.len() < n {
            return Err(EngineError::QueryTooShort {
                min: n,
                got: query.len(),
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(EngineError::InvalidEpsilon(epsilon));
        }
        let t0 = Instant::now();
        let total_len = query.len();
        let all = self.store().read_everything()?;
        let mut stats = SearchStats::default();
        let mut matches = Vec::new();
        for (si, values) in all.iter().enumerate() {
            if values.len() < total_len {
                continue;
            }
            for off in 0..=values.len() - total_len {
                stats.candidates += 1;
                let fit =
                    optimal_scale_shift(query, &values[off..off + total_len]).expect("lengths");
                if fit.distance <= epsilon {
                    stats.verified += 1;
                    matches.push(SubsequenceMatch {
                        id: SubseqId::try_new(si, off)?,
                        transform: fit.transform,
                        distance: fit.distance,
                    });
                } else {
                    stats.false_alarms += 1;
                }
            }
        }
        matches.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        stats.elapsed = t0.elapsed();
        Ok(SearchResult { matches, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator, Series};
    use tsss_geometry::scale_shift::ScaleShift;

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 90, 2024)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    #[test]
    fn long_query_finds_its_exact_source() {
        let (e, data) = engine();
        let q = data[1].window(10, 40).unwrap().to_vec(); // 2.5 windows
        let res = e.search_long(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series == 1 && m.id.offset == 10));
    }

    #[test]
    fn long_query_sees_through_disguises() {
        let (e, data) = engine();
        let src = data[3].window(0, 48).unwrap();
        let q = ScaleShift { a: 3.0, b: -12.0 }.apply(src);
        let res = e.search_long(&q, 1e-5, SearchOptions::default()).unwrap();
        let hit = res
            .matches
            .iter()
            .find(|m| m.id.series == 3 && m.id.offset == 0)
            .expect("disguised long query must recover its source");
        assert!((hit.transform.a - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn long_search_matches_brute_force_exactly() {
        let (e, data) = engine();
        let q = data[0].window(20, 35).unwrap().to_vec(); // non-multiple length
        for eps in [0.1, 2.0, 10.0] {
            let fast = e.search_long(&q, eps, SearchOptions::default()).unwrap();
            let brute = e.sequential_search_long(&q, eps).unwrap();
            assert_eq!(fast.id_set(), brute.id_set(), "eps {eps}");
        }
    }

    #[test]
    fn exact_window_length_degenerates_to_plain_search() {
        let (e, data) = engine();
        let q = data[2].window(7, 16).unwrap().to_vec();
        let long = e.search_long(&q, 3.0, SearchOptions::default()).unwrap();
        let plain = e.search(&q, 3.0, SearchOptions::default()).unwrap();
        assert_eq!(long.id_set(), plain.id_set());
    }

    #[test]
    fn too_short_long_query_is_an_error() {
        let (e, _) = engine();
        assert!(matches!(
            e.search_long(&[0.0; 10], 1.0, SearchOptions::default()),
            Err(EngineError::QueryTooShort { min: 16, got: 10 })
        ));
    }

    #[test]
    fn candidate_set_shrinks_with_more_pieces() {
        // A long query at high eps still verifies; the piece intersection
        // must only ever reduce false alarms, never lose matches (checked
        // against brute force in long_search_matches_brute_force_exactly).
        let (e, data) = engine();
        let q = data[1].window(0, 64).unwrap().to_vec(); // 4 pieces
        let res = e.search_long(&q, 5.0, SearchOptions::default()).unwrap();
        let brute = e.sequential_search_long(&q, 5.0).unwrap();
        assert_eq!(res.id_set(), brute.id_set());
    }
}
