//! Queries longer than the indexed window (paper §7, first remark).
//!
//! The paper adopts the ST-index method \[2\]: partition the long query into
//! length-`n` sub-queries, search each independently, and combine. For
//! scale-shift similarity the combination is sound because squared distance
//! decomposes over disjoint index ranges: if `‖F_{a,b}(Q) − S'‖ ≤ ε` then
//! every aligned piece satisfies `‖F_{a,b}(Q_i) − S'_i‖ ≤ ε`, and each
//! piece's *optimal* per-piece transform does at least as well as the global
//! `(a, b)`. Hence searching each piece with the full ε and intersecting the
//! (alignment-shifted) candidate sets never drops a true match — Theorem 1's
//! no-false-dismissal guarantee survives the decomposition. False alarms are
//! removed by verifying the full-length window.
//!
//! Requires stride 1 (every offset indexed), which is the paper's setting.

use crate::config::SearchOptions;
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::pipeline::{PieceStitchSource, QueryPlan, SeqScanLongSource};
use crate::result::SearchResult;

impl SearchEngine {
    /// Finds every data subsequence of length `query.len()` similar to the
    /// (long) query within ε. The query must be at least one window long;
    /// the engine must have been built with stride 1.
    ///
    /// A thin composition over the staged pipeline: a long plan (verified
    /// at full query length) with [`PieceStitchSource`] generating
    /// candidates by per-piece index probes and intersection.
    ///
    /// # Errors
    /// [`EngineError::QueryTooShort`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    ///
    /// # Panics
    /// Panics when the engine's stride is not 1 (the decomposition needs
    /// every piece offset indexed).
    pub fn search_long(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let plan = QueryPlan::long(self, query, epsilon, opts)?;
        self.run_pipeline(&plan, &PieceStitchSource)
    }

    /// Brute-force oracle for long queries (test/verification facility):
    /// scans every possible start position, regardless of the stride grid.
    ///
    /// # Errors
    /// Same validation as [`SearchEngine::search_long`].
    pub fn sequential_search_long(
        &self,
        query: &[f64],
        epsilon: f64,
    ) -> Result<SearchResult, EngineError> {
        let plan = QueryPlan::long(self, query, epsilon, SearchOptions::default())?;
        self.run_pipeline(&plan, &SeqScanLongSource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator, Series};
    use tsss_geometry::scale_shift::ScaleShift;

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 90, 2024)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    #[test]
    fn long_query_finds_its_exact_source() {
        let (e, data) = engine();
        let q = data[1].window(10, 40).unwrap().to_vec(); // 2.5 windows
        let res = e.search_long(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series == 1 && m.id.offset == 10));
    }

    #[test]
    fn long_query_sees_through_disguises() {
        let (e, data) = engine();
        let src = data[3].window(0, 48).unwrap();
        let q = ScaleShift { a: 3.0, b: -12.0 }.apply(src);
        let res = e.search_long(&q, 1e-5, SearchOptions::default()).unwrap();
        let hit = res
            .matches
            .iter()
            .find(|m| m.id.series == 3 && m.id.offset == 0)
            .expect("disguised long query must recover its source");
        assert!((hit.transform.a - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn long_search_matches_brute_force_exactly() {
        let (e, data) = engine();
        let q = data[0].window(20, 35).unwrap().to_vec(); // non-multiple length
        for eps in [0.1, 2.0, 10.0] {
            let fast = e.search_long(&q, eps, SearchOptions::default()).unwrap();
            let brute = e.sequential_search_long(&q, eps).unwrap();
            assert_eq!(fast.id_set(), brute.id_set(), "eps {eps}");
        }
    }

    #[test]
    fn exact_window_length_degenerates_to_plain_search() {
        let (e, data) = engine();
        let q = data[2].window(7, 16).unwrap().to_vec();
        let long = e.search_long(&q, 3.0, SearchOptions::default()).unwrap();
        let plain = e.search(&q, 3.0, SearchOptions::default()).unwrap();
        assert_eq!(long.id_set(), plain.id_set());
    }

    #[test]
    fn too_short_long_query_is_an_error() {
        let (e, _) = engine();
        assert!(matches!(
            e.search_long(&[0.0; 10], 1.0, SearchOptions::default()),
            Err(EngineError::QueryTooShort { min: 16, got: 10 })
        ));
    }

    #[test]
    fn candidate_set_shrinks_with_more_pieces() {
        // A long query at high eps still verifies; the piece intersection
        // must only ever reduce false alarms, never lose matches (checked
        // against brute force in long_search_matches_brute_force_exactly).
        let (e, data) = engine();
        let q = data[1].window(0, 64).unwrap().to_vec(); // 4 pieces
        let res = e.search_long(&q, 5.0, SearchOptions::default()).unwrap();
        let brute = e.sequential_search_long(&q, 5.0).unwrap();
        assert_eq!(res.id_set(), brute.id_set());
    }
}
