//! Compact identifiers for indexed subsequences.
//!
//! Every window is identified by its source series and offset (the paper's
//! leaf entry `⟨ID_i, S'_i⟩`). Both halves are packed into the `u64` record
//! id the R-tree stores, avoiding a lookup table.

/// Identifier of a data subsequence: `(series index, window offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubseqId {
    /// Index of the series within the engine's data set.
    pub series: u32,
    /// Offset of the window's first value within that series.
    pub offset: u32,
}

impl SubseqId {
    /// Builds an identifier from `usize` coordinates, rejecting values that
    /// do not fit the packed `u32` halves instead of panicking.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`](crate::EngineError::TooLarge) when either
    /// coordinate exceeds `u32::MAX`.
    pub fn try_new(series: usize, offset: usize) -> Result<Self, crate::EngineError> {
        let series = u32::try_from(series).map_err(|_| crate::EngineError::TooLarge {
            what: "series index",
            value: series,
        })?;
        let offset = u32::try_from(offset).map_err(|_| crate::EngineError::TooLarge {
            what: "window offset",
            value: offset,
        })?;
        Ok(Self { series, offset })
    }

    /// Packs the identifier into the R-tree's `u64` record id.
    pub fn pack(self) -> u64 {
        (u64::from(self.series) << 32) | u64::from(self.offset)
    }

    /// Unpacks a record id produced by [`SubseqId::pack`].
    // Truncation is the decode: each half of the packed id is a u32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn unpack(raw: u64) -> Self {
        Self {
            // analyze::allow(cast): the cast is the decode — the high 32-bit half of the packed id; `raw >> 32` always fits u32.
            series: (raw >> 32) as u32,
            // analyze::allow(cast): the cast is the decode — truncating to the low 32-bit half is intentional.
            offset: raw as u32,
        }
    }

    /// The series index as a `usize`, for indexing into per-series
    /// collections. The single sanctioned widening spot — use this instead
    /// of casting `.series` at call sites.
    pub fn series_idx(self) -> usize {
        // analyze::allow(cast): u32 → usize widening is lossless on every supported (≥ 32-bit) target.
        self.series as usize
    }

    /// The window offset as a `usize`, for slicing series values. See
    /// [`SubseqId::series_idx`].
    pub fn offset_idx(self) -> usize {
        // analyze::allow(cast): u32 → usize widening is lossless on every supported (≥ 32-bit) target.
        self.offset as usize
    }
}

impl std::fmt::Display for SubseqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "series {} @ {}", self.series, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for id in [
            SubseqId {
                series: 0,
                offset: 0,
            },
            SubseqId {
                series: 1,
                offset: 2,
            },
            SubseqId {
                series: u32::MAX,
                offset: u32::MAX,
            },
            SubseqId {
                series: 999,
                offset: 648,
            },
        ] {
            assert_eq!(SubseqId::unpack(id.pack()), id);
        }
    }

    #[test]
    fn packing_is_injective_on_a_grid() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..50u32 {
            for o in 0..50u32 {
                assert!(seen.insert(
                    SubseqId {
                        series: s,
                        offset: o
                    }
                    .pack()
                ));
            }
        }
    }

    #[test]
    fn try_new_accepts_the_u32_range_and_rejects_beyond() {
        assert_eq!(
            SubseqId::try_new(7, 42).unwrap(),
            SubseqId {
                series: 7,
                offset: 42
            }
        );
        assert_eq!(
            SubseqId::try_new(u32::MAX as usize, u32::MAX as usize).unwrap(),
            SubseqId {
                series: u32::MAX,
                offset: u32::MAX
            }
        );
        // Regression: oversized coordinates are errors, not panics.
        assert_eq!(
            SubseqId::try_new(u32::MAX as usize + 1, 0).unwrap_err(),
            crate::EngineError::TooLarge {
                what: "series index",
                value: u32::MAX as usize + 1,
            }
        );
        assert_eq!(
            SubseqId::try_new(0, u32::MAX as usize + 5).unwrap_err(),
            crate::EngineError::TooLarge {
                what: "window offset",
                value: u32::MAX as usize + 5,
            }
        );
    }

    #[test]
    fn display_is_readable() {
        let id = SubseqId {
            series: 7,
            offset: 42,
        };
        assert_eq!(id.to_string(), "series 7 @ 42");
    }
}
