//! The scale-shift similarity search engine of *Fast Time-Series Searching
//! with Scaling and Shifting* (Chu & Wong, PODS '99).
//!
//! Given a database of time series and a query sequence `Q`, the engine
//! finds every data subsequence `S'` for which some transformation
//! `F_{a,b}(Q) = a·Q + b·N` lands within ε of `S'` (Definition 1), and
//! reports the optimal `(a, b)` per match. The pipeline is the paper's §6
//! algorithm end to end:
//!
//! 1. **Pre-processing** ([`engine::SearchEngine::build`]): slide a length-n
//!    window over every series, SE-transform each window (mean removal,
//!    §5.1), reduce to `2·f_c` DFT features (§7, \[1, 2\]), and index the
//!    feature points in a page-based R*-tree. Raw series live in a paged
//!    data file ([`datafile`]) so verification I/O is accounted exactly.
//! 2. **Searching** ([`engine::SearchEngine::search`]): map the query onto
//!    its SE-line, traverse the tree pruning by ε-MBR penetration
//!    (Theorem 3), and collect candidate subsequences.
//! 3. **Post-processing**: fetch each candidate's raw window, compute the
//!    optimal `(a, b)` and exact distance (§5.2), drop false alarms, and
//!    apply the user's transformation-cost limits.
//!
//! Baselines and extensions:
//! * [`seqscan`] — the paper's experiment set 1: sequential scan computing
//!   `LLD` for every window,
//! * [`nn`] — exact k-nearest-subsequence search (Corollary 1, which the
//!   paper defers),
//! * [`longquery`] — queries longer than the indexed window, via the
//!   sub-query decomposition of \[2\] (§7, first remark),
//! * [`normalized`] — a z-normalisation comparator relating the paper's
//!   model to the later-standard normalised Euclidean distance,
//! * [`sharded`] — scatter-gather over N independent engine shards with
//!   per-shard fault isolation and partial-result degradation.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
// Belt-and-braces next to the analyzer's R1: clippy flags stray unwraps in
// non-test code too, so regressions fail CI twice.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod config;
pub mod datafile;
pub mod durable;
pub mod engine;
pub mod error;
pub mod id;
pub mod longquery;
pub mod nn;
pub mod normalized;
pub mod persist;
pub mod pipeline;
pub mod recovery;
pub mod result;
pub mod seqscan;
pub mod sharded;
pub mod window;

pub use config::{
    BuildMethod, CostLimit, Deadline, DegradationPolicy, EngineConfig, SearchOptions,
};
pub use durable::{DurableEngine, WalReplayReport};
pub use engine::SearchEngine;
pub use error::EngineError;
pub use id::SubseqId;
pub use pipeline::{
    CandidateSource, Candidates, DeadlineMeter, IndexProbe, PieceStitchSource, QueryPlan,
    RawAccess, SeqScanLongSource, SeqScanSource, Verifier, VerifyModel,
};
pub use recovery::{BreakerState, HealthReport, RepairReport};
pub use result::{SearchResult, SearchStats, SubsequenceMatch};
pub use sharded::ShardedEngine;
