//! Engine persistence: save a built [`SearchEngine`] — configuration, raw
//! data file, series catalogue and R*-tree index — to a single file, and
//! load it back ready to query.
//!
//! Pre-processing (§6) is the expensive step at scale (slide, SE-transform,
//! FFT, index 523 000 windows); persisting the result lets a deployment
//! build once and serve many sessions, and it is what any adopter of the
//! library would expect.

use std::io::{self, Read, Write};
use std::path::Path;

use tsss_index::RTree;
use tsss_storage::codec::*;

use crate::config::{BuildMethod, EngineConfig};
use crate::datafile::PagedSeriesStore;
use crate::engine::SearchEngine;

/// Magic prefix of the persisted engine format.
const MAGIC_PREFIX: &[u8; 6] = b"TSSSEN";
/// Current format version (`TSSSEN02`): versioned magic + CRC-checked
/// configuration block, followed by the (self-checking) data file and index
/// streams.
const VERSION: u8 = 2;
/// Upper bound on the configuration block; a real one is under 200 bytes.
const MAX_META_BYTES: usize = 1 << 16;

fn build_tag(b: BuildMethod) -> u8 {
    match b {
        BuildMethod::BulkStr => 0,
        BuildMethod::BulkPolar => 1,
        BuildMethod::Insert => 2,
    }
}

fn build_from_tag(t: u8) -> io::Result<BuildMethod> {
    Ok(match t {
        0 => BuildMethod::BulkStr,
        1 => BuildMethod::BulkPolar,
        2 => BuildMethod::Insert,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown build method tag {other}"),
            ))
        }
    })
}

fn split_tag(s: tsss_index::SplitPolicy) -> u8 {
    match s {
        tsss_index::SplitPolicy::RStar => 0,
        tsss_index::SplitPolicy::GuttmanQuadratic => 1,
        tsss_index::SplitPolicy::GuttmanLinear => 2,
    }
}

fn split_from_tag(t: u8) -> io::Result<tsss_index::SplitPolicy> {
    Ok(match t {
        0 => tsss_index::SplitPolicy::RStar,
        1 => tsss_index::SplitPolicy::GuttmanQuadratic,
        2 => tsss_index::SplitPolicy::GuttmanLinear,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown split policy tag {other}"),
            ))
        }
    })
}

fn write_engine_config<W: Write>(w: &mut W, cfg: &EngineConfig) -> io::Result<()> {
    put_usize(w, cfg.window_len)?;
    put_usize(w, cfg.stride)?;
    match cfg.fc {
        Some(fc) => {
            put_u8(w, 1)?;
            put_usize(w, fc)?;
        }
        None => put_u8(w, 0)?,
    }
    put_usize(w, cfg.page_size)?;
    put_usize(w, cfg.max_entries)?;
    put_usize(w, cfg.min_entries)?;
    put_usize(w, cfg.reinsert_count)?;
    put_u8(w, split_tag(cfg.split))?;
    put_usize(w, cfg.index_buffer_frames)?;
    put_usize(w, cfg.data_buffer_frames)?;
    put_u8(w, build_tag(cfg.build))
}

fn read_engine_config<R: Read>(r: &mut R) -> io::Result<EngineConfig> {
    let window_len = get_usize(r)?;
    let stride = get_usize(r)?;
    let fc = if get_u8(r)? == 1 {
        Some(get_usize(r)?)
    } else {
        None
    };
    Ok(EngineConfig {
        window_len,
        stride,
        fc,
        page_size: get_usize(r)?,
        max_entries: get_usize(r)?,
        min_entries: get_usize(r)?,
        reinsert_count: get_usize(r)?,
        split: split_from_tag(get_u8(r)?)?,
        index_buffer_frames: get_usize(r)?,
        data_buffer_frames: get_usize(r)?,
        build: build_from_tag(get_u8(r)?)?,
    })
}

impl SearchEngine {
    /// Serialises the engine to a writer.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        put_magic(w, &versioned_magic(MAGIC_PREFIX, VERSION))?;
        let mut meta = Vec::new();
        write_engine_config(&mut meta, self.config())?;
        put_f64(&mut meta, self.max_se_norm())?;
        put_checked_block(w, &meta)?;
        self.store().write_to(w)?;
        self.tree().save_to(w)
    }

    /// Loads an engine previously written by [`SearchEngine::save_to`].
    ///
    /// The configuration block is CRC-checked and re-validated (a hostile or
    /// rotten config must not panic downstream arithmetic), and the data and
    /// index streams carry their own checksums, so any corruption anywhere
    /// in the stream surfaces here as `InvalidData`.
    ///
    /// # Errors
    /// `InvalidData` on malformed input; propagates I/O errors.
    pub fn load_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        match Self::load_from_inner(r, false)? {
            LoadOutcome::Intact(e) => Ok(e),
            // Defensive: strict mode asks the inner loader not to repair, so
            // this arm is dead; report it as corruption rather than aborting.
            LoadOutcome::Repaired(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "strict load unexpectedly repaired the index stream",
            )),
        }
    }

    /// Loads an engine, tolerating a corrupt or truncated **index stream**:
    /// the format places the index last, so when the versioned magic,
    /// configuration block and data stream all parse but the index does
    /// not, the data file is still the complete source of truth and the
    /// index is rebuilt from it (exactly [`SearchEngine::repair`]). Damage
    /// to the magic, configuration or data stream still fails — repair can
    /// reconstruct the index, never the data.
    ///
    /// Returns whether the index loaded intact or was rebuilt, so callers
    /// (the `tsss repair` subcommand) can report what happened.
    ///
    /// # Errors
    /// `InvalidData` when the configuration or data stream is damaged;
    /// propagates I/O errors.
    pub fn load_repairing<R: Read + ?Sized>(r: &mut R) -> io::Result<(Self, bool)> {
        match Self::load_from_inner(r, true)? {
            LoadOutcome::Intact(e) => Ok((e, false)),
            LoadOutcome::Repaired(e) => Ok((e, true)),
        }
    }

    fn load_from_inner<R: Read + ?Sized>(
        r: &mut R,
        tolerate_index: bool,
    ) -> io::Result<LoadOutcome> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        expect_versioned_magic(r, MAGIC_PREFIX, VERSION)?;
        let meta = get_checked_block(r, MAX_META_BYTES)?;
        let m = &mut io::Cursor::new(meta);
        let cfg = read_engine_config(m)?;
        cfg.try_validate().map_err(invalid)?;
        let max_se_norm = get_f64(m)?;
        if !max_se_norm.is_finite() || max_se_norm < 0.0 {
            return Err(invalid(format!("implausible max SE-norm {max_se_norm}")));
        }
        let store = PagedSeriesStore::read_from(r, cfg.data_buffer_frames)?;
        let tree_result = RTree::load_from(r).and_then(|tree| {
            if tree.config().dim != cfg.feature_dim() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "index dimension disagrees with engine configuration",
                ));
            }
            Ok(tree)
        });
        match tree_result {
            Ok(tree) => Ok(LoadOutcome::Intact(SearchEngine::from_parts(
                cfg,
                tree,
                store,
                max_se_norm,
            ))),
            Err(e) if tolerate_index && e.kind() == io::ErrorKind::InvalidData => {
                // The data stream is intact; rebuild the index from it.
                let placeholder = RTree::new(cfg.tree_config())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut engine = SearchEngine::from_parts(cfg, placeholder, store, max_se_norm);
                engine
                    .repair()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                Ok(LoadOutcome::Repaired(engine))
            }
            Err(e) => Err(e),
        }
    }

    /// Saves the engine to a filesystem path **atomically**: the stream is
    /// written to a temporary sibling, synced, and renamed over `path` only
    /// on success — a crash or failure mid-write leaves any previous engine
    /// file intact.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        tsss_storage::atomic_write(path, |w| self.save_to(w))
    }

    /// Loads an engine from a filesystem path (buffered).
    ///
    /// # Errors
    /// Propagates I/O and format errors.
    pub fn load_from_path(path: &Path) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut r)
    }

    /// [`SearchEngine::load_repairing`] from a filesystem path (buffered).
    ///
    /// # Errors
    /// As [`SearchEngine::load_repairing`].
    pub fn load_repairing_from_path(path: &Path) -> io::Result<(Self, bool)> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_repairing(&mut r)
    }
}

/// Outcome of a tolerant load: the index stream parsed, or it was rebuilt
/// from the data stream.
enum LoadOutcome {
    Intact(SearchEngine),
    Repaired(SearchEngine),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchOptions;
    use tsss_data::{MarketConfig, MarketSimulator, Series};

    fn build_engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(6, 70, 88)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    fn roundtrip(e: &SearchEngine) -> SearchEngine {
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let (e, _) = build_engine();
        let mut l = roundtrip(&e);
        assert_eq!(l.num_series(), e.num_series());
        assert_eq!(l.num_windows(), e.num_windows());
        assert_eq!(l.data_page_count(), e.data_page_count());
        assert_eq!(l.config(), e.config());
        l.tree_mut().check_invariants().unwrap();
    }

    #[test]
    fn loaded_engine_answers_queries_identically() {
        let (e, data) = build_engine();
        let l = roundtrip(&e);
        for (series, offset) in [(0usize, 3usize), (3, 20), (5, 40)] {
            let q = data[series].window(offset, 16).unwrap().to_vec();
            for eps in [0.0, 1.0, 6.0] {
                let a = e.search(&q, eps, SearchOptions::default()).unwrap();
                let b = l.search(&q, eps, SearchOptions::default()).unwrap();
                assert_eq!(a.id_set(), b.id_set(), "eps {eps}");
                assert_eq!(a.matches, b.matches);
            }
        }
    }

    #[test]
    fn loaded_engine_supports_dynamic_updates() {
        let (e, data) = build_engine();
        let mut l = roundtrip(&e);
        let novel = Series::new("NEW", data[0].values.iter().map(|v| v * 2.0).collect());
        let si = l.append_series(&novel).unwrap();
        let q = novel.window(10, 16).unwrap().to_vec();
        let res = l.search(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series as usize == si && m.id.offset == 10));
        l.tree_mut().check_invariants().unwrap();
    }

    #[test]
    fn save_load_via_filesystem() {
        let (e, data) = build_engine();
        let dir = std::env::temp_dir().join("tsss-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tsss");
        e.save_to_path(&path).unwrap();
        let l = SearchEngine::load_from_path(&path).unwrap();
        let q = data[2].window(5, 16).unwrap().to_vec();
        assert_eq!(
            e.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set(),
            l.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let (e, _) = build_engine();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        buf[5] ^= 0xFF;
        assert!(SearchEngine::load_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn zero_length_and_wrong_version_inputs_are_rejected() {
        assert!(SearchEngine::load_from(&mut std::io::Cursor::new(Vec::<u8>::new())).is_err());
        let (e, _) = build_engine();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        buf[6] = b'0';
        buf[7] = b'1';
        let err = SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn failed_save_leaves_the_previous_file_intact() {
        let (e, data) = build_engine();
        let dir = std::env::temp_dir().join(format!("tsss-engine-crash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tsss");
        e.save_to_path(&path).unwrap();
        // A save that dies mid-stream (simulated torn write) must not
        // clobber the good file — atomic_write renames only on success.
        let mut stream = Vec::new();
        e.save_to(&mut stream).unwrap();
        let err = tsss_storage::atomic_write(&path, |w| {
            w.write_all(&stream[..stream.len() / 2])?;
            Err(std::io::Error::other("simulated crash mid-write"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated crash"));
        assert!(
            !dir.join("engine.tsss.tmp").exists(),
            "failed temporary must be cleaned up"
        );
        let l = SearchEngine::load_from_path(&path).unwrap();
        let q = data[1].window(4, 16).unwrap().to_vec();
        assert_eq!(
            e.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set(),
            l.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let (e, _) = build_engine();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        for cut in [3usize, 20, 100, buf.len() / 2, buf.len() - 1] {
            let mut trunc = buf.clone();
            trunc.truncate(cut);
            assert!(
                SearchEngine::load_from(&mut std::io::Cursor::new(trunc)).is_err(),
                "cut at {cut} should error"
            );
        }
    }
}
