//! Engine persistence: save a built [`SearchEngine`] — configuration, raw
//! data file, series catalogue and R*-tree index — to a single file, and
//! load it back ready to query.
//!
//! Pre-processing (§6) is the expensive step at scale (slide, SE-transform,
//! FFT, index 523 000 windows); persisting the result lets a deployment
//! build once and serve many sessions, and it is what any adopter of the
//! library would expect.

use std::io::{self, Read, Write};
use std::path::Path;

use tsss_index::RTree;
use tsss_storage::codec::*;

use crate::config::{BuildMethod, EngineConfig};
use crate::datafile::PagedSeriesStore;
use crate::engine::SearchEngine;

const MAGIC: &[u8; 8] = b"TSSSEN01";

fn build_tag(b: BuildMethod) -> u8 {
    match b {
        BuildMethod::BulkStr => 0,
        BuildMethod::BulkPolar => 1,
        BuildMethod::Insert => 2,
    }
}

fn build_from_tag(t: u8) -> io::Result<BuildMethod> {
    Ok(match t {
        0 => BuildMethod::BulkStr,
        1 => BuildMethod::BulkPolar,
        2 => BuildMethod::Insert,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown build method tag {other}"),
            ))
        }
    })
}

fn split_tag(s: tsss_index::SplitPolicy) -> u8 {
    match s {
        tsss_index::SplitPolicy::RStar => 0,
        tsss_index::SplitPolicy::GuttmanQuadratic => 1,
        tsss_index::SplitPolicy::GuttmanLinear => 2,
    }
}

fn split_from_tag(t: u8) -> io::Result<tsss_index::SplitPolicy> {
    Ok(match t {
        0 => tsss_index::SplitPolicy::RStar,
        1 => tsss_index::SplitPolicy::GuttmanQuadratic,
        2 => tsss_index::SplitPolicy::GuttmanLinear,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown split policy tag {other}"),
            ))
        }
    })
}

fn write_engine_config<W: Write>(w: &mut W, cfg: &EngineConfig) -> io::Result<()> {
    put_usize(w, cfg.window_len)?;
    put_usize(w, cfg.stride)?;
    match cfg.fc {
        Some(fc) => {
            put_u8(w, 1)?;
            put_usize(w, fc)?;
        }
        None => put_u8(w, 0)?,
    }
    put_usize(w, cfg.page_size)?;
    put_usize(w, cfg.max_entries)?;
    put_usize(w, cfg.min_entries)?;
    put_usize(w, cfg.reinsert_count)?;
    put_u8(w, split_tag(cfg.split))?;
    put_usize(w, cfg.index_buffer_frames)?;
    put_usize(w, cfg.data_buffer_frames)?;
    put_u8(w, build_tag(cfg.build))
}

fn read_engine_config<R: Read>(r: &mut R) -> io::Result<EngineConfig> {
    let window_len = get_usize(r)?;
    let stride = get_usize(r)?;
    let fc = if get_u8(r)? == 1 {
        Some(get_usize(r)?)
    } else {
        None
    };
    Ok(EngineConfig {
        window_len,
        stride,
        fc,
        page_size: get_usize(r)?,
        max_entries: get_usize(r)?,
        min_entries: get_usize(r)?,
        reinsert_count: get_usize(r)?,
        split: split_from_tag(get_u8(r)?)?,
        index_buffer_frames: get_usize(r)?,
        data_buffer_frames: get_usize(r)?,
        build: build_from_tag(get_u8(r)?)?,
    })
}

impl SearchEngine {
    /// Serialises the engine to a writer.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_magic(w, MAGIC)?;
        write_engine_config(w, self.config())?;
        put_f64(w, self.max_se_norm())?;
        self.store().write_to(w)?;
        self.tree().save_to(w)
    }

    /// Loads an engine previously written by [`SearchEngine::save_to`].
    ///
    /// # Errors
    /// `InvalidData` on malformed input; propagates I/O errors.
    pub fn load_from<R: Read>(r: &mut R) -> io::Result<Self> {
        expect_magic(r, MAGIC)?;
        let cfg = read_engine_config(r)?;
        let max_se_norm = get_f64(r)?;
        let store = PagedSeriesStore::read_from(r, cfg.data_buffer_frames)?;
        let tree = RTree::load_from(r)?;
        if tree.config().dim != cfg.feature_dim() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index dimension disagrees with engine configuration",
            ));
        }
        Ok(SearchEngine::from_parts(cfg, tree, store, max_se_norm))
    }

    /// Saves the engine to a filesystem path (buffered).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.save_to(&mut w)?;
        use io::Write as _;
        w.flush()
    }

    /// Loads an engine from a filesystem path (buffered).
    ///
    /// # Errors
    /// Propagates I/O and format errors.
    pub fn load_from_path(path: &Path) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchOptions;
    use tsss_data::{MarketConfig, MarketSimulator, Series};

    fn build_engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(6, 70, 88)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    fn roundtrip(e: &SearchEngine) -> SearchEngine {
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        SearchEngine::load_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let (e, _) = build_engine();
        let mut l = roundtrip(&e);
        assert_eq!(l.num_series(), e.num_series());
        assert_eq!(l.num_windows(), e.num_windows());
        assert_eq!(l.data_page_count(), e.data_page_count());
        assert_eq!(l.config(), e.config());
        l.tree_mut().check_invariants();
    }

    #[test]
    fn loaded_engine_answers_queries_identically() {
        let (e, data) = build_engine();
        let l = roundtrip(&e);
        for (series, offset) in [(0usize, 3usize), (3, 20), (5, 40)] {
            let q = data[series].window(offset, 16).unwrap().to_vec();
            for eps in [0.0, 1.0, 6.0] {
                let a = e.search(&q, eps, SearchOptions::default()).unwrap();
                let b = l.search(&q, eps, SearchOptions::default()).unwrap();
                assert_eq!(a.id_set(), b.id_set(), "eps {eps}");
                assert_eq!(a.matches, b.matches);
            }
        }
    }

    #[test]
    fn loaded_engine_supports_dynamic_updates() {
        let (e, data) = build_engine();
        let mut l = roundtrip(&e);
        let novel = Series::new("NEW", data[0].values.iter().map(|v| v * 2.0).collect());
        let si = l.append_series(&novel).unwrap();
        let q = novel.window(10, 16).unwrap().to_vec();
        let res = l.search(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series as usize == si && m.id.offset == 10));
        l.tree_mut().check_invariants();
    }

    #[test]
    fn save_load_via_filesystem() {
        let (e, data) = build_engine();
        let dir = std::env::temp_dir().join("tsss-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tsss");
        e.save_to_path(&path).unwrap();
        let l = SearchEngine::load_from_path(&path).unwrap();
        let q = data[2].window(5, 16).unwrap().to_vec();
        assert_eq!(
            e.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set(),
            l.search(&q, 2.0, SearchOptions::default())
                .unwrap()
                .id_set()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let (e, _) = build_engine();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        buf[5] ^= 0xFF;
        assert!(SearchEngine::load_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let (e, _) = build_engine();
        let mut buf = Vec::new();
        e.save_to(&mut buf).unwrap();
        for cut in [3usize, 20, 100, buf.len() / 2, buf.len() - 1] {
            let mut trunc = buf.clone();
            trunc.truncate(cut);
            assert!(
                SearchEngine::load_from(&mut std::io::Cursor::new(trunc)).is_err(),
                "cut at {cut} should error"
            );
        }
    }
}
