//! The sequential-scan baseline (paper experiment set 1).
//!
//! Reads the whole data file once per query (≈ 1300 pages at paper scale)
//! and computes the minimum scale-shift distance of every window via the
//! closed form of §5.2 (equivalently Lemma 2's `LLD` — Theorem 1 says they
//! agree, and the property tests verify it). CPU cost is therefore constant
//! in ε — exactly the flat curve of Figure 4.

use crate::config::{CostLimit, SearchOptions};
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::pipeline::{QueryPlan, SeqScanSource};
use crate::result::SearchResult;

impl SearchEngine {
    /// Answers the query by scanning every window of every series — no
    /// index, no pruning. Produces exactly the same match set as
    /// [`SearchEngine::search`] (the recall oracle of the test suite).
    ///
    /// A thin composition over the staged pipeline: the same plan as the
    /// indexed path, with [`SeqScanSource`] — which reads the file once and
    /// nominates every window — in place of the R-tree probe. Verification
    /// and stats come from the shared [`crate::pipeline::Verifier`], so
    /// `stats.candidates` is the total window count and `index_pages` is 0.
    ///
    /// # Errors
    /// Same input validation as [`SearchEngine::search`].
    pub fn sequential_search(
        &self,
        query: &[f64],
        epsilon: f64,
        cost: CostLimit,
    ) -> Result<SearchResult, EngineError> {
        self.sequential_search_opts(
            query,
            epsilon,
            SearchOptions {
                cost,
                ..Default::default()
            },
        )
    }

    /// [`SearchEngine::sequential_search`] with full per-query options —
    /// notably a [`crate::Deadline`], which bounds the scan's verification
    /// steps exactly as on the indexed path.
    ///
    /// # Errors
    /// Same input validation as [`SearchEngine::search`], plus
    /// [`EngineError::DeadlineExceeded`] when `opts.deadline` fires.
    pub fn sequential_search_opts(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let plan = QueryPlan::exact(self, query, epsilon, opts)?;
        self.run_pipeline(&plan, &SeqScanSource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, SearchOptions};
    use tsss_data::{MarketConfig, MarketSimulator, Series};

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(5, 70, 321)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    #[test]
    fn sequential_scan_equals_indexed_search() {
        let (e, data) = engine();
        for (series, offset, eps) in [(0, 3, 0.5), (2, 20, 2.0), (4, 40, 8.0)] {
            let q = data[series].window(offset, 16).unwrap().to_vec();
            let seq = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
            let idx = e.search(&q, eps, SearchOptions::default()).unwrap();
            assert_eq!(seq.id_set(), idx.id_set(), "eps {eps}");
            // And the reported distances agree pairwise.
            for (a, b) in seq.matches.iter().zip(&idx.matches) {
                assert_eq!(a.id, b.id);
                assert!((a.distance - b.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn page_cost_is_the_whole_file_independent_of_epsilon() {
        let (e, data) = engine();
        let q = data[1].window(10, 16).unwrap().to_vec();
        let total_pages = e.data_page_count() as u64;
        for eps in [0.0, 1.0, 100.0] {
            e.reset_counters();
            let res = e.sequential_search(&q, eps, CostLimit::UNLIMITED).unwrap();
            assert_eq!(res.stats.data_pages, total_pages, "eps {eps}");
            assert_eq!(res.stats.index_pages, 0, "no index involved");
        }
    }

    #[test]
    fn candidate_count_is_the_window_count() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        let res = e.sequential_search(&q, 1.0, CostLimit::UNLIMITED).unwrap();
        assert_eq!(res.stats.candidates as usize, e.num_windows());
    }

    #[test]
    fn cost_limits_apply_to_the_scan_too() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        let all = e.sequential_search(&q, 5.0, CostLimit::UNLIMITED).unwrap();
        let restricted = e
            .sequential_search(
                &q,
                5.0,
                CostLimit {
                    a_range: Some((0.99, 1.01)),
                    b_range: Some((-0.5, 0.5)),
                },
            )
            .unwrap();
        assert!(restricted.matches.len() <= all.matches.len());
        for m in &restricted.matches {
            assert!(m.transform.a >= 0.99 && m.transform.a <= 1.01);
            assert!(m.transform.b.abs() <= 0.5);
        }
    }

    #[test]
    fn input_validation_matches_indexed_search() {
        let (e, _) = engine();
        assert!(matches!(
            e.sequential_search(&[0.0; 4], 1.0, CostLimit::UNLIMITED),
            Err(EngineError::QueryLength { .. })
        ));
        assert!(matches!(
            e.sequential_search(&[0.0; 16], -2.0, CostLimit::UNLIMITED),
            Err(EngineError::InvalidEpsilon(_))
        ));
    }
}
