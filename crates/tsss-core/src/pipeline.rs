//! The staged query pipeline: **plan → candidates → verify**.
//!
//! Every query entry point of the engine — indexed search, the
//! sequential-scan oracle, k-NN ranking, long-query prefix stitching and
//! z-normalised search — is a thin composition over the three stages in
//! this module:
//!
//! 1. **Plan** ([`QueryPlan`]): validate the query and ε once, fix the
//!    verification model and window length, and decide the degenerate
//!    constant-query case (whose SE-line collapses to the origin) exactly
//!    once, with the same test `optimal_scale_shift` applies during
//!    verification.
//! 2. **Candidates** ([`CandidateSource`]): produce the candidate window
//!    ids. Implementations: the R-tree line/radius probe
//!    ([`IndexProbe`]), the full sequential scan ([`SeqScanSource`]), and
//!    the long-query piece intersection ([`PieceStitchSource`]). The k-NN
//!    frontier drives the pipeline iteratively from
//!    [`crate::engine::SearchEngine::nearest_search`].
//! 3. **Verify** ([`Verifier`]): fetch each candidate's raw window,
//!    compute the optimal `(a, b)` fit (or the z-distance), drop false
//!    alarms, apply the user's transformation-cost limits, sort by
//!    [`SubsequenceMatch::ordering`] and assemble [`SearchStats`].
//!
//! The pipeline runner ([`crate::engine::SearchEngine::run_pipeline`])
//! owns the cross-cutting concerns exactly once: thread-local page
//! accounting scopes, wall-clock timing, and the translation of storage
//! damage into typed [`EngineError::Corrupt`] values (which
//! [`crate::engine::SearchEngine::search`] may degrade around — see
//! [`crate::DegradationPolicy`]).
//!
//! Per-stage statistics have **one meaning on every path** (asserted by
//! the differential equivalence suite):
//! `stats.candidates == stats.verified + stats.false_alarms +
//! stats.cost_rejected` — every candidate the source produced is either a
//! verified match, a false alarm of the filter, or cost-rejected.

use std::collections::BTreeSet;

use tsss_geometry::scale_shift::{is_numerically_constant, QueryFit};
use tsss_index::LineQueryStats;

use crate::config::{Deadline, SearchOptions};
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::id::SubseqId;
use crate::normalized::z_distance;
use crate::result::{SearchResult, SearchStats, SubsequenceMatch};
use crate::window::window_offsets;

// ---------------------------------------------------------------------
// Stage 1: the plan
// ---------------------------------------------------------------------

/// How the verify stage decides whether a candidate window matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VerifyModel {
    /// The paper's model: accept when the optimal scale-shift fit lands
    /// within the plan's ε (`‖F_{a,b}(Q) − S'‖₂ ≤ ε`). Matches report the
    /// fit distance.
    ScaleShift,
    /// The modern z-normalised model: accept when the z-normalised
    /// Euclidean distance is at most `z_eps`. Matches report the
    /// z-distance; the transform is still the optimal scale-shift fit.
    ZNormalized {
        /// The z-distance acceptance threshold.
        z_eps: f64,
    },
}

/// A validated, fully-decided query: what to search for, how candidates
/// are filtered in feature space, and how survivors are verified.
///
/// Construction performs *all* input validation (query length, ε) and
/// decides the constant-query degenerate case once, so candidate sources
/// and the verifier never re-check.
#[derive(Debug, Clone)]
pub struct QueryPlan<'q> {
    query: &'q [f64],
    /// Feature-space ε used by index probes (for the z-model this is the
    /// derived absolute bound, not `z_eps`).
    epsilon: f64,
    opts: SearchOptions,
    model: VerifyModel,
    /// Raw window length fetched for verification (`window_len` for plain
    /// queries, the full query length for long queries).
    verify_len: usize,
    degenerate: bool,
}

impl<'q> QueryPlan<'q> {
    /// Plans a plain (window-length) query under the paper's scale-shift
    /// model.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    pub fn exact(
        engine: &SearchEngine,
        query: &'q [f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<Self, EngineError> {
        let n = engine.config().window_len;
        if query.len() != n {
            return Err(EngineError::QueryLength {
                expected: n,
                got: query.len(),
            });
        }
        Self::check_epsilon(epsilon)?;
        Ok(Self {
            query,
            epsilon,
            opts,
            model: VerifyModel::ScaleShift,
            verify_len: n,
            degenerate: is_numerically_constant(query),
        })
    }

    /// Plans a long query (at least one window; verified at full length).
    ///
    /// # Errors
    /// [`EngineError::QueryTooShort`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    pub fn long(
        engine: &SearchEngine,
        query: &'q [f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<Self, EngineError> {
        let n = engine.config().window_len;
        if query.len() < n {
            return Err(EngineError::QueryTooShort {
                min: n,
                got: query.len(),
            });
        }
        Self::check_epsilon(epsilon)?;
        Ok(Self {
            query,
            epsilon,
            opts,
            model: VerifyModel::ScaleShift,
            verify_len: query.len(),
            degenerate: is_numerically_constant(query),
        })
    }

    /// Plans a z-normalised query: derives the sound absolute
    /// feature-space ε from `z_eps` via the angle relation (see
    /// [`crate::normalized`]), including the degenerate constant-query
    /// case (a constant query z-normalises to the zero vector, so only
    /// windows within `z_eps` of *their own* flat profile can match).
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    pub fn znormalized(
        engine: &SearchEngine,
        query: &'q [f64],
        z_eps: f64,
    ) -> Result<Self, EngineError> {
        Self::znormalized_with_opts(engine, query, z_eps, SearchOptions::default())
    }

    /// [`QueryPlan::znormalized`] with explicit per-query options (cost
    /// limits, page budget, deadline).
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] / [`EngineError::InvalidEpsilon`] on
    /// malformed input.
    pub fn znormalized_with_opts(
        engine: &SearchEngine,
        query: &'q [f64],
        z_eps: f64,
        opts: SearchOptions,
    ) -> Result<Self, EngineError> {
        let n = engine.config().window_len;
        if query.len() != n {
            return Err(EngineError::QueryLength {
                expected: n,
                got: query.len(),
            });
        }
        Self::check_epsilon(z_eps)?;
        let degenerate = is_numerically_constant(query);
        let epsilon = if degenerate {
            // z(const) = 0, so a non-constant window w has z-distance
            // ‖z(w)‖ = √n; flat windows sit at 0. Below √n only flat
            // windows can qualify — those with sd ≤ 1e-300, whose feature
            // norm is bounded by se_norm = √n·sd — so probe a ball of that
            // radius around the origin. At or beyond √n (with a relative
            // slack keeping boundary rounding on the no-false-dismissal
            // side) every window can match, so probe out to the norm bound.
            if z_eps * z_eps >= (n as f64) * (1.0 - 1e-9) {
                engine.max_se_norm()
            } else {
                (n as f64).sqrt() * 1e-300
            }
        } else {
            // z_eps² = 2n(1 − cos θ) ⇒ cos θ = 1 − z_eps²/(2n), and
            // PLD(se_w, SE-line(q)) = ‖se_w‖·sin θ ≤ sin θ_max · max_norm.
            let cos = 1.0 - z_eps * z_eps / (2.0 * n as f64);
            let sin = if cos <= 0.0 {
                1.0 // half-space or wider; only the norm bound helps
            } else {
                (1.0 - cos * cos).max(0.0).sqrt()
            };
            sin * engine.max_se_norm()
        };
        Ok(Self {
            query,
            epsilon,
            opts,
            model: VerifyModel::ZNormalized { z_eps },
            verify_len: n,
            degenerate,
        })
    }

    /// Plans a ranking (k-NN) query: no ε filter — every candidate the
    /// frontier yields is verified exactly, and only the cost limits
    /// reject.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] on a malformed query.
    pub fn ranking(
        engine: &SearchEngine,
        query: &'q [f64],
        cost: crate::config::CostLimit,
    ) -> Result<Self, EngineError> {
        Self::ranking_with_opts(
            engine,
            query,
            SearchOptions {
                cost,
                ..Default::default()
            },
        )
    }

    /// [`QueryPlan::ranking`] with explicit per-query options (cost limits
    /// taken from `opts.cost`, plus page budget and deadline).
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] on a malformed query.
    pub fn ranking_with_opts(
        engine: &SearchEngine,
        query: &'q [f64],
        opts: SearchOptions,
    ) -> Result<Self, EngineError> {
        let n = engine.config().window_len;
        if query.len() != n {
            return Err(EngineError::QueryLength {
                expected: n,
                got: query.len(),
            });
        }
        Ok(Self {
            query,
            epsilon: f64::INFINITY,
            opts,
            model: VerifyModel::ScaleShift,
            verify_len: n,
            degenerate: is_numerically_constant(query),
        })
    }

    fn check_epsilon(epsilon: f64) -> Result<(), EngineError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(EngineError::InvalidEpsilon(epsilon));
        }
        Ok(())
    }

    /// The query values.
    pub fn query(&self) -> &[f64] {
        self.query
    }

    /// The feature-space ε candidate sources filter with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-query options (penetration method, cost limits, budget,
    /// degradation policy).
    pub fn options(&self) -> &SearchOptions {
        &self.opts
    }

    /// How the verify stage accepts candidates.
    pub fn model(&self) -> VerifyModel {
        self.model
    }

    /// Raw window length fetched per candidate during verification.
    pub fn verify_len(&self) -> usize {
        self.verify_len
    }

    /// True when the query is numerically constant, so its SE-line
    /// degenerates to the origin and only shift-only matches exist.
    /// Decided once at plan time with the exact test verification applies.
    pub fn degenerate(&self) -> bool {
        self.degenerate
    }
}

// ---------------------------------------------------------------------
// Deadline metering
// ---------------------------------------------------------------------

/// Tracks a query's spend against its optional [`Deadline`].
///
/// The meter is the deterministic replacement for a wall-clock timeout:
/// it counts *page accesses* and *verification steps* — both exactly
/// reproducible — and the pipeline checks it cooperatively at every stage
/// boundary, once per verified candidate, per stitched long-query piece,
/// and per k-NN frontier round. A query that overruns gets a typed
/// [`EngineError::DeadlineExceeded`] carrying its spend; it is never
/// degraded around (the sequential fallback would defeat the bound).
///
/// Without a deadline the meter still counts (so [`SearchStats`] can
/// report the spend) but never fails.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineMeter {
    deadline: Option<Deadline>,
    pages: u64,
    steps: u64,
}

impl DeadlineMeter {
    /// A meter enforcing `deadline` (or only counting, when `None`).
    pub fn new(deadline: Option<Deadline>) -> Self {
        Self {
            deadline,
            pages: 0,
            steps: 0,
        }
    }

    /// A counting-only meter that can never fire.
    pub fn unbounded() -> Self {
        Self::new(None)
    }

    /// Charges one verification step (one candidate examined).
    ///
    /// # Errors
    /// [`EngineError::DeadlineExceeded`] when the step budget is overrun.
    pub fn charge_step(&mut self) -> Result<(), EngineError> {
        self.steps += 1;
        self.check()
    }

    /// Raises the page spend to `pages` (callers report a running total —
    /// a scope tally or node-visit count — so the spend is monotone even
    /// when both are reported for overlapping work).
    ///
    /// # Errors
    /// [`EngineError::DeadlineExceeded`] when the page budget is overrun.
    pub fn charge_pages_to(&mut self, pages: u64) -> Result<(), EngineError> {
        self.pages = self.pages.max(pages);
        self.check()
    }

    fn check(&self) -> Result<(), EngineError> {
        if let Some(d) = self.deadline {
            if self.pages > d.max_pages || self.steps > d.max_steps {
                return Err(EngineError::DeadlineExceeded {
                    pages: self.pages,
                    steps: self.steps,
                });
            }
        }
        Ok(())
    }

    /// Page accesses charged so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Verification steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

// ---------------------------------------------------------------------
// Stage 2: candidate sources
// ---------------------------------------------------------------------

/// How the verify stage reads candidates' raw windows.
#[derive(Debug)]
pub enum RawAccess {
    /// Fetch each window through the paged data file (charging data-page
    /// accesses per candidate) — the indexed paths.
    Paged,
    /// Verify against a full-file snapshot the source already read (the
    /// sequential scan charges the whole file exactly once).
    Snapshot(Vec<Vec<f64>>),
}

/// The candidate stage's output: which windows to verify, how to read
/// them, and the index-traversal statistics incurred producing them.
///
/// Sources must yield each candidate id at most once (the verifier counts
/// every id against the per-stage accounting identity).
#[derive(Debug)]
pub struct Candidates {
    /// Candidate window ids, each unique.
    pub ids: Vec<SubseqId>,
    /// Index-traversal statistics accumulated while producing them.
    pub index: LineQueryStats,
    /// How the verifier reads the raw windows.
    pub raw: RawAccess,
}

/// The candidate-generation stage: everything between a validated
/// [`QueryPlan`] and the list of window ids to verify. This is the seam
/// new retrieval backends implement (sharded probes, cached frontiers,
/// alternative indexes) without touching validation or verification.
pub trait CandidateSource {
    /// Produces the candidate set for `plan` over `engine`, charging work
    /// against `meter` at natural internal boundaries (sources doing one
    /// indivisible probe may leave the meter to the pipeline runner's
    /// stage-boundary check).
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] on detected storage damage;
    /// [`EngineError::PageBudgetExceeded`] when the plan's page budget
    /// runs out mid-traversal; [`EngineError::DeadlineExceeded`] when the
    /// plan's deadline fires.
    fn candidates(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        meter: &mut DeadlineMeter,
    ) -> Result<Candidates, EngineError>;
}

/// The paper's §6 searching step: probe the R-tree with the query's
/// SE-line (or, for a degenerate constant query, the feature-space ball
/// around the origin — feature norms never exceed SE-norms, so no false
/// dismissals), honouring the plan's penetration method and page budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexProbe;

impl CandidateSource for IndexProbe {
    fn candidates(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        meter: &mut DeadlineMeter,
    ) -> Result<Candidates, EngineError> {
        let outcome = if plan.degenerate() {
            engine.tree().radius_query_with_budget(
                &vec![0.0; engine.config().feature_dim()],
                plan.epsilon(),
                plan.options().page_budget,
            )?
        } else {
            let line = engine.query_line(plan.query());
            engine.tree().line_query_with_budget(
                &line,
                plan.epsilon(),
                plan.options().method,
                plan.options().page_budget,
            )?
        };
        // Every visited node is one index-page read; charging the visit
        // count here fires the deadline before verification starts.
        meter.charge_pages_to(outcome.stats.internal_visited + outcome.stats.leaves_visited)?;
        Ok(Candidates {
            ids: outcome
                .matches
                .iter()
                .map(|m| SubseqId::unpack(m.id))
                .collect(),
            index: outcome.stats,
            raw: RawAccess::Paged,
        })
    }
}

/// The sequential-scan oracle: every indexed window offset is a
/// candidate, read in one pass over the raw pages. No index, no pruning —
/// the recall baseline (paper experiment set 1) and the degradation
/// fallback.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqScanSource;

impl CandidateSource for SeqScanSource {
    fn candidates(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        _meter: &mut DeadlineMeter,
    ) -> Result<Candidates, EngineError> {
        let n = plan.verify_len();
        let stride = engine.config().stride;
        let all = engine.read_everything()?;
        let mut ids = Vec::new();
        for (si, values) in all.iter().enumerate() {
            for off in window_offsets(values.len(), n, stride) {
                ids.push(SubseqId::try_new(si, off)?);
            }
        }
        Ok(Candidates {
            ids,
            index: LineQueryStats::default(),
            raw: RawAccess::Snapshot(all),
        })
    }
}

/// Brute-force candidate enumeration for long queries: every start
/// position where a `verify_len` window fits, regardless of the stride
/// grid (the paper's setting is stride 1). The test/verification oracle
/// for [`PieceStitchSource`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqScanLongSource;

impl CandidateSource for SeqScanLongSource {
    fn candidates(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        _meter: &mut DeadlineMeter,
    ) -> Result<Candidates, EngineError> {
        let total_len = plan.verify_len();
        let all = engine.read_everything()?;
        let mut ids = Vec::new();
        for (si, values) in all.iter().enumerate() {
            if values.len() < total_len {
                continue;
            }
            for off in 0..=values.len() - total_len {
                ids.push(SubseqId::try_new(si, off)?);
            }
        }
        Ok(Candidates {
            ids,
            index: LineQueryStats::default(),
            raw: RawAccess::Snapshot(all),
        })
    }
}

/// Long-query candidate generation (paper §7, first remark, via the
/// ST-index method): partition the query into window-length pieces,
/// probe the index with each piece's SE-line at the full ε, shift each
/// piece's hits back to the would-be start of the whole match, and
/// intersect. Squared distance decomposes over disjoint ranges, so the
/// intersection never drops a true match; the verifier removes the false
/// alarms on the full-length windows.
///
/// # Panics
/// Panics when the engine's stride is not 1 — the decomposition needs
/// every piece offset indexed (the paper's setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct PieceStitchSource;

impl CandidateSource for PieceStitchSource {
    fn candidates(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        meter: &mut DeadlineMeter,
    ) -> Result<Candidates, EngineError> {
        let n = engine.config().window_len;
        assert_eq!(
            engine.config().stride,
            1,
            "long-query search requires stride 1"
        );
        let total_len = plan.verify_len();
        let piece_offsets: Vec<usize> = (0..=total_len - n).step_by(n).collect();

        // Piece 0 establishes the candidate starts; later pieces prune.
        let mut index = LineQueryStats::default();
        let mut candidates: Option<BTreeSet<SubseqId>> = None;
        for (pi, &poff) in piece_offsets.iter().enumerate() {
            // analyze::allow(index): piece_offsets steps by n up to total_len - n, and the plan guarantees query().len() >= total_len.
            let piece = &plan.query()[poff..poff + n];
            let line = engine.query_line(piece);
            let outcome = engine
                .tree()
                .line_query(&line, plan.epsilon(), plan.options().method)?;
            index.merge(&outcome.stats);
            // Cooperative per-piece check: node visits are page reads.
            meter.charge_pages_to(index.internal_visited + index.leaves_visited)?;

            let mut starts = BTreeSet::new();
            for m in outcome.matches {
                let hit = SubseqId::unpack(m.id);
                // The whole match would start `poff` values earlier.
                if hit.offset_idx() < poff {
                    continue;
                }
                #[allow(clippy::cast_possible_truncation)]
                starts.insert(SubseqId {
                    series: hit.series,
                    // analyze::allow(cast): poff < total_len, which fits u32 because windows are indexed by u32 offsets.
                    offset: hit.offset - poff as u32,
                });
            }
            candidates = Some(match candidates {
                None => starts,
                Some(prev) => {
                    debug_assert!(pi > 0);
                    prev.intersection(&starts).copied().collect()
                }
            });
            if candidates.as_ref().map(BTreeSet::is_empty).unwrap_or(false) {
                break;
            }
        }

        // Starts whose full-length window runs off the series can never
        // verify; drop them here so the verifier only sees real windows.
        let mut ids = Vec::new();
        for id in candidates.unwrap_or_default() {
            let series_len = engine.series_len(id.series_idx())?;
            if id.offset_idx() + total_len <= series_len {
                ids.push(id);
            }
        }
        Ok(Candidates {
            ids,
            index,
            raw: RawAccess::Paged,
        })
    }
}

// ---------------------------------------------------------------------
// The pipeline runner
// ---------------------------------------------------------------------

impl SearchEngine {
    /// Runs the full pipeline: open the thread-local page-accounting
    /// scopes, generate candidates from `source`, verify them, and stamp
    /// the page counts and wall-clock into the result.
    ///
    /// This is the *only* place page accounting and timing happen — every
    /// public entry point is a [`QueryPlan`] constructor plus this call
    /// (the k-NN frontier drives the stages itself in
    /// [`SearchEngine::nearest_search`], with the same scope discipline).
    /// The per-query counts are exact even when queries run concurrently:
    /// the scopes tally the calling thread only, while still feeding the
    /// engine's global counters.
    ///
    /// # Errors
    /// Whatever the source or verifier surfaces —
    /// [`EngineError::Corrupt`], [`EngineError::PageBudgetExceeded`],
    /// [`EngineError::DeadlineExceeded`].
    /// Degradation policy is *not* applied here; see
    /// [`SearchEngine::search`] for the one place it lives.
    pub fn run_pipeline(
        &self,
        plan: &QueryPlan<'_>,
        source: &dyn CandidateSource,
    ) -> Result<SearchResult, EngineError> {
        let t0 = std::time::Instant::now();
        let index_stats = self.index_stats();
        let data_stats = self.data_stats();
        let index_scope = index_stats.local_scope();
        let data_scope = data_stats.local_scope();
        let mut meter = DeadlineMeter::new(plan.options().deadline);

        let cands = source.candidates(self, plan, &mut meter)?;
        // Stage boundary: the candidate stage's true page spend (the scope
        // tally subsumes any node-visit estimate the source charged).
        meter.charge_pages_to(
            index_scope.counts().total_accesses() + data_scope.counts().total_accesses(),
        )?;
        let mut res = Verifier.verify(self, plan, cands, &mut meter)?;

        let idx = index_scope.finish();
        let dat = data_scope.finish();
        meter.charge_pages_to(idx.total_accesses() + dat.total_accesses())?;
        res.stats.index_pages = idx.total_accesses();
        res.stats.data_pages = dat.total_accesses();
        res.stats.retries = idx.retries + dat.retries;
        res.stats.steps_spent = meter.steps();
        res.stats.breaker = self.breaker_state();
        res.stats.elapsed = t0.elapsed();
        Ok(res)
    }
}

// ---------------------------------------------------------------------
// Stage 3: the verifier
// ---------------------------------------------------------------------

/// The shared post-processing stage: raw fetch, exact fit, ε and cost
/// filtering, canonical ordering, per-stage stats. Exactly one copy of
/// this logic exists for all query paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct Verifier;

impl Verifier {
    /// Verifies `cands` against the plan, producing the sorted matches
    /// and the per-stage statistics (everything except the page counters
    /// and wall-clock, which the pipeline runner owns).
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when a candidate's raw window cannot be
    /// fetched or has the wrong length (a corrupt index entry pointing at
    /// a short tail window is a typed error, never a panic);
    /// [`EngineError::DeadlineExceeded`] when the plan's step budget runs
    /// out (one step is charged to `meter` per candidate examined).
    pub fn verify(
        &self,
        engine: &SearchEngine,
        plan: &QueryPlan<'_>,
        cands: Candidates,
        meter: &mut DeadlineMeter,
    ) -> Result<SearchResult, EngineError> {
        let mut stats = SearchStats {
            // analyze::allow(cast): usize → u64 widening is lossless on every supported (≤ 64-bit) target.
            candidates: cands.ids.len() as u64,
            index: cands.index,
            ..Default::default()
        };
        let len = plan.verify_len();
        let mut matches = Vec::new();
        // The query-side moments are fixed for the whole batch: hoist them
        // once so each candidate pays only the window-side passes.
        let qfit = QueryFit::new(plan.query());
        let wrong_len = |id: SubseqId, got: usize| EngineError::Corrupt {
            detail: format!(
                "window {id} has length {got} where the query needs {}",
                plan.query().len()
            ),
            page: None,
        };
        // One fetch buffer reused across candidates on the paged path, and
        // lazily-built per-series prefix arrays for the snapshot screen.
        let mut fetch_buf = Vec::new();
        let mut prefixes = PrefixCache::default();
        for id in cands.ids {
            meter.charge_step()?;
            let window: &[f64] = match &cands.raw {
                RawAccess::Paged => {
                    engine.fetch_raw_into(id, len, &mut fetch_buf)?;
                    &fetch_buf
                }
                RawAccess::Snapshot(all) => snapshot_window(all, id, len)?,
            };
            let (fit, distance) = match plan.model() {
                VerifyModel::ScaleShift => {
                    // The screened fit rejects clear misses algebraically
                    // from fused (snapshot: prefix-differenced) moment
                    // passes; every accepted fit is bit-identical to
                    // `optimal_scale_shift`, so the ε test below is the same
                    // test as before the screen existed, and every
                    // screened-out candidate would have failed it.
                    let screened = match &cands.raw {
                        RawAccess::Snapshot(all) => {
                            let (p1, p2) =
                                prefixes.moments(all, id.series_idx(), id.offset_idx(), len);
                            qfit.fit_within_sliding(window, plan.epsilon(), p1, p2)
                        }
                        RawAccess::Paged => qfit.fit_within(window, plan.epsilon()),
                    };
                    let Some(fit) = screened.map_err(|_| wrong_len(id, window.len()))? else {
                        stats.false_alarms += 1;
                        continue;
                    };
                    if fit.distance > plan.epsilon() {
                        stats.false_alarms += 1;
                        continue;
                    }
                    let d = fit.distance;
                    (fit, d)
                }
                VerifyModel::ZNormalized { z_eps } => {
                    let fit = qfit.fit(window).map_err(|_| wrong_len(id, window.len()))?;
                    let zd = z_distance(plan.query(), window)
                        .map_err(|_| wrong_len(id, window.len()))?;
                    if zd > z_eps {
                        stats.false_alarms += 1;
                        continue;
                    }
                    (fit, zd)
                }
            };
            if !plan
                .options()
                .cost
                .accepts(fit.transform.a, fit.transform.b)
            {
                stats.cost_rejected += 1;
                continue;
            }
            stats.verified += 1;
            matches.push(SubsequenceMatch {
                id,
                transform: fit.transform,
                distance,
            });
        }
        matches.sort_by(SubsequenceMatch::ordering);
        debug_assert_eq!(
            stats.candidates,
            stats.verified + stats.false_alarms + stats.cost_rejected,
            "SearchStats accounting identity violated: every candidate must \
             be counted in exactly one of verified/false_alarms/cost_rejected"
        );
        Ok(SearchResult { matches, stats })
    }
}

/// Lazily-built per-series prefix arrays of `Σv` and `Σv²`, so the
/// snapshot-verification screen gets each stride-1 window's sum and
/// sum-of-squares in O(1) instead of re-summing the ~fully-overlapping
/// window every time. Built at most once per series per query.
#[derive(Debug, Default)]
struct PrefixCache {
    per_series: Vec<Option<(Vec<f64>, Vec<f64>)>>,
}

impl PrefixCache {
    /// Prefix-endpoint pairs `((Σ before, Σ through), (Σ² before, Σ² through))`
    /// for `series[offset .. offset + len]`. The caller has already validated
    /// the coordinates via [`snapshot_window`].
    fn moments(
        &mut self,
        all: &[Vec<f64>],
        series: usize,
        offset: usize,
        len: usize,
    ) -> ((f64, f64), (f64, f64)) {
        if self.per_series.len() < all.len() {
            self.per_series.resize(all.len(), None);
        }
        // analyze::allow(index): `series` was validated against `all.len()` by snapshot_window, and `per_series` was just resized to at least that.
        let (p1, p2) = self.per_series[series].get_or_insert_with(|| {
            // analyze::allow(index): same bound — `series < all.len()` was checked by snapshot_window.
            let values = &all[series];
            let mut p1 = Vec::with_capacity(values.len() + 1);
            let mut p2 = Vec::with_capacity(values.len() + 1);
            let (mut s1, mut s2) = (0.0f64, 0.0f64);
            p1.push(s1);
            p2.push(s2);
            for &y in values {
                s1 += y;
                s2 += y * y;
                p1.push(s1);
                p2.push(s2);
            }
            (p1, p2)
        });
        let end = offset + len;
        // analyze::allow(index): snapshot_window checked `offset + len ≤ series.len()`, and the prefix arrays hold `series.len() + 1` entries.
        ((p1[offset], p1[end]), (p2[offset], p2[end]))
    }
}

/// Slices one window out of a full-file snapshot, surfacing impossible
/// coordinates as typed corruption.
fn snapshot_window(all: &[Vec<f64>], id: SubseqId, len: usize) -> Result<&[f64], EngineError> {
    let series = all
        .get(id.series_idx())
        .ok_or(EngineError::UnknownSeries(id.series_idx()))?;
    let off = id.offset_idx();
    let end = off
        .checked_add(len)
        .filter(|&e| e <= series.len())
        .ok_or_else(|| EngineError::Corrupt {
            detail: format!(
                "window {id} of length {len} exceeds series of length {}",
                series.len()
            ),
            page: None,
        })?;
    // analyze::allow(index): `end` was just checked against series.len() and `off <= end` by construction.
    Ok(&series[off..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostLimit, EngineConfig};
    use tsss_data::{MarketConfig, MarketSimulator, Series};

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(4, 60, 11)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    #[test]
    fn plan_validates_once_for_all_paths() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        assert!(matches!(
            QueryPlan::exact(&e, &[0.0; 4], 1.0, SearchOptions::default()),
            Err(EngineError::QueryLength { .. })
        ));
        assert!(matches!(
            QueryPlan::exact(&e, &q, f64::NAN, SearchOptions::default()),
            Err(EngineError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            QueryPlan::long(&e, &[0.0; 10], 1.0, SearchOptions::default()),
            Err(EngineError::QueryTooShort { min: 16, got: 10 })
        ));
        assert!(matches!(
            QueryPlan::znormalized(&e, &q, -1.0),
            Err(EngineError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            QueryPlan::ranking(&e, &[0.0; 4], CostLimit::UNLIMITED),
            Err(EngineError::QueryLength { .. })
        ));
        let plan = QueryPlan::exact(&e, &q, 2.0, SearchOptions::default()).unwrap();
        assert!(!plan.degenerate());
        assert_eq!(plan.verify_len(), 16);
        assert_eq!(plan.epsilon(), 2.0);
    }

    #[test]
    fn constant_query_degeneracy_is_decided_at_plan_time() {
        let (e, _) = engine();
        let flat = vec![5.0; 16];
        let plan = QueryPlan::exact(&e, &flat, 1.0, SearchOptions::default()).unwrap();
        assert!(plan.degenerate());
        // The same test optimal_scale_shift applies: a hair of noise below
        // the relative tolerance still counts as constant.
        let mut nearly = vec![50.0; 16];
        nearly[3] += 5e-12;
        assert!(QueryPlan::exact(&e, &nearly, 1.0, SearchOptions::default())
            .unwrap()
            .degenerate());
    }

    #[test]
    fn deadline_meter_passes_at_exactly_budget_and_fails_one_past_it() {
        // The boundary semantics of `DeadlineMeter::check`: spend == budget
        // passes (the comparison is strict `>`), budget + 1 fails.
        let d = Deadline {
            max_pages: 3,
            max_steps: 2,
        };
        // Steps: exactly the budget is fine …
        let mut m = DeadlineMeter::new(Some(d));
        m.charge_step().unwrap();
        m.charge_step().unwrap();
        assert_eq!(m.steps(), 2);
        // … one past it is the typed error carrying the spend.
        assert_eq!(
            m.charge_step().unwrap_err(),
            EngineError::DeadlineExceeded { pages: 0, steps: 3 }
        );
        // Pages: raising to exactly the budget is fine, past it fails.
        let mut m = DeadlineMeter::new(Some(d));
        m.charge_pages_to(3).unwrap();
        assert_eq!(m.pages(), 3);
        assert_eq!(
            m.charge_pages_to(4).unwrap_err(),
            EngineError::DeadlineExceeded { pages: 4, steps: 0 }
        );
        // charge_pages_to is monotone: a lower report never rolls back.
        let mut m = DeadlineMeter::new(Some(d));
        m.charge_pages_to(2).unwrap();
        m.charge_pages_to(1).unwrap();
        assert_eq!(m.pages(), 2);
        // Zero budgets reject the first unit of work…
        let mut m = DeadlineMeter::new(Some(Deadline::uniform(0)));
        assert!(m.charge_step().is_err());
        // …and an unbounded meter only counts.
        let mut m = DeadlineMeter::unbounded();
        for _ in 0..1000 {
            m.charge_step().unwrap();
        }
        m.charge_pages_to(1 << 40).unwrap();
        assert_eq!(m.steps(), 1000);
        assert_eq!(m.pages(), 1 << 40);
    }

    #[test]
    fn index_probe_and_seqscan_agree_through_the_pipeline() {
        let (e, data) = engine();
        let q = data[1].window(8, 16).unwrap().to_vec();
        let plan = QueryPlan::exact(&e, &q, 3.0, SearchOptions::default()).unwrap();
        let fast = e.run_pipeline(&plan, &IndexProbe).unwrap();
        let slow = e.run_pipeline(&plan, &SeqScanSource).unwrap();
        assert_eq!(fast.id_set(), slow.id_set());
        assert_eq!(fast.matches, slow.matches);
        for r in [&fast, &slow] {
            assert_eq!(
                r.stats.candidates,
                r.stats.verified + r.stats.false_alarms + r.stats.cost_rejected
            );
        }
        // The scan considered every window; the probe pruned.
        assert_eq!(slow.stats.candidates as usize, e.num_windows());
        assert!(fast.stats.candidates <= slow.stats.candidates);
    }

    #[test]
    fn verifier_reports_short_windows_as_typed_corruption() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        let plan = QueryPlan::exact(&e, &q, 1.0, SearchOptions::default()).unwrap();
        // A candidate pointing past the series tail: the snapshot fetch
        // must fail typed, not panic.
        let bogus = Candidates {
            ids: vec![SubseqId {
                series: 0,
                offset: (data[0].len() - 4) as u32,
            }],
            index: LineQueryStats::default(),
            raw: RawAccess::Snapshot(data.iter().map(|s| s.values.clone()).collect()),
        };
        let err = Verifier
            .verify(&e, &plan, bogus, &mut DeadlineMeter::unbounded())
            .unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
        // Same through the paged path.
        let bogus = Candidates {
            ids: vec![SubseqId {
                series: 0,
                offset: (data[0].len() - 4) as u32,
            }],
            index: LineQueryStats::default(),
            raw: RawAccess::Paged,
        };
        let err = Verifier
            .verify(&e, &plan, bogus, &mut DeadlineMeter::unbounded())
            .unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
    }

    #[test]
    fn custom_candidate_sources_compose_with_the_pipeline() {
        // A hand-rolled source (the seam future backends implement): only
        // windows of series 0 are candidates.
        struct SeriesZeroOnly;
        impl CandidateSource for SeriesZeroOnly {
            fn candidates(
                &self,
                engine: &SearchEngine,
                _plan: &QueryPlan<'_>,
                _meter: &mut DeadlineMeter,
            ) -> Result<Candidates, EngineError> {
                let len = engine.series_len(0)?;
                let n = engine.config().window_len;
                Ok(Candidates {
                    ids: window_offsets(len, n, engine.config().stride)
                        .map(|off| SubseqId::try_new(0, off))
                        .collect::<Result<_, _>>()?,
                    index: LineQueryStats::default(),
                    raw: RawAccess::Paged,
                })
            }
        }
        let (e, data) = engine();
        let q = data[0].window(5, 16).unwrap().to_vec();
        let plan = QueryPlan::exact(&e, &q, 2.0, SearchOptions::default()).unwrap();
        let scoped = e.run_pipeline(&plan, &SeriesZeroOnly).unwrap();
        let full = e.run_pipeline(&plan, &SeqScanSource).unwrap();
        assert!(scoped.matches.iter().all(|m| m.id.series == 0));
        let full_zero: Vec<_> = full
            .matches
            .iter()
            .filter(|m| m.id.series == 0)
            .cloned()
            .collect();
        assert_eq!(scoped.matches, full_zero);
    }
}
