//! Engine error type.

use std::fmt;

/// Errors surfaced by the public engine API.
///
/// Internal invariants still panic (they indicate bugs, not conditions);
/// these variants cover what *callers* can get wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query's length does not match the engine's window length.
    QueryLength {
        /// Window length the engine was built with.
        expected: usize,
        /// Length of the offending query.
        got: usize,
    },
    /// A long query must be at least one full window.
    QueryTooShort {
        /// Minimum accepted length (the window length).
        min: usize,
        /// Length of the offending query.
        got: usize,
    },
    /// The error bound must be non-negative and finite.
    InvalidEpsilon(f64),
    /// No series in the data set is at least one window long.
    DatasetTooSmall {
        /// The engine's window length.
        window_len: usize,
    },
    /// Referenced a series index that does not exist.
    UnknownSeries(usize),
    /// The data set is too large for the engine's compact window ids
    /// (series index and window offset are stored as `u32`).
    TooLarge {
        /// Which quantity overflowed ("series index" or "window offset").
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// Stored data failed verification: a page checksum mismatch, an
    /// injected read fault, a node that does not decode, or an index entry
    /// referencing data that does not exist. The engine may degrade to the
    /// sequential scan when this arises mid-search (see
    /// [`crate::DegradationPolicy`]).
    Corrupt {
        /// Human-readable diagnosis of the damage.
        detail: String,
        /// The storage page implicated, when the fault named one — what the
        /// engine quarantines for [`crate::SearchEngine::repair`].
        page: Option<u32>,
    },
    /// The per-query page-access budget ([`crate::SearchOptions`]
    /// `page_budget`) ran out mid-traversal — the guard against runaway
    /// queries over a damaged or degenerate index. Never degraded around:
    /// the budget bounds total work, so the (full-file) sequential fallback
    /// must not run.
    PageBudgetExceeded {
        /// The exhausted budget, in index page accesses.
        budget: u64,
    },
    /// The write-ahead log failed: a record could not be framed, fsynced,
    /// truncated, or replayed. An append returning this was **not**
    /// acknowledged — the engine did not mutate and the caller must retry
    /// or treat the values as unwritten. Not a corruption of stored data
    /// (the engine file and its checksums are untouched), so it never
    /// degrades to the sequential scan.
    Wal {
        /// Human-readable diagnosis of the log failure.
        detail: String,
    },
    /// A scatter-gather shard failed and the whole query had to be
    /// refused — either every shard failed, or the caller asked for
    /// [`crate::DegradationPolicy::Error`], which forbids dropping the
    /// failed shard's slice. The typed fan-out failure: distinguishable
    /// from a plain [`EngineError::Corrupt`] so callers can tell "this
    /// engine's data is damaged" from "shard `i` of a sharded deployment
    /// is down" (see [`crate::ShardedEngine`]).
    ShardUnavailable {
        /// Index of the first shard that failed.
        shard: usize,
        /// The failed shard's own error, rendered.
        detail: String,
    },
    /// The query's [`crate::Deadline`] ran out mid-execution. Checked
    /// cooperatively at every pipeline stage (and each k-NN frontier
    /// round), so the query stops at a stage boundary with its partial
    /// spend reported here. Never degraded around — like the page budget,
    /// a deadline bounds work, which the full-file fallback would defeat.
    DeadlineExceeded {
        /// Page accesses spent when the deadline fired.
        pages: u64,
        /// Verification steps spent when the deadline fired.
        steps: u64,
    },
}

impl EngineError {
    /// True when the error indicates damaged stored data — the condition
    /// [`crate::DegradationPolicy::SeqScanFallback`] degrades on.
    pub fn is_corruption(&self) -> bool {
        matches!(self, EngineError::Corrupt { .. })
    }
}

impl From<tsss_storage::StorageError> for EngineError {
    fn from(e: tsss_storage::StorageError) -> Self {
        let page = match &e {
            tsss_storage::StorageError::Corrupt { page, .. }
            | tsss_storage::StorageError::ReadFailed { page } => Some(page.0),
            _ => None,
        };
        EngineError::Corrupt {
            detail: e.to_string(),
            page,
        }
    }
}

impl From<tsss_index::IndexError> for EngineError {
    fn from(e: tsss_index::IndexError) -> Self {
        match e {
            tsss_index::IndexError::BudgetExhausted { budget } => {
                EngineError::PageBudgetExceeded { budget }
            }
            other => {
                let page = match &other {
                    tsss_index::IndexError::Storage(tsss_storage::StorageError::Corrupt {
                        page,
                        ..
                    })
                    | tsss_index::IndexError::Storage(tsss_storage::StorageError::ReadFailed {
                        page,
                    })
                    | tsss_index::IndexError::CorruptNode { page, .. } => Some(page.0),
                    _ => None,
                };
                EngineError::Corrupt {
                    detail: other.to_string(),
                    page,
                }
            }
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::QueryLength { expected, got } => write!(
                f,
                "query length {got} does not match the engine window length {expected}"
            ),
            EngineError::QueryTooShort { min, got } => {
                write!(f, "long query must be at least {min} values, got {got}")
            }
            EngineError::InvalidEpsilon(e) => {
                write!(f, "error bound must be finite and non-negative, got {e}")
            }
            EngineError::DatasetTooSmall { window_len } => write!(
                f,
                "no series is at least one window ({window_len} values) long"
            ),
            EngineError::UnknownSeries(i) => write!(f, "series index {i} does not exist"),
            EngineError::TooLarge { what, value } => {
                write!(f, "{what} {value} exceeds the engine's u32 window-id range")
            }
            EngineError::Corrupt { detail, .. } => {
                write!(f, "corrupt stored data: {detail}")
            }
            EngineError::Wal { detail } => {
                write!(f, "write-ahead log failure: {detail}")
            }
            EngineError::PageBudgetExceeded { budget } => {
                write!(f, "page budget of {budget} accesses exhausted mid-query")
            }
            EngineError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            EngineError::DeadlineExceeded { pages, steps } => {
                write!(
                    f,
                    "query deadline exceeded after {pages} page accesses and {steps} verification steps"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let cases: Vec<(EngineError, &str)> = vec![
            (
                EngineError::QueryLength {
                    expected: 128,
                    got: 64,
                },
                "query length 64",
            ),
            (
                EngineError::QueryTooShort { min: 128, got: 10 },
                "at least 128",
            ),
            (EngineError::InvalidEpsilon(-1.0), "-1"),
            (EngineError::DatasetTooSmall { window_len: 9 }, "9"),
            (EngineError::UnknownSeries(3), "index 3"),
            (
                EngineError::TooLarge {
                    what: "window offset",
                    value: 5_000_000_000,
                },
                "window offset 5000000000",
            ),
            (
                EngineError::Corrupt {
                    detail: "page 7 checksum mismatch".into(),
                    page: Some(7),
                },
                "corrupt stored data: page 7",
            ),
            (
                EngineError::Wal {
                    detail: "fsync failed on append".into(),
                },
                "write-ahead log failure: fsync failed",
            ),
            (
                EngineError::PageBudgetExceeded { budget: 64 },
                "budget of 64",
            ),
            (
                EngineError::DeadlineExceeded {
                    pages: 12,
                    steps: 3,
                },
                "deadline exceeded after 12 page accesses and 3",
            ),
            (
                EngineError::ShardUnavailable {
                    shard: 2,
                    detail: "corrupt stored data: page 7 checksum mismatch".into(),
                },
                "shard 2 unavailable: corrupt stored data",
            ),
        ];
        for (err, frag) in cases {
            assert!(
                err.to_string().contains(frag),
                "{err} missing fragment {frag:?}"
            );
        }
    }

    #[test]
    fn storage_and_index_errors_convert_to_corrupt() {
        let s = tsss_storage::StorageError::ReadFailed {
            page: tsss_storage::PageId(3),
        };
        let e: EngineError = s.into();
        assert!(e.is_corruption(), "{e:?}");
        assert_eq!(
            e,
            EngineError::Corrupt {
                detail: "read of page#3 failed".into(),
                page: Some(3)
            },
            "the implicated page must survive the conversion"
        );

        let b: EngineError = tsss_index::IndexError::BudgetExhausted { budget: 9 }.into();
        assert_eq!(b, EngineError::PageBudgetExceeded { budget: 9 });
        assert!(!b.is_corruption());
    }

    #[test]
    fn deadline_exhaustion_is_not_corruption() {
        let e = EngineError::DeadlineExceeded { pages: 5, steps: 0 };
        assert!(
            !e.is_corruption(),
            "deadlines must never trigger degradation"
        );
    }

    #[test]
    fn shard_unavailable_is_not_corruption() {
        let e = EngineError::ShardUnavailable {
            shard: 1,
            detail: "corrupt stored data: page 3".into(),
        };
        assert!(
            !e.is_corruption(),
            "a down shard is a fan-out failure, not damage in this engine's own files"
        );
    }

    #[test]
    fn wal_failure_is_not_corruption() {
        let e = EngineError::Wal {
            detail: "disk full".into(),
        };
        assert!(
            !e.is_corruption(),
            "a log failure means un-acknowledged, not damaged; no seqscan fallback"
        );
    }
}
