//! z-normalisation comparator — relating the paper's model to the later
//! standard.
//!
//! The paper's scale/shift-invariant similarity was later standardised (UCR
//! Suite, stumpy, tslearn, …) as Euclidean distance between **z-normalised**
//! sequences: `z(x) = (x − mean(x)) / std(x)`. The two views are tightly
//! related: z-normalisation first applies the SE-transformation (mean
//! removal — the paper's shift elimination) and then divides by the norm,
//! which quotients out the scaling line. Writing `θ` for the angle between
//! the SE-transforms of `u` and `v`:
//!
//! * the paper's minimum distance is `‖T_se(v)‖·|sin θ|` (the perpendicular
//!   drop of `T_se(v)` onto the SE-line of `u`),
//! * the z-normalised distance is `√(2n·(1 − cos θ))`,
//!
//! so both are monotone functions of the angle when `cos θ ≥ 0` — they rank
//! positively-correlated matches identically — but the paper's distance is
//! *asymmetric* (it scales with the target's amplitude) and admits negative
//! scalings (`cos θ < 0`), which z-normalised distance penalises. The test
//! suite pins these relationships down.

use tsss_geometry::se::se_norm;
use tsss_geometry::vector::{dist, mean};
use tsss_geometry::DimensionMismatch;

/// z-normalises a sequence: zero mean, unit standard deviation
/// (population). Constant sequences map to all-zeros.
pub fn z_normalize(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let m = mean(x);
    let sd = se_norm(x) / (n as f64).sqrt();
    if sd <= 1e-300 {
        return vec![0.0; n];
    }
    x.iter().map(|v| (v - m) / sd).collect()
}

/// Euclidean distance between the z-normalised operands — the modern
/// "normalised Euclidean distance".
///
/// # Errors
/// [`DimensionMismatch`] when the operands differ in length.
pub fn z_distance(u: &[f64], v: &[f64]) -> Result<f64, DimensionMismatch> {
    if u.len() != v.len() {
        return Err(DimensionMismatch {
            left: u.len(),
            right: v.len(),
        });
    }
    Ok(dist(&z_normalize(u), &z_normalize(v)))
}

/// The cosine of the angle between the SE-transforms of `u` and `v` —
/// the shared quantity both distance models are functions of. Returns `0`
/// when either operand is constant.
///
/// # Errors
/// [`DimensionMismatch`] when the operands differ in length.
pub fn se_cosine(u: &[f64], v: &[f64]) -> Result<f64, DimensionMismatch> {
    if u.len() != v.len() {
        return Err(DimensionMismatch {
            left: u.len(),
            right: v.len(),
        });
    }
    let nu = se_norm(u);
    let nv = se_norm(v);
    if nu <= 1e-300 || nv <= 1e-300 {
        return Ok(0.0);
    }
    let n = u.len() as f64;
    let dot_c = tsss_geometry::vector::dot(u, v) - n * mean(u) * mean(v);
    Ok((dot_c / (nu * nv)).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_geometry::scale_shift::min_scale_shift_distance;

    #[test]
    fn z_normalized_output_has_zero_mean_unit_std() {
        let x = [5.0, 10.0, 6.0, 12.0, 4.0];
        let z = z_normalize(&x);
        assert!(mean(&z).abs() < 1e-12);
        let sd = se_norm(&z) / (z.len() as f64).sqrt();
        assert!((sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sequences_normalize_to_zero() {
        assert_eq!(z_normalize(&[7.0; 4]), vec![0.0; 4]);
        assert!(z_normalize(&[]).is_empty());
    }

    #[test]
    fn z_distance_is_invariant_under_positive_scale_and_shift() {
        let u = [1.0, 3.0, 2.0, 5.0, 4.0];
        let v: Vec<f64> = u.iter().map(|x| 3.5 * x - 20.0).collect();
        assert!(z_distance(&u, &v).unwrap() < 1e-9);
    }

    #[test]
    fn z_distance_penalises_negative_scalings() {
        // The paper's model happily maps u onto −u (a = −1); z-normalised
        // distance calls them maximally different.
        let u = [1.0, 3.0, 2.0, 5.0, 4.0];
        let neg: Vec<f64> = u.iter().map(|x| -x).collect();
        let paper = min_scale_shift_distance(&u, &neg).unwrap();
        let z = z_distance(&u, &neg).unwrap();
        assert!(paper < 1e-9, "paper model sees a perfect (negative) match");
        assert!(z > 1.0, "z-distance rejects the inversion: {z}");
    }

    #[test]
    fn both_distances_are_monotone_in_the_angle_for_positive_cosine() {
        // Construct targets at controlled angles from a fixed query.
        let n = 64usize;
        let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ortho: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let mk = |theta: f64| -> Vec<f64> {
            base.iter()
                .zip(&ortho)
                .map(|(b, o)| theta.cos() * b + theta.sin() * o + 5.0)
                .collect()
        };
        let mut prev_paper = -1.0;
        let mut prev_z = -1.0;
        for deg in [5.0, 20.0, 45.0, 70.0, 85.0] {
            let v = mk(deg * std::f64::consts::PI / 180.0);
            let paper = min_scale_shift_distance(&base, &v).unwrap();
            let z = z_distance(&base, &v).unwrap();
            assert!(paper > prev_paper, "paper distance must grow with angle");
            assert!(z > prev_z, "z distance must grow with angle");
            prev_paper = paper;
            prev_z = z;
        }
    }

    #[test]
    fn paper_distance_formula_via_sine() {
        // min distance = ‖T_se(v)‖ · |sin θ|.
        let u = [0.4, -1.0, 2.2, 0.1, -0.7, 1.5];
        let v = [1.0, 2.0, -0.5, 0.3, 0.9, -1.1];
        let cos = se_cosine(&u, &v).unwrap();
        let sin = (1.0 - cos * cos).sqrt();
        let expect = se_norm(&v) * sin;
        let got = min_scale_shift_distance(&u, &v).unwrap();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn z_distance_formula_via_cosine() {
        // z-distance = √(2n(1 − cos θ)).
        let u = [0.4, -1.0, 2.2, 0.1, -0.7, 1.5];
        let v = [1.0, 2.0, -0.5, 0.3, 0.9, -1.1];
        let n = u.len() as f64;
        let cos = se_cosine(&u, &v).unwrap();
        let expect = (2.0 * n * (1.0 - cos)).sqrt();
        let got = z_distance(&u, &v).unwrap();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(z_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(se_cosine(&[1.0], &[1.0, 2.0]).is_err());
    }
}

use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::result::SearchResult;

impl SearchEngine {
    /// Finds every indexed subsequence whose **z-normalised Euclidean
    /// distance** to the query is at most `z_eps` — the modern standard
    /// formulation of scale/shift-invariant matching (UCR Suite and
    /// descendants), answered with the paper's index.
    ///
    /// Soundness: `z_dist(q, w) ≤ z_eps` constrains the *angle* θ between
    /// the SE-transforms (`z_eps² = 2n(1 − cos θ)`), hence
    /// `PLD(se_w, SE-line(q)) = ‖se_w‖·sin θ ≤ sin θ_max · max_norm`, where
    /// `max_norm` bounds every indexed window's SE-norm. Searching the index
    /// with that absolute ε therefore never misses a qualifying window;
    /// exact z-distances are verified on the raw data. (A per-window norm in
    /// the index would prune tighter; this conservative bound keeps the
    /// index exactly the paper's.)
    ///
    /// Matches report the z-distance in `distance` and the optimal
    /// scale-shift `(a, b)` in `transform` (which for a z-match always has
    /// `a > 0`: inversions are *not* z-similar).
    ///
    /// A thin composition over the staged pipeline: the z-normalised plan
    /// (which derives the sound feature-space ε from `z_eps` and decides
    /// the degenerate constant query) with the usual R-tree probe and the
    /// shared verifier running in z-distance mode.
    ///
    /// # Errors
    /// Same validation as [`SearchEngine::search`].
    pub fn search_znormalized(
        &self,
        query: &[f64],
        z_eps: f64,
    ) -> Result<SearchResult, EngineError> {
        self.search_znormalized_opts(query, z_eps, crate::config::SearchOptions::default())
    }

    /// [`SearchEngine::search_znormalized`] with explicit per-query options
    /// (page budget, [`crate::Deadline`], cost limits).
    ///
    /// # Errors
    /// Same validation as [`SearchEngine::search`], plus
    /// [`EngineError::DeadlineExceeded`] when `opts.deadline` fires.
    pub fn search_znormalized_opts(
        &self,
        query: &[f64],
        z_eps: f64,
        opts: crate::config::SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let plan = crate::pipeline::QueryPlan::znormalized_with_opts(self, query, z_eps, opts)?;
        self.run_pipeline(&plan, &crate::pipeline::IndexProbe)
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::config::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator, Series};

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(8, 80, 77)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    #[test]
    fn znorm_search_matches_brute_force_exactly() {
        let (e, data) = engine();
        let q = data[3].window(25, 16).unwrap().to_vec();
        for z_eps in [0.1, 1.0, 3.0] {
            let got = e.search_znormalized(&q, z_eps).unwrap();
            let mut want = std::collections::BTreeSet::new();
            for (si, s) in data.iter().enumerate() {
                for off in 0..=s.len() - 16 {
                    if z_distance(&q, s.window(off, 16).unwrap()).unwrap() <= z_eps {
                        want.insert(crate::id::SubseqId {
                            series: si as u32,
                            offset: off as u32,
                        });
                    }
                }
            }
            assert_eq!(got.id_set(), want, "z_eps {z_eps}");
        }
    }

    #[test]
    fn znorm_search_is_scale_and_shift_invariant() {
        let (e, data) = engine();
        let base = data[1].window(10, 16).unwrap().to_vec();
        let disguised: Vec<f64> = base.iter().map(|v| v * 7.0 - 100.0).collect();
        let a = e.search_znormalized(&base, 1.0).unwrap().id_set();
        let b = e.search_znormalized(&disguised, 1.0).unwrap().id_set();
        assert_eq!(a, b, "z-search must not care about the query's scale/shift");
        assert!(a.contains(&crate::id::SubseqId {
            series: 1,
            offset: 10
        }));
    }

    #[test]
    fn znorm_rejects_inversions() {
        let mut data = MarketSimulator::new(MarketConfig::small(3, 60, 5)).generate();
        // Add the exact mirror of a window of series 0 as its own series.
        let mirrored: Vec<f64> = data[0].values.iter().map(|v| 200.0 - v).collect();
        data.push(Series::new("mirror", mirrored));
        let e = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
        let q = data[0].window(20, 16).unwrap().to_vec();
        // The scale-shift model embraces the mirror (a < 0)…
        let ss = e
            .search(&q, 1e-6, crate::config::SearchOptions::default())
            .unwrap();
        assert!(ss
            .matches
            .iter()
            .any(|m| m.id.series == 3 && m.id.offset == 20 && m.transform.a < 0.0));
        // …the z-normalised model rejects it.
        let z = e.search_znormalized(&q, 0.5).unwrap();
        assert!(z
            .matches
            .iter()
            .all(|m| !(m.id.series == 3 && m.id.offset == 20)));
        // And every reported z-match has a positive scaling.
        assert!(z.matches.iter().all(|m| m.transform.a > 0.0));
    }

    #[test]
    fn znorm_validation_mirrors_plain_search() {
        let (e, _) = engine();
        assert!(matches!(
            e.search_znormalized(&[0.0; 4], 1.0),
            Err(EngineError::QueryLength { .. })
        ));
        assert!(matches!(
            e.search_znormalized(&[0.0; 16], -1.0),
            Err(EngineError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn huge_z_eps_degenerates_to_everything() {
        let (e, _) = engine();
        let q: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        // z-distance is bounded by 2√n; beyond that every window matches.
        let everything = e.search_znormalized(&q, 1000.0).unwrap();
        assert_eq!(everything.matches.len(), e.num_windows());
    }
}
