//! Engine configuration, search options, and transformation-cost limits.

use tsss_geometry::penetration::PenetrationMethod;
use tsss_index::{SplitPolicy, TreeConfig};
use tsss_storage::DEFAULT_PAGE_SIZE;

/// Static configuration of a [`crate::SearchEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Window length `n` — also the length of plain queries.
    pub window_len: usize,
    /// Sliding-window stride (paper: 1).
    pub stride: usize,
    /// Number of DFT coefficients kept, `Some(f_c)`; `None` indexes the full
    /// SE-transformed window (only sensible for small `n` — the paper's §7
    /// motivation for dimension reduction is that R-trees degrade past ~10
    /// dimensions).
    pub fc: Option<usize>,
    /// Page size for both the index and the data file (paper: 4 KB).
    pub page_size: usize,
    /// Maximum R-tree node entries `M` (paper: 20).
    pub max_entries: usize,
    /// Minimum R-tree node entries `m` (paper: 40 % of M = 8).
    pub min_entries: usize,
    /// Forced-reinsert count `p` (paper: 30 % of M = 6).
    pub reinsert_count: usize,
    /// Split policy (paper: R*-tree).
    pub split: SplitPolicy,
    /// Buffer-pool frames for the index file (0 = unbuffered, the paper's
    /// measurement regime).
    pub index_buffer_frames: usize,
    /// Buffer-pool frames for the raw-data file.
    pub data_buffer_frames: usize,
    /// How the index is constructed (query results are identical for all
    /// choices).
    pub build: BuildMethod,
}

/// Index-construction strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMethod {
    /// Sort-Tile-Recursive bulk loading over the raw feature coordinates —
    /// fast and dense; what the benchmark harness uses.
    #[default]
    BulkStr,
    /// STR bulk loading over polar keys (unit direction, then norm): boxes
    /// become angular sectors, which lines through the origin — this
    /// engine's only query shape — rarely cross. An extension beyond the
    /// paper; see `bulk_load_polar`.
    BulkPolar,
    /// One-by-one R*-tree insertion — the paper's §6 pre-processing step.
    Insert,
}

impl EngineConfig {
    /// The paper's experimental configuration (§7): window 128, `f_c = 3`
    /// (6-d index), 4 KB pages, `M = 20`, `m = 8`, `p = 6`, R*-tree,
    /// unbuffered.
    ///
    /// The paper does not state its window length; 128 is the conventional
    /// choice in the F-index line of work it builds on (and a power of two,
    /// so the FFT fast path applies).
    pub fn paper() -> Self {
        Self {
            window_len: 128,
            stride: 1,
            fc: Some(3),
            page_size: DEFAULT_PAGE_SIZE,
            max_entries: 20,
            min_entries: 8,
            reinsert_count: 6,
            split: SplitPolicy::RStar,
            index_buffer_frames: 0,
            data_buffer_frames: 0,
            build: BuildMethod::BulkStr,
        }
    }

    /// A small configuration for tests and examples: window `n`, `f_c = 2`.
    pub fn small(window_len: usize) -> Self {
        Self {
            window_len,
            stride: 1,
            fc: Some(2),
            page_size: DEFAULT_PAGE_SIZE,
            max_entries: 8,
            min_entries: 3,
            reinsert_count: 2,
            split: SplitPolicy::RStar,
            index_buffer_frames: 0,
            data_buffer_frames: 0,
            build: BuildMethod::BulkStr,
        }
    }

    /// Dimension of the indexed feature points.
    pub fn feature_dim(&self) -> usize {
        match self.fc {
            Some(fc) => 2 * fc,
            None => self.window_len,
        }
    }

    /// The derived R-tree configuration. `max_entries`/`min_entries`/
    /// `reinsert_count` govern internal nodes (the paper's `M`, `m`, `p`);
    /// leaves pack to page capacity with the same 40 %/30 % ratios, exactly
    /// as §7 describes ("each page stores one internal node only" with
    /// `M = 20` — the leaf capacity is the page's).
    pub fn tree_config(&self) -> TreeConfig {
        let dim = self.feature_dim();
        let leaf_max =
            tsss_index::Node::max_leaf_fanout(self.page_size, dim).min(usize::from(u16::MAX));
        TreeConfig {
            dim,
            page_size: self.page_size,
            max_entries: self.max_entries,
            min_entries: self.min_entries,
            reinsert_count: self.reinsert_count,
            leaf_max_entries: leaf_max,
            leaf_min_entries: (leaf_max * 2) / 5,
            leaf_reinsert_count: (leaf_max * 3) / 10,
            split: self.split,
            buffer_frames: self.index_buffer_frames,
        }
    }

    /// Validates the configuration without panicking — the form used on
    /// untrusted (persisted) configurations, where a bad value is data
    /// corruption, not a programming error.
    ///
    /// # Errors
    /// A descriptive message for the first violated constraint.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.window_len < 2 {
            return Err("window length must be at least 2".to_string());
        }
        if self.window_len > (1 << 30) {
            return Err(format!("window length {} is implausible", self.window_len));
        }
        if self.stride < 1 {
            return Err("stride must be at least 1".to_string());
        }
        if let Some(fc) = self.fc {
            if !(fc >= 1 && 2 * fc < self.window_len) {
                return Err(format!(
                    "fc = {fc} invalid for window length {} (need 1 <= fc, 2·fc + 1 <= n)",
                    self.window_len
                ));
            }
        }
        // Guard the fanout arithmetic in `tree_config` itself: a hostile
        // page size would underflow `page_size - NODE_HEADER_BYTES` there.
        if self.page_size <= tsss_index::node::NODE_HEADER_BYTES || self.page_size > (1 << 30) {
            return Err(format!("page size {} is out of range", self.page_size));
        }
        self.tree_config().try_validate()
    }

    /// Validates the configuration (delegating tree checks to
    /// [`TreeConfig::validate`]).
    ///
    /// # Panics
    /// Panics on invalid settings with a descriptive message.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            // analyze::allow(panic): documented `# Panics` contract — the fallible twin is `try_validate`; this wrapper exists to panic for callers who want config errors fatal.
            panic!("{e}");
        }
    }
}

/// Limits on the transformation cost, applied in post-processing (paper §3:
/// "the ranges of a and b can be regarded as the cost of the scaling and
/// shifting transformations and the maximum cost allowed can be specified by
/// the user").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostLimit {
    /// Accepted range for the scaling factor `a` (inclusive).
    pub a_range: Option<(f64, f64)>,
    /// Accepted range for the shifting offset `b` (inclusive).
    pub b_range: Option<(f64, f64)>,
}

impl CostLimit {
    /// No limits: every `(a, b)` is acceptable.
    pub const UNLIMITED: CostLimit = CostLimit {
        a_range: None,
        b_range: None,
    };

    /// True when the transformation satisfies the limits.
    pub fn accepts(&self, a: f64, b: f64) -> bool {
        if let Some((lo, hi)) = self.a_range {
            if a < lo || a > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.b_range {
            if b < lo || b > hi {
                return false;
            }
        }
        true
    }
}

/// What [`crate::SearchEngine::search`] does when the index turns out to be
/// corrupt mid-query (a page fails its checksum, a node does not decode, an
/// entry points at data that does not exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Degrade gracefully: answer the query with the exact sequential scan
    /// over the raw data file instead, and flag the result as degraded
    /// ([`crate::SearchStats::degraded`]). The match set is identical to a
    /// healthy index's (the scan is the engine's recall oracle); only the
    /// page cost changes. The default.
    #[default]
    SeqScanFallback,
    /// Surface the corruption to the caller as
    /// [`crate::EngineError::Corrupt`]. The failed probe still feeds the
    /// engine's circuit breaker and quarantine, so repeated corrupt probes
    /// open the breaker for `SeqScanFallback` queries and show up in
    /// [`crate::SearchEngine::health`].
    Error,
    /// Like [`DegradationPolicy::Error`], but fully isolated: the corrupt
    /// probe surfaces as [`crate::EngineError::Corrupt`] and leaves the
    /// engine's circuit breaker, seqscan counter, and quarantine untouched.
    /// For callers that manage recovery themselves and must not perturb the
    /// shared health state.
    Strict,
}

/// A per-query execution deadline: deterministic page-access and
/// verification-step budgets, checked cooperatively at each pipeline stage
/// and every k-NN frontier round. No wall clock is involved, so a deadline
/// behaves identically across machines and under test. Exhaustion is the
/// typed [`crate::EngineError::DeadlineExceeded`] — a hard error, never
/// degraded around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Maximum page accesses (index plus data) the query may spend.
    pub max_pages: u64,
    /// Maximum verification steps (candidate windows fetched and fitted)
    /// the query may spend.
    pub max_steps: u64,
}

impl Deadline {
    /// A deadline bounding both pages and steps by `n` — a coarse "about
    /// this much work" knob.
    pub fn uniform(n: u64) -> Self {
        Self {
            max_pages: n,
            max_steps: n,
        }
    }
}

/// Per-query options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchOptions {
    /// Penetration-checking strategy (paper experiment set 2 vs set 3).
    pub method: PenetrationMethod,
    /// Transformation-cost limits.
    pub cost: CostLimit,
    /// Optional cap on index page accesses for this query. When the
    /// traversal would visit page `budget + 1` it aborts with
    /// [`crate::EngineError::PageBudgetExceeded`] — a hard error, never
    /// degraded around (the budget bounds total work; the sequential
    /// fallback reads the whole file). `None` means unlimited.
    pub page_budget: Option<u64>,
    /// What to do when index corruption is detected mid-query.
    pub degradation: DegradationPolicy,
    /// Optional execution deadline (page and step budgets). `None` means
    /// unbounded.
    pub deadline: Option<Deadline>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_six_dimensional() {
        let c = EngineConfig::paper();
        c.validate();
        assert_eq!(c.feature_dim(), 6);
        assert_eq!(c.tree_config().max_entries, 20);
    }

    #[test]
    fn full_dim_config_for_small_windows() {
        let mut c = EngineConfig::small(8);
        c.fc = None;
        c.validate();
        assert_eq!(c.feature_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "fc = 4 invalid")]
    fn oversized_fc_rejected() {
        let mut c = EngineConfig::small(8);
        c.fc = Some(4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let mut c = EngineConfig::small(8);
        c.stride = 0;
        c.validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let mut c = EngineConfig::small(8);
        c.stride = 0;
        assert!(c.try_validate().unwrap_err().contains("stride"));
        // Hostile persisted values must not panic (underflow in the fanout
        // arithmetic, absurd window lengths, …).
        let mut c = EngineConfig::small(8);
        c.page_size = 2;
        assert!(c.try_validate().unwrap_err().contains("page size"));
        let mut c = EngineConfig::small(8);
        c.window_len = usize::MAX;
        c.fc = None;
        assert!(c.try_validate().is_err());
        assert!(EngineConfig::paper().try_validate().is_ok());
    }

    #[test]
    fn cost_limit_logic() {
        let unlimited = CostLimit::UNLIMITED;
        assert!(unlimited.accepts(1e9, -1e9));
        let limited = CostLimit {
            a_range: Some((0.5, 2.0)),
            b_range: Some((-10.0, 10.0)),
        };
        assert!(limited.accepts(1.0, 0.0));
        assert!(limited.accepts(0.5, 10.0)); // boundaries inclusive
        assert!(!limited.accepts(0.49, 0.0));
        assert!(!limited.accepts(1.0, 10.01));
        let a_only = CostLimit {
            a_range: Some((0.0, 1.0)),
            b_range: None,
        };
        assert!(a_only.accepts(0.5, 1e12));
        assert!(!a_only.accepts(1.5, 0.0));
    }
}
