//! The indexed search engine — the paper's §6 algorithm end to end.

use std::collections::BTreeSet;
use std::sync::Mutex;

use tsss_data::Series;
use tsss_dft::FeatureExtractor;
use tsss_geometry::line::Line;
use tsss_geometry::se::se_transform_into;
use tsss_index::bulk::{bulk_load, bulk_load_polar};
use tsss_index::{DataEntry, RTree};

use crate::config::{EngineConfig, SearchOptions};
use crate::datafile::PagedSeriesStore;
use crate::error::EngineError;
use crate::id::SubseqId;
use crate::recovery::{BreakerState, CircuitBreaker, HealthReport, RepairReport};
use crate::result::SearchResult;
use crate::window::window_offsets;

/// The scale-shift similarity search engine.
///
/// Owns two paged files — the R*-tree index and the raw-series data file —
/// so every page the algorithm touches is accounted (Figure 5's metric),
/// plus the SE + DFT feature pipeline (Theorems 2–3 machinery).
///
/// ```
/// use tsss_core::{EngineConfig, SearchEngine, SearchOptions};
/// use tsss_data::Series;
///
/// let wave: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin() * 5.0 + 20.0).collect();
/// let data = vec![Series::new("wave", wave.clone())];
/// let engine = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
///
/// // A scaled + shifted copy of days 10..26 finds its source.
/// let query: Vec<f64> = wave[10..26].iter().map(|v| 3.0 * v - 7.0).collect();
/// let hits = engine.search(&query, 1e-6, SearchOptions::default()).unwrap();
/// assert_eq!(hits.matches[0].id.offset, 10);
/// ```
#[derive(Debug)]
pub struct SearchEngine {
    cfg: EngineConfig,
    extractor: Option<FeatureExtractor>,
    tree: RTree,
    store: PagedSeriesStore,
    /// Upper bound on the SE-norm of any window ever indexed. Deletions do
    /// not lower it (that would require a full rescan), which can leave it
    /// loose — tracked by `max_norm_loose` and tightened by
    /// [`SearchEngine::repair`], which recomputes it exactly. Used by the
    /// z-normalised search to derive a sound absolute ε; see `normalized`.
    max_se_norm: f64,
    /// The recovery circuit breaker (see [`crate::recovery`]): trips open
    /// after repeated corrupt index probes, routes fallback-policy queries
    /// straight to the sequential scan, and half-opens to re-test the index.
    breaker: CircuitBreaker,
    /// Storage pages implicated in corrupt probes, awaiting
    /// [`SearchEngine::repair`].
    quarantine: Mutex<BTreeSet<u32>>,
    /// True when a failed [`SearchEngine::append_values`] left values in the
    /// append-only data file whose windows never reached the index — queries
    /// silently miss that tail until [`SearchEngine::repair`] re-indexes it.
    /// Surfaced through [`SearchEngine::health`].
    append_tail_unindexed: bool,
    /// True when a removal deleted the window holding the global SE-norm
    /// bound, leaving `max_se_norm` loose — every later z-normalised probe
    /// over-reads (a perf regression, never a correctness one, since the
    /// bound is only ever an upper bound). [`SearchEngine::repair`]
    /// recomputes the exact bound and clears this.
    max_norm_loose: bool,
    /// Tree insertions since the last bulk (re)build. One-at-a-time R*
    /// insertion degrades page locality versus the STR bulk load — the
    /// build-method ablation (results/ablation_build.txt) measures an
    /// insertion-built tree at ~7.6× the query pages of the STR one — so
    /// [`SearchEngine::str_rebuild_due`] flags when enough appends have
    /// accumulated that a background [`SearchEngine::repair`] pays for
    /// itself.
    inserts_since_rebuild: u64,
}

impl SearchEngine {
    /// Builds an engine over `data` (the paper's pre-processing step):
    /// slide, SE-transform, extract features, index.
    ///
    /// Series shorter than one window are stored (they may grow later via
    /// [`SearchEngine::append_values`]) but contribute no windows yet.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`] when a series index or window offset does
    /// not fit the packed `u32` window id.
    pub fn build(data: &[Series], cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate();
        let extractor = cfg.fc.map(|fc| FeatureExtractor::new(cfg.window_len, fc));
        let mut store = PagedSeriesStore::new(cfg.page_size, cfg.data_buffer_frames);

        let mut entries: Vec<DataEntry> = Vec::new();
        let mut se_buf = vec![0.0; cfg.window_len];
        let mut max_se_norm = 0.0f64;
        for (si, s) in data.iter().enumerate() {
            store.add_series_with_values(s.name.clone(), &s.values)?;
            for off in window_offsets(s.values.len(), cfg.window_len, cfg.stride) {
                // analyze::allow(index): window_offsets only yields offsets with off + window_len <= values.len().
                let window = &s.values[off..off + cfg.window_len];
                max_se_norm = max_se_norm.max(tsss_geometry::se::se_norm(window));
                let feat = feature_of(&extractor, window, &mut se_buf);
                let id = SubseqId::try_new(si, off)?;
                entries.push(DataEntry::new(feat, id.pack()));
            }
        }

        let tree = match cfg.build {
            crate::config::BuildMethod::BulkStr => bulk_load(cfg.tree_config(), entries)?,
            crate::config::BuildMethod::BulkPolar => bulk_load_polar(cfg.tree_config(), entries)?,
            crate::config::BuildMethod::Insert => {
                let mut t = RTree::new(cfg.tree_config())?;
                for e in entries {
                    t.insert(e.point.into_vec(), e.id)?;
                }
                t
            }
        };

        Ok(Self {
            cfg,
            extractor,
            tree,
            store,
            max_se_norm,
            breaker: CircuitBreaker::default(),
            quarantine: Mutex::new(BTreeSet::new()),
            append_tail_unindexed: false,
            max_norm_loose: false,
            inserts_since_rebuild: 0,
        })
    }

    /// Reassembles an engine from persisted parts (see `persist`).
    pub(crate) fn from_parts(
        cfg: EngineConfig,
        tree: RTree,
        store: PagedSeriesStore,
        max_se_norm: f64,
    ) -> Self {
        let extractor = cfg.fc.map(|fc| FeatureExtractor::new(cfg.window_len, fc));
        Self {
            cfg,
            extractor,
            tree,
            store,
            max_se_norm,
            breaker: CircuitBreaker::default(),
            quarantine: Mutex::new(BTreeSet::new()),
            append_tail_unindexed: false,
            max_norm_loose: false,
            inserts_since_rebuild: 0,
        }
    }

    /// Upper bound on the SE-norm (fluctuation energy) of any window ever
    /// indexed.
    pub fn max_se_norm(&self) -> f64 {
        self.max_se_norm
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of series stored.
    pub fn num_series(&self) -> usize {
        self.store.num_series()
    }

    /// Number of indexed windows.
    pub fn num_windows(&self) -> usize {
        self.tree.len()
    }

    /// Number of data-file pages (what a sequential scan reads).
    pub fn data_page_count(&self) -> usize {
        self.store.page_count()
    }

    /// Height of the index tree.
    pub fn index_height(&self) -> usize {
        self.tree.height()
    }

    /// Index-file access counters.
    pub fn index_stats(&self) -> std::sync::Arc<tsss_storage::AccessStats> {
        self.tree.stats()
    }

    /// Data-file access counters.
    pub fn data_stats(&self) -> std::sync::Arc<tsss_storage::AccessStats> {
        self.store.stats()
    }

    /// Resets both files' access counters (between benchmark queries).
    pub fn reset_counters(&self) {
        self.tree.stats().reset();
        self.store.stats().reset();
    }

    /// Drops both buffer pools' cached frames.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when flushing a dirty frame fails.
    pub fn clear_caches(&self) -> Result<(), EngineError> {
        self.tree.clear_cache()?;
        self.store.clear_cache()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection & corruption hooks (chaos tests, resilience drills)
    // ------------------------------------------------------------------

    /// Wraps the index's page store in a deterministic fault-injecting
    /// decorator (seeded by `cfg.seed`). Returns the shared counters
    /// recording every fault fired. Cached index frames are dropped so the
    /// faults apply immediately.
    pub fn inject_index_faults(
        &mut self,
        cfg: tsss_storage::FaultConfig,
    ) -> std::sync::Arc<tsss_storage::FaultCounters> {
        let mut counters = None;
        self.tree.wrap_store(|inner| {
            let faulty = tsss_storage::FaultyStore::new(inner, cfg);
            counters = Some(faulty.counters());
            Box::new(faulty)
        });
        // analyze::allow(panic): wrap_store invokes the closure exactly once, synchronously, so the Option is Some by construction.
        counters.expect("wrap_store runs the closure")
    }

    /// Like [`SearchEngine::inject_index_faults`], for the raw-data file.
    pub fn inject_data_faults(
        &mut self,
        cfg: tsss_storage::FaultConfig,
    ) -> std::sync::Arc<tsss_storage::FaultCounters> {
        let mut counters = None;
        self.store.wrap_store(|inner| {
            let faulty = tsss_storage::FaultyStore::new(inner, cfg);
            counters = Some(faulty.counters());
            Box::new(faulty)
        });
        // analyze::allow(panic): wrap_store invokes the closure exactly once, synchronously, so the Option is Some by construction.
        counters.expect("wrap_store runs the closure")
    }

    /// Mutates the raw bytes of index page `page` in place, beneath the
    /// checksum layer — the next read of that page fails verification.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when the page does not exist.
    pub fn corrupt_index_page(
        &mut self,
        page: u32,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), EngineError> {
        self.tree.corrupt_page(tsss_storage::PageId(page), f)?;
        Ok(())
    }

    /// Number of pages in the index file (for picking corruption targets).
    pub fn index_extent(&self) -> usize {
        self.tree.extent()
    }

    /// Reads every stored series back through the checksummed page path —
    /// a full data-file scrub that surfaces any latent page corruption as
    /// [`EngineError::Corrupt`].
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when any data page fails verification.
    pub fn read_everything(&self) -> Result<Vec<Vec<f64>>, EngineError> {
        self.store.read_everything()
    }

    /// Read access to the underlying tree (queries, white-box tests).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Mutable access to the underlying tree (white-box tests, benches).
    pub fn tree_mut(&mut self) -> &mut RTree {
        &mut self.tree
    }

    /// Read access to the underlying data file (baselines, persistence).
    pub(crate) fn store(&self) -> &PagedSeriesStore {
        &self.store
    }

    /// Computes the feature-space query line (the SE-line of the query after
    /// dimension reduction).
    pub(crate) fn query_line(&self, query: &[f64]) -> Line {
        let mut se_buf = vec![0.0; self.cfg.window_len];
        let feat = feature_of(&self.extractor, query, &mut se_buf);
        Line::scaling(&feat)
    }

    /// Fetches a raw window for verification into a reused buffer (cleared
    /// first), charging data pages; the verifier pays one allocation per
    /// query instead of one per candidate.
    pub(crate) fn fetch_raw_into(
        &self,
        id: SubseqId,
        len: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), EngineError> {
        self.store
            .fetch_window_into(id.series_idx(), id.offset_idx(), len, out)
    }

    /// The length of the series with index `s`.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad index.
    pub fn series_len(&self, s: usize) -> Result<usize, EngineError> {
        self.store.series_len(s)
    }

    /// The name of the series with index `s`, as stored in the data file.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad index.
    pub fn series_name(&self, s: usize) -> Result<&str, EngineError> {
        self.store.series_name(s)
    }

    // ------------------------------------------------------------------
    // Dynamic maintenance (paper §3, requirement 2)
    // ------------------------------------------------------------------

    /// Adds a brand-new series, indexing all of its windows. Returns the
    /// series index.
    ///
    /// # Errors
    /// [`EngineError::TooLarge`] when the data set outgrows the packed
    /// `u32` window ids.
    pub fn append_series(&mut self, series: &Series) -> Result<usize, EngineError> {
        let si = self.store.add_series(series.name.clone());
        if !series.values.is_empty() {
            self.append_values(si, &series.values)?;
        }
        Ok(si)
    }

    /// Appends freshly-collected values to an existing series and indexes
    /// every newly-completed window (including the ones spanning the old
    /// tail).
    ///
    /// The length overflow check runs **before** the data file is touched,
    /// so a rejected append leaves the engine exactly as it was. An error
    /// *after* the data landed (a failed fetch or tree insert mid-loop)
    /// leaves the appended values stored but their tail windows unindexed;
    /// the engine records that partial state and
    /// [`SearchEngine::health`] reports it (`append_tail_unindexed`) until
    /// [`SearchEngine::repair`] re-indexes everything from the data file.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad index;
    /// [`EngineError::TooLarge`] when the grown series length would
    /// overflow (matching the `SubseqId::try_new` overflow discipline);
    /// [`EngineError::Corrupt`] when storage fails mid-append.
    pub fn append_values(&mut self, series: usize, values: &[f64]) -> Result<(), EngineError> {
        let old_len = self.store.series_len(series)?;
        let new_len = old_len
            .checked_add(values.len())
            .ok_or(EngineError::TooLarge {
                what: "series length",
                value: old_len,
            })?;
        self.store.append(series, values)?;
        // From here on the values are in the data file: any indexing error
        // leaves an unindexed tail, which must be surfaced, not swallowed.
        let result = self.index_appended_windows(series, old_len, new_len);
        if result.is_err() {
            self.append_tail_unindexed = true;
        }
        result
    }

    /// Indexes the windows completed by an append that grew `series` from
    /// `old_len` to `new_len` values (the tail of [`SearchEngine::append_values`]).
    fn index_appended_windows(
        &mut self,
        series: usize,
        old_len: usize,
        new_len: usize,
    ) -> Result<(), EngineError> {
        let n = self.cfg.window_len;
        if new_len < n {
            return Ok(());
        }
        // Offsets of windows that end in the appended region, respecting the
        // stride grid.
        let first_unseen = old_len.saturating_sub(n - 1);
        let first_on_grid = first_unseen.div_ceil(self.cfg.stride) * self.cfg.stride;
        let mut se_buf = vec![0.0; n];
        let mut off = first_on_grid;
        while off + n <= new_len {
            // Skip windows that were already indexed before this append.
            if off + n > old_len {
                let window = self.store.fetch_window(series, off, n)?;
                let feat = feature_of(&self.extractor, &window, &mut se_buf);
                let id = SubseqId::try_new(series, off)?;
                self.tree.insert(feat, id.pack())?;
                self.inserts_since_rebuild += 1;
                // Only widen the z-probe bound after the insert landed: a
                // failed insert must not loosen the bound for a window that
                // never became searchable.
                self.max_se_norm = self.max_se_norm.max(tsss_geometry::se::se_norm(&window));
            }
            off += self.cfg.stride;
        }
        Ok(())
    }

    /// Unindexes every window of a series (e.g. a delisted stock). The raw
    /// values stay in the append-only data file (it has no reclamation), but
    /// no query will return the series again. Returns the number of windows
    /// removed.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad series index.
    pub fn remove_series_windows(&mut self, series: usize) -> Result<usize, EngineError> {
        let len = self.store.series_len(series)?;
        let n = self.cfg.window_len;
        if len < n {
            return Ok(0);
        }
        let mut removed = 0;
        let mut off = 0;
        while off + n <= len {
            let id = SubseqId::try_new(series, off)?;
            if self.remove_window(id)? {
                removed += 1;
            }
            off += self.cfg.stride;
        }
        Ok(removed)
    }

    /// Removes a window from the index (e.g. when old data expires).
    /// Returns `true` when the window was indexed.
    ///
    /// Removing the window that holds the global SE-norm bound leaves
    /// `max_se_norm` loose (deliberately: recomputing it exactly would scan
    /// the whole data file per removal). The engine stamps that looseness so
    /// [`SearchEngine::health`] reports it (`max_norm_loose`) and
    /// [`SearchEngine::repair`] — which recomputes the bound exactly — is
    /// known to fix it.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad series index.
    pub fn remove_window(&mut self, id: SubseqId) -> Result<bool, EngineError> {
        let n = self.cfg.window_len;
        let window = self
            .store
            .fetch_window(id.series_idx(), id.offset_idx(), n)?;
        let mut se_buf = vec![0.0; n];
        let feat = feature_of(&self.extractor, &window, &mut se_buf);
        let removed = self.tree.delete(&feat, id.pack())?;
        if removed && tsss_geometry::se::se_norm(&window) >= self.max_se_norm {
            // The deleted window was (one of) the bound holder(s): the bound
            // is now loose until a repair recomputes it.
            self.max_norm_loose = true;
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Search (the paper's §6 searching + post-processing steps)
    // ------------------------------------------------------------------

    /// Finds every indexed subsequence `S'` with `Q ~ε S'`, reporting the
    /// optimal `(a, b)` and exact distance per match, sorted by ascending
    /// distance.
    ///
    /// Takes `&self`: the whole read path is thread-safe, and the per-query
    /// page counts in [`crate::result::SearchStats`] are exact even when other queries run
    /// concurrently (see [`SearchEngine::search_batch`]).
    ///
    /// When corruption is detected mid-query (a page fails its checksum, a
    /// node does not decode, an index entry points at data that does not
    /// exist), the behaviour follows `opts.degradation`: by default the
    /// query is re-answered by the exact sequential scan and the result is
    /// flagged [`crate::result::SearchStats::degraded`]; under
    /// [`crate::DegradationPolicy::Error`] the typed error surfaces instead
    /// (still feeding the breaker and quarantine), and under
    /// [`crate::DegradationPolicy::Strict`] it surfaces without touching
    /// either. A [`EngineError::PageBudgetExceeded`] or
    /// [`EngineError::DeadlineExceeded`] abort is always a hard error —
    /// both bound total work, which the full-file fallback would not.
    ///
    /// Repeated corrupt probes trip the engine's circuit breaker (see
    /// [`crate::recovery`]): once open, fallback-policy queries skip the
    /// doomed probe and go straight to the scan until a half-open probe or
    /// a [`SearchEngine::repair`] proves the index healthy again.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] or [`EngineError::InvalidEpsilon`] on
    /// malformed input; [`EngineError::PageBudgetExceeded`] when
    /// `opts.page_budget` runs out; [`EngineError::DeadlineExceeded`] when
    /// `opts.deadline` fires; [`EngineError::Corrupt`] on detected
    /// corruption under [`crate::DegradationPolicy::Error`] /
    /// [`crate::DegradationPolicy::Strict`], or when the fallback scan
    /// itself hits corrupt data pages.
    pub fn search(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        use crate::config::DegradationPolicy;
        // An open breaker: fallback-policy queries skip the doomed probe.
        if opts.degradation == DegradationPolicy::SeqScanFallback && !self.breaker.allows_probe() {
            let mut res = self.sequential_search_opts(query, epsilon, opts)?;
            res.stats.degraded = true;
            res.stats.degraded_reason =
                Some("circuit breaker open: index probes suspended".to_string());
            self.breaker.record_seqscan_served();
            res.stats.breaker = self.breaker.state();
            return Ok(res);
        }
        match self.search_indexed(query, epsilon, opts) {
            Ok(mut res) => {
                if opts.degradation != DegradationPolicy::Strict {
                    self.breaker.record_probe_success();
                    res.stats.breaker = self.breaker.state();
                }
                Ok(res)
            }
            Err(e) if e.is_corruption() => match opts.degradation {
                DegradationPolicy::Strict => Err(e),
                DegradationPolicy::Error => {
                    self.note_corruption(&e);
                    self.breaker.record_probe_corrupt();
                    Err(e)
                }
                DegradationPolicy::SeqScanFallback => {
                    self.note_corruption(&e);
                    self.breaker.record_probe_corrupt();
                    let mut res = self.sequential_search_opts(query, epsilon, opts)?;
                    res.stats.degraded = true;
                    res.stats.degraded_reason = Some(e.to_string());
                    self.breaker.record_seqscan_served();
                    res.stats.breaker = self.breaker.state();
                    Ok(res)
                }
            },
            other => other,
        }
    }

    /// Quarantines the page a corruption error implicates, if it named one.
    fn note_corruption(&self, e: &EngineError) {
        if let EngineError::Corrupt { page: Some(p), .. } = e {
            // Poison recovery: the set only ever grows; a panicking holder
            // cannot leave it torn in a way that matters to an insert.
            self.quarantine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(*p);
        }
    }

    /// The circuit breaker's current position.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Tree insertions accumulated since the last bulk (re)build.
    pub fn inserts_since_rebuild(&self) -> u64 {
        self.inserts_since_rebuild
    }

    /// True when enough one-at-a-time insertions have accumulated since the
    /// last bulk build that a background STR rebuild
    /// ([`SearchEngine::repair`]) pays for itself.
    ///
    /// The build-method ablation (`results/ablation_build.txt`, 500 series
    /// at ε = 0) measures 250 query pages for the STR-built tree against
    /// 1911 for the insertion-built one — a ~7.6× locality penalty — so
    /// once the insert-grown fraction of the tree is no longer marginal
    /// (an eighth of all windows, floored at 256 so tiny engines never
    /// churn) the rebuild is worth its one-off cost.
    pub fn str_rebuild_due(&self) -> bool {
        let windows = u64::try_from(self.num_windows()).unwrap_or(u64::MAX);
        self.inserts_since_rebuild >= (windows / 8).max(256)
    }

    /// A point-in-time health report: breaker position, strike and trip
    /// counts, quarantined pages, and transient-fault retry totals — what
    /// the `tsss health` subcommand prints.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            breaker: self.breaker.state(),
            strikes: self.breaker.strikes(),
            seqscan_served: self.breaker.seqscan_served(),
            breaker_trips: self.breaker.trips(),
            quarantined_pages: self
                .quarantine
                .lock()
                // Poison recovery: advisory read of a grow-only set.
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .copied()
                .collect(),
            index_retries: self.index_stats().retries(),
            data_retries: self.data_stats().retries(),
            append_tail_unindexed: self.append_tail_unindexed,
            max_norm_loose: self.max_norm_loose,
            // A bare engine has no log; the durable wrapper overrides these.
            wal_tail_records: 0,
            wal_replayed: 0,
        }
    }

    /// Rebuilds the index online from the authoritative data file (the
    /// same bulk loader the configured [`crate::BuildMethod`] uses), then
    /// clears the quarantine and closes the circuit breaker.
    ///
    /// The data file is the source of truth: every window it holds is
    /// re-indexed, so an index lost to corruption is fully reconstructed
    /// — including windows previously unindexed via
    /// [`SearchEngine::remove_window`] (repair restores the same universe
    /// the sequential fallback answers from). The old index file, along
    /// with any injected fault decorator wrapping it, is discarded.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when the data file itself is damaged —
    /// repair can rebuild the index, not the data.
    pub fn repair(&mut self) -> Result<RepairReport, EngineError> {
        let all = self.store.read_everything()?;
        let mut entries: Vec<DataEntry> = Vec::new();
        let mut se_buf = vec![0.0; self.cfg.window_len];
        let mut max_se_norm = 0.0f64;
        for (si, values) in all.iter().enumerate() {
            for off in window_offsets(values.len(), self.cfg.window_len, self.cfg.stride) {
                // analyze::allow(index): window_offsets only yields offsets with off + window_len <= values.len().
                let window = &values[off..off + self.cfg.window_len];
                max_se_norm = max_se_norm.max(tsss_geometry::se::se_norm(window));
                let feat = feature_of(&self.extractor, window, &mut se_buf);
                let id = SubseqId::try_new(si, off)?;
                entries.push(DataEntry::new(feat, id.pack()));
            }
        }
        let windows_reindexed = entries.len();
        self.tree = match self.cfg.build {
            crate::config::BuildMethod::BulkStr => bulk_load(self.cfg.tree_config(), entries)?,
            crate::config::BuildMethod::BulkPolar => {
                bulk_load_polar(self.cfg.tree_config(), entries)?
            }
            crate::config::BuildMethod::Insert => {
                let mut t = RTree::new(self.cfg.tree_config())?;
                for e in entries {
                    t.insert(e.point.into_vec(), e.id)?;
                }
                t
            }
        };
        // The recomputed bound covers every window in the data file — a
        // superset of what is indexed — so adopting it exactly is sound for
        // the z-normalised probe and tightens any looseness left by
        // removals (see `remove_window`).
        self.max_se_norm = max_se_norm;
        self.append_tail_unindexed = false;
        self.max_norm_loose = false;
        self.inserts_since_rebuild = 0;
        let quarantine_cleared: Vec<u32> =
            // Poison recovery: repair replaces the whole set anyway.
            std::mem::take(
                &mut *self
                    .quarantine
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            )
                .into_iter()
                .collect();
        self.breaker.reset();
        Ok(RepairReport {
            windows_reindexed,
            quarantine_cleared,
        })
    }

    /// The indexed path of [`SearchEngine::search`], with no degradation:
    /// detected corruption always surfaces as [`EngineError::Corrupt`].
    ///
    /// A thin composition over the staged pipeline (see
    /// [`crate::pipeline`]): plan the query (validation and the
    /// constant-query degenerate case live in
    /// [`crate::pipeline::QueryPlan::exact`]), probe the R-tree
    /// ([`crate::pipeline::IndexProbe`]), and verify survivors through the
    /// shared [`crate::pipeline::Verifier`].
    ///
    /// # Errors
    /// As [`SearchEngine::search`] under
    /// [`crate::DegradationPolicy::Error`].
    pub fn search_indexed(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let plan = crate::pipeline::QueryPlan::exact(self, query, epsilon, opts)?;
        self.run_pipeline(&plan, &crate::pipeline::IndexProbe)
    }

    /// Answers a batch of queries, fanning them over `workers` scoped
    /// threads (capped at the batch size; `0` is treated as `1`, which runs
    /// serially on the calling thread).
    ///
    /// Results are returned in query order and are identical to calling
    /// [`SearchEngine::search`] on each query sequentially — including the
    /// per-query `index_pages`/`data_pages` counts, which are tallied by
    /// thread-local scopes and therefore unaffected by interleaving. Summed
    /// over the batch they equal the global counter increase.
    ///
    /// # Errors
    /// The first per-query error in query order, if any
    /// ([`EngineError::QueryLength`] / [`EngineError::InvalidEpsilon`] /
    /// [`EngineError::DeadlineExceeded`]). Use
    /// [`SearchEngine::search_batch_results`] when one query's failure must
    /// not discard the others' answers.
    pub fn search_batch(
        &self,
        queries: &[Vec<f64>],
        epsilon: f64,
        opts: SearchOptions,
        workers: usize,
    ) -> Result<Vec<SearchResult>, EngineError> {
        self.search_batch_results(queries, epsilon, opts, workers)
            .into_iter()
            .collect()
    }

    /// Like [`SearchEngine::search_batch`], but returns every query's
    /// individual outcome: one query exhausting its deadline (or hitting
    /// corruption under a surfacing policy) does not poison the rest of
    /// the batch.
    pub fn search_batch_results(
        &self,
        queries: &[Vec<f64>],
        epsilon: f64,
        opts: SearchOptions,
        workers: usize,
    ) -> Vec<Result<SearchResult, EngineError>> {
        let workers = workers.max(1).min(queries.len().max(1));
        if workers == 1 {
            return queries
                .iter()
                .map(|q| self.search(q, epsilon, opts))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let merged = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Work-stealing by atomic claim: threads grab the
                        // next unclaimed query index until none remain.
                        let mut local = Vec::new();
                        loop {
                            // Relaxed: the ticket counter only needs each
                            // claim to be unique; results are published by
                            // the join below, not by this atomic.
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            // analyze::allow(index): `i` was bounds-checked against `queries.len()` two lines up.
                            local.push((i, self.search(&queries[i], epsilon, opts)));
                        }
                        local
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<SearchResult, EngineError>>> =
                (0..queries.len()).map(|_| None).collect();
            for h in handles {
                // analyze::allow(panic): a worker panic is a bug, not a runtime condition — re-raising it here preserves the payload instead of silently dropping that worker's queries.
                for (i, r) in h.join().expect("search worker panicked") {
                    // analyze::allow(index): `i` is a claimed ticket, bounds-checked by the worker before use.
                    merged[i] = Some(r);
                }
            }
            merged
        });
        merged
            .into_iter()
            // analyze::allow(panic): the ticket counter hands every index in 0..len to exactly one worker, so each slot is filled.
            .map(|r| r.expect("every query index was claimed by a worker"))
            .collect()
    }
}

/// SE-transform + optional DFT feature extraction of one window.
fn feature_of(
    extractor: &Option<FeatureExtractor>,
    window: &[f64],
    se_buf: &mut [f64],
) -> Vec<f64> {
    se_transform_into(window, se_buf);
    match extractor {
        Some(fx) => fx.extract(se_buf),
        None => se_buf.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_data::{MarketConfig, MarketSimulator};
    use tsss_geometry::scale_shift::{min_scale_shift_distance, ScaleShift};

    fn market(companies: usize, days: usize) -> Vec<Series> {
        MarketSimulator::new(MarketConfig::small(companies, days, 123)).generate()
    }

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = market(6, 80);
        let cfg = EngineConfig::small(16);
        (SearchEngine::build(&data, cfg).unwrap(), data)
    }

    #[test]
    fn build_indexes_every_window() {
        let (e, data) = engine();
        let expect: usize = data.iter().map(|s| s.len() - 16 + 1).sum();
        assert_eq!(e.num_windows(), expect);
        assert_eq!(e.num_series(), 6);
    }

    #[test]
    fn exact_window_is_found_at_epsilon_zero_with_identity_transform() {
        let (e, data) = engine();
        let q = data[2].window(10, 16).unwrap().to_vec();
        let res = e.search(&q, 1e-7, SearchOptions::default()).unwrap();
        let hit = res
            .matches
            .iter()
            .find(|m| m.id.series == 2 && m.id.offset == 10)
            .expect("the source window must match");
        assert!((hit.transform.a - 1.0).abs() < 1e-6);
        assert!(hit.transform.b.abs() < 1e-4);
        assert!(hit.distance < 1e-7);
    }

    #[test]
    fn scaled_and_shifted_query_finds_its_source() {
        let (e, data) = engine();
        let src = data[4].window(30, 16).unwrap();
        let f = ScaleShift { a: 2.5, b: -40.0 };
        // query = F⁻¹ disguise: we want F'(q) = src with some F'.
        let q = f.apply(src);
        let res = e.search(&q, 1e-6, SearchOptions::default()).unwrap();
        let hit = res
            .matches
            .iter()
            .find(|m| m.id.series == 4 && m.id.offset == 30)
            .expect("source window must be recovered despite the disguise");
        // F'(q) = src ⇒ a' = 1/2.5, b' = 40/2.5 = 16.
        assert!((hit.transform.a - 0.4).abs() < 1e-6);
        assert!((hit.transform.b - 16.0).abs() < 1e-3);
    }

    #[test]
    fn matches_are_sorted_and_within_epsilon() {
        let (e, data) = engine();
        let q = data[0].window(5, 16).unwrap().to_vec();
        let res = e.search(&q, 5.0, SearchOptions::default()).unwrap();
        assert!(!res.matches.is_empty());
        for w in res.matches.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        for m in &res.matches {
            assert!(m.distance <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn reported_transform_achieves_reported_distance() {
        let (e, data) = engine();
        let q = data[1].window(20, 16).unwrap().to_vec();
        let res = e.search(&q, 10.0, SearchOptions::default()).unwrap();
        for m in res.matches.iter().take(20) {
            let raw = data[m.id.series as usize]
                .window(m.id.offset as usize, 16)
                .unwrap();
            let transformed = m.transform.apply(&q);
            let d = tsss_geometry::vector::dist(&transformed, raw);
            assert!((d - m.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn no_false_dismissals_against_brute_force() {
        let (e, data) = engine();
        let q = data[3].window(12, 16).unwrap().to_vec();
        for eps in [0.5, 2.0, 8.0] {
            let got = e.search(&q, eps, SearchOptions::default()).unwrap();
            let got_ids = got.id_set();
            for (si, s) in data.iter().enumerate() {
                for off in 0..=s.len() - 16 {
                    let d = min_scale_shift_distance(&q, s.window(off, 16).unwrap()).unwrap();
                    let id = SubseqId {
                        series: si as u32,
                        offset: off as u32,
                    };
                    assert_eq!(
                        d <= eps,
                        got_ids.contains(&id),
                        "eps {eps}, window {id}, distance {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn cost_limits_filter_transforms() {
        let (e, data) = engine();
        let src = data[0].window(8, 16).unwrap();
        let q = ScaleShift { a: 0.5, b: 3.0 }.apply(src); // recovery needs a = 2
        let permissive = e.search(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(!permissive.matches.is_empty());
        let strict = e
            .search(
                &q,
                1e-6,
                SearchOptions {
                    cost: crate::config::CostLimit {
                        a_range: Some((0.9, 1.1)),
                        b_range: None,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            strict.matches.len() < permissive.matches.len(),
            "cost limit should reject the a = 2 recovery"
        );
        assert!(strict.stats.cost_rejected > 0);
    }

    #[test]
    fn both_penetration_methods_agree() {
        let (e, data) = engine();
        let q = data[5].window(40, 16).unwrap().to_vec();
        for eps in [0.1, 1.0, 6.0] {
            let a = e
                .search(&q, eps, SearchOptions::default())
                .unwrap()
                .id_set();
            let b = e
                .search(
                    &q,
                    eps,
                    SearchOptions {
                        method: tsss_geometry::penetration::PenetrationMethod::BoundingSpheres,
                        ..Default::default()
                    },
                )
                .unwrap()
                .id_set();
            assert_eq!(a, b, "eps {eps}");
        }
    }

    #[test]
    fn wrong_query_length_is_an_error() {
        let (e, _) = engine();
        assert_eq!(
            e.search(&[1.0; 8], 1.0, SearchOptions::default())
                .unwrap_err(),
            EngineError::QueryLength {
                expected: 16,
                got: 8
            }
        );
    }

    #[test]
    fn bad_epsilon_is_an_error() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        for eps in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                e.search(&q, eps, SearchOptions::default()),
                Err(EngineError::InvalidEpsilon(_))
            ));
        }
    }

    #[test]
    fn page_accounting_is_populated() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        let res = e.search(&q, 2.0, SearchOptions::default()).unwrap();
        assert!(res.stats.index_pages > 0, "index traversal reads pages");
        if res.stats.candidates > 0 {
            assert!(res.stats.data_pages > 0, "verification reads data pages");
        }
        assert_eq!(
            res.stats.verified + res.stats.false_alarms + res.stats.cost_rejected,
            res.stats.candidates
        );
    }

    #[test]
    fn all_build_methods_answer_identically() {
        let data = market(4, 60);
        let q = data[1].window(7, 16).unwrap().to_vec();
        let mut engines: Vec<SearchEngine> = [
            crate::config::BuildMethod::BulkStr,
            crate::config::BuildMethod::BulkPolar,
            crate::config::BuildMethod::Insert,
        ]
        .into_iter()
        .map(|build| {
            let mut cfg = EngineConfig::small(16);
            cfg.build = build;
            let mut e = SearchEngine::build(&data, cfg).unwrap();
            e.tree_mut().check_invariants().unwrap();
            e
        })
        .collect();
        for eps in [0.5, 3.0] {
            let reference = engines[0]
                .search(&q, eps, SearchOptions::default())
                .unwrap()
                .id_set();
            for e in engines.iter_mut().skip(1) {
                assert_eq!(
                    e.search(&q, eps, SearchOptions::default())
                        .unwrap()
                        .id_set(),
                    reference,
                    "eps {eps}"
                );
            }
        }
    }

    #[test]
    fn append_series_makes_new_windows_searchable() {
        let (mut e, data) = engine();
        let novel = Series::new(
            "NEW",
            data[0].values.iter().map(|v| v * 3.0 + 7.0).collect(),
        );
        let si = e.append_series(&novel).unwrap();
        let q = novel.window(10, 16).unwrap().to_vec();
        let res = e.search(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series as usize == si && m.id.offset == 10));
    }

    #[test]
    fn append_values_indexes_boundary_windows() {
        let data = vec![Series::new(
            "grow",
            (0..20).map(|i| (i as f64).sin()).collect(),
        )];
        let cfg = EngineConfig::small(16);
        let mut e = SearchEngine::build(&data, cfg).unwrap();
        assert_eq!(e.num_windows(), 5); // 20 − 16 + 1
        let fresh: Vec<f64> = (20..30).map(|i| (i as f64).sin()).collect();
        e.append_values(0, &fresh).unwrap();
        assert_eq!(e.num_windows(), 15); // 30 − 16 + 1
                                         // A window spanning the boundary must be searchable.
        let full: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let q = full[12..28].to_vec();
        let res = e.search(&q, 1e-7, SearchOptions::default()).unwrap();
        assert!(res.matches.iter().any(|m| m.id.offset == 12));
        e.tree_mut().check_invariants().unwrap();
    }

    #[test]
    fn remove_series_windows_unindexes_the_whole_series() {
        let (mut e, data) = engine();
        let before = e.num_windows();
        let per_series = data[1].len() - 16 + 1;
        let removed = e.remove_series_windows(1).unwrap();
        assert_eq!(removed, per_series);
        assert_eq!(e.num_windows(), before - per_series);
        // No query returns series 1 any more.
        let q = data[1].window(5, 16).unwrap().to_vec();
        let res = e.search(&q, 10.0, SearchOptions::default()).unwrap();
        assert!(res.matches.iter().all(|m| m.id.series != 1));
        // Removing again is a no-op; other series still searchable.
        assert_eq!(e.remove_series_windows(1).unwrap(), 0);
        assert!(e.remove_series_windows(99).is_err());
        e.tree_mut().check_invariants().unwrap();
    }

    #[test]
    fn failed_append_indexing_surfaces_unindexed_tail_in_health() {
        let data = vec![Series::new(
            "grow",
            (0..20).map(|i| (i as f64).sin()).collect(),
        )];
        let mut e = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
        assert!(!e.health().append_tail_unindexed);
        assert!(!e.health().repair_recommended());
        // Every index read fails: the mid-append tree insert cannot land,
        // but the data-file append already did.
        e.inject_index_faults(tsss_storage::FaultConfig::read_errors(3, 1.0));
        let fresh: Vec<f64> = (20..30).map(|i| (i as f64).sin()).collect();
        let err = e.append_values(0, &fresh).unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
        // The values are stored but their windows are not searchable — and
        // health says so instead of silently missing them.
        assert_eq!(e.series_len(0).unwrap(), 30);
        assert!(e.num_windows() < 15, "tail windows must be missing");
        let h = e.health();
        assert!(h.append_tail_unindexed);
        assert!(h.repair_recommended());
        // Repair re-indexes everything from the authoritative data file
        // (discarding the faulty index store) and clears the flag.
        e.repair().unwrap();
        assert_eq!(e.num_windows(), 15); // 30 − 16 + 1
        let h = e.health();
        assert!(!h.append_tail_unindexed);
        assert!(!h.repair_recommended());
        let full: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let res = e
            .search(&full[12..28], 1e-7, SearchOptions::default())
            .unwrap();
        assert!(res.matches.iter().any(|m| m.id.offset == 12));
    }

    #[test]
    fn removing_the_norm_holder_stamps_looseness_and_repair_tightens() {
        // Series 1 is much larger in fluctuation than series 0, so it holds
        // the global SE-norm bound.
        let quiet = Series::new("quiet", (0..40).map(|i| (i as f64 * 0.3).sin()).collect());
        let loud = Series::new(
            "loud",
            (0..40).map(|i| (i as f64 * 0.3).sin() * 100.0).collect(),
        );
        let mut e = SearchEngine::build(&[quiet, loud], EngineConfig::small(16)).unwrap();
        let loose_bound = e.max_se_norm();
        assert!(!e.health().max_norm_loose);
        // Removing a non-holder window does not stamp looseness.
        assert!(e
            .remove_window(SubseqId {
                series: 0,
                offset: 0
            })
            .unwrap());
        assert!(!e.health().max_norm_loose);
        // Deleting the loud series removes the bound holder.
        e.remove_series_windows(1).unwrap();
        let h = e.health();
        assert!(h.max_norm_loose);
        assert!(h.repair_recommended());
        // The bound itself is unchanged (still sound, just loose) …
        assert_eq!(e.max_se_norm(), loose_bound);
        // … and repair recomputes it exactly. The loud windows are still in
        // the append-only data file, so the recomputed bound still covers
        // them — but looseness is no longer silent, and after a repair the
        // flag is clear.
        e.repair().unwrap();
        assert!(!e.health().max_norm_loose);
        assert!(!e.health().repair_recommended());
    }

    #[test]
    fn remove_window_unindexes_it() {
        let (mut e, data) = engine();
        let q = data[2].window(10, 16).unwrap().to_vec();
        let id = SubseqId {
            series: 2,
            offset: 10,
        };
        assert!(e.remove_window(id).unwrap());
        assert!(!e.remove_window(id).unwrap(), "already removed");
        let res = e.search(&q, 1e-7, SearchOptions::default()).unwrap();
        assert!(!res.id_set().contains(&id));
    }

    #[test]
    fn full_dimension_mode_works_without_dft() {
        let data = market(3, 50);
        let mut cfg = EngineConfig::small(8);
        cfg.fc = None; // index the 8-d SE windows directly
        let e = SearchEngine::build(&data, cfg).unwrap();
        let q = data[0].window(4, 8).unwrap().to_vec();
        let res = e.search(&q, 1e-7, SearchOptions::default()).unwrap();
        assert!(res
            .matches
            .iter()
            .any(|m| m.id.series == 0 && m.id.offset == 4));
    }

    #[test]
    fn constant_query_matches_flat_windows_only() {
        let mut data = market(2, 40);
        data.push(Series::new("flat", vec![7.0; 40]));
        let cfg = EngineConfig::small(16);
        let e = SearchEngine::build(&data, cfg).unwrap();
        let q = vec![100.0; 16]; // constant query, any level
        let res = e.search(&q, 1e-6, SearchOptions::default()).unwrap();
        assert!(!res.matches.is_empty(), "flat windows exist");
        assert!(
            res.matches.iter().all(|m| m.id.series == 2),
            "only the flat series can match a constant query at eps ~ 0"
        );
    }

    #[test]
    fn constant_query_agrees_with_sequential_scan() {
        // The degenerate shift-only plan must return exactly the windows the
        // brute-force oracle accepts — with the same canonical transforms —
        // at an eps that also admits near-flat market windows.
        let mut data = market(3, 40);
        data.push(Series::new("flat", vec![-3.25; 40]));
        let e = SearchEngine::build(&data, EngineConfig::small(16)).unwrap();
        // A near-constant query below the degeneracy threshold behaves like
        // an exactly-constant one (its SE-direction is rounding noise).
        let mut q = vec![50.0; 16];
        q[7] += 5e-12;
        for eps in [0.0, 0.5, 5.0, 50.0] {
            let idx = e.search(&q, eps, SearchOptions::default()).unwrap();
            let seq = e
                .sequential_search(&q, eps, crate::config::CostLimit::UNLIMITED)
                .unwrap();
            assert_eq!(idx.id_set(), seq.id_set(), "eps {eps}");
            for (a, b) in idx.matches.iter().zip(&seq.matches) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.transform.a, 0.0, "constant query ⇒ shift-only");
                assert_eq!(a.transform, b.transform);
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchEngine>();
    }

    #[test]
    fn batch_results_are_identical_to_serial_for_any_worker_count() {
        let (e, data) = engine();
        let queries: Vec<Vec<f64>> = (0..12)
            .map(|i| data[i % 6].window((i * 5) % 40, 16).unwrap().to_vec())
            .collect();
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|q| e.search(q, 2.0, SearchOptions::default()).unwrap())
            .collect();
        for workers in [0, 1, 2, 4, 8, 64] {
            let batch = e
                .search_batch(&queries, 2.0, SearchOptions::default(), workers)
                .unwrap();
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                assert_eq!(b.matches, s.matches, "workers {workers}");
                assert_eq!(
                    b.stats.index_pages, s.stats.index_pages,
                    "workers {workers}"
                );
                assert_eq!(b.stats.data_pages, s.stats.data_pages, "workers {workers}");
                assert_eq!(b.stats.candidates, s.stats.candidates, "workers {workers}");
            }
        }
    }

    #[test]
    fn batch_per_query_pages_sum_to_the_global_counters() {
        let (e, data) = engine();
        let queries: Vec<Vec<f64>> = (0..9)
            .map(|i| data[i % 6].window((i * 7) % 30, 16).unwrap().to_vec())
            .collect();
        e.reset_counters();
        let batch = e
            .search_batch(&queries, 3.0, SearchOptions::default(), 4)
            .unwrap();
        let index_sum: u64 = batch.iter().map(|r| r.stats.index_pages).sum();
        let data_sum: u64 = batch.iter().map(|r| r.stats.data_pages).sum();
        assert_eq!(index_sum, e.index_stats().total_accesses());
        assert_eq!(data_sum, e.data_stats().total_accesses());
    }

    #[test]
    fn corrupt_index_degrades_to_sequential_scan_with_flag() {
        let (mut e, data) = engine();
        let q = data[2].window(10, 16).unwrap().to_vec();
        let healthy = e.search(&q, 2.0, SearchOptions::default()).unwrap();
        assert!(!healthy.stats.degraded);
        // Smash every live index page: the traversal hits corruption at the
        // root. (Free pages reject corruption with a typed error — ignore.)
        for p in 0..e.index_extent() as u32 {
            let _ = e.corrupt_index_page(p, &mut |b| b[0] ^= 0xFF);
        }
        let degraded = e.search(&q, 2.0, SearchOptions::default()).unwrap();
        assert!(degraded.stats.degraded, "fallback must be flagged");
        assert!(degraded.stats.degraded_reason.is_some());
        assert_eq!(degraded.id_set(), healthy.id_set());
        let oracle = e
            .sequential_search(&q, 2.0, crate::config::CostLimit::UNLIMITED)
            .unwrap();
        assert_eq!(degraded.matches, oracle.matches);
        // Under the Error policy the same damage surfaces as a typed error.
        let err = e
            .search(
                &q,
                2.0,
                SearchOptions {
                    degradation: crate::config::DegradationPolicy::Error,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
    }

    #[test]
    fn page_budget_is_a_hard_error_never_degraded() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        // Zero budget rejects even the root visit — and must NOT fall back
        // to the scan, whose whole point the budget would defeat.
        let err = e
            .search(
                &q,
                2.0,
                SearchOptions {
                    page_budget: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, EngineError::PageBudgetExceeded { budget: 0 });
        // A generous budget answers identically to unlimited.
        let capped = e
            .search(
                &q,
                2.0,
                SearchOptions {
                    page_budget: Some(1_000_000),
                    ..Default::default()
                },
            )
            .unwrap();
        let free = e.search(&q, 2.0, SearchOptions::default()).unwrap();
        assert_eq!(capped.matches, free.matches);
        assert!(!capped.stats.degraded);
    }

    #[test]
    fn injected_read_faults_degrade_exactly_and_never_panic() {
        let (mut e, data) = engine();
        let q = data[1].window(6, 16).unwrap().to_vec();
        let oracle = e
            .sequential_search(&q, 2.0, crate::config::CostLimit::UNLIMITED)
            .unwrap();
        let counters = e.inject_index_faults(tsss_storage::FaultConfig::read_errors(7, 0.3));
        let mut degraded_seen = false;
        for _ in 0..20 {
            let res = e.search(&q, 2.0, SearchOptions::default()).unwrap();
            assert_eq!(res.id_set(), oracle.id_set());
            degraded_seen |= res.stats.degraded;
        }
        assert!(degraded_seen, "30 % read faults over 20 queries must fire");
        assert!(counters.read_errors() > 0);
    }

    #[test]
    fn batch_propagates_per_query_errors() {
        let (e, data) = engine();
        let queries = vec![
            data[0].window(0, 16).unwrap().to_vec(),
            vec![1.0; 8], // wrong length
        ];
        assert!(matches!(
            e.search_batch(&queries, 1.0, SearchOptions::default(), 4),
            Err(EngineError::QueryLength { .. })
        ));
        let empty = e
            .search_batch(&[], 1.0, SearchOptions::default(), 4)
            .unwrap();
        assert!(empty.is_empty());
    }
}
