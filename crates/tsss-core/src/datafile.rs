//! The paged raw-series data file.
//!
//! The paper's Figure 5 charges the sequential scan
//! `0.65 M values × 8 B / 4 KB ≈ 1300` page reads — i.e. the raw values live
//! densely packed in pages, in arrival order, regardless of series
//! boundaries. [`PagedSeriesStore`] reproduces that layout exactly: an
//! append-only log of `f64`s, 512 per 4 KB page, with per-series **extent**
//! lists mapping `(series, offset)` ranges onto global positions (so series
//! can keep growing after others were added — the paper's "data are
//! collected regularly" requirement — without disturbing the dense packing).
//!
//! All reads go through the buffer pool, so the post-processing
//! (verification) I/O of the tree search and the full-file I/O of the
//! sequential scan are both measured in real page accesses.
//!
//! Persistence uses format `TSSSDF02`: an 8-byte versioned magic, a
//! CRC-checked metadata block (catalogue, extent tables, page ids), then the
//! page file with its own per-page checksums. Loading re-validates every
//! structural invariant the read path relies on — extent contiguity, page-id
//! range, page/value arithmetic — so a corrupt file surfaces as
//! `InvalidData`, never as a panic or a wrong answer.

// analyze::allow-file(index): `names`/`lengths`/`extents` are parallel vectors mutated together, and every public entry point validates the series index against `names.len()` before touching the others; page indices come from `pos / values_per_page` arithmetic bounded by allocation in `append_globally`, and `read_from` re-validates page ids and extent coverage before the vectors are trusted.

use tsss_storage::codec::{
    expect_versioned_magic, get_checked_block, get_string, get_u32, get_usize, put_checked_block,
    put_magic, put_string, put_u32, put_usize, versioned_magic,
};
use tsss_storage::{BufferPool, Page, PageFile, PageId, ReadAhead};

use crate::error::EngineError;

/// Magic prefix of the persisted data-file format.
const MAGIC_PREFIX: &[u8; 6] = b"TSSSDF";
/// Current format version (`TSSSDF02`).
const VERSION: u8 = 2;
/// Upper bound on the metadata block (catalogue + extent tables); sized for
/// heavily fragmented multi-series data sets.
const MAX_META_BYTES: usize = 1 << 26;

/// One contiguous run of a series' values in the global log.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Extent {
    /// Offset of the run's first value within its series.
    series_offset: usize,
    /// Global position of the run's first value.
    global_start: usize,
    /// Number of values in the run.
    len: usize,
}

/// Append-only paged store of time-series values.
#[derive(Debug)]
pub struct PagedSeriesStore {
    pool: BufferPool,
    pages: Vec<PageId>,
    values_per_page: usize,
    total: usize,
    names: Vec<String>,
    extents: Vec<Vec<Extent>>,
    lengths: Vec<usize>,
}

impl PagedSeriesStore {
    /// Creates an empty store with the given page size and buffer capacity.
    ///
    /// # Panics
    /// Panics when a page cannot hold at least one value.
    pub fn new(page_size: usize, buffer_frames: usize) -> Self {
        assert!(
            page_size >= 8 && page_size.is_multiple_of(8),
            "page size must be a positive multiple of 8 bytes"
        );
        // analyze::allow(panic): the assert directly above established the documented `# Panics` precondition PageFile::new checks.
        let file = PageFile::new(page_size).expect("page size was just validated");
        Self {
            pool: BufferPool::new(file, buffer_frames),
            pages: Vec::new(),
            values_per_page: page_size / 8,
            total: 0,
            names: Vec::new(),
            extents: Vec::new(),
            lengths: Vec::new(),
        }
    }

    /// Number of series.
    pub fn num_series(&self) -> usize {
        self.names.len()
    }

    /// Length (in values) of series `s`.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index.
    pub fn series_len(&self, s: usize) -> Result<usize, EngineError> {
        self.lengths
            .get(s)
            .copied()
            .ok_or(EngineError::UnknownSeries(s))
    }

    /// Name of series `s`.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index.
    pub fn series_name(&self, s: usize) -> Result<&str, EngineError> {
        self.names
            .get(s)
            .map(String::as_str)
            .ok_or(EngineError::UnknownSeries(s))
    }

    /// Total stored values across all series.
    pub fn total_values(&self) -> usize {
        self.total
    }

    /// Number of data pages — what a sequential scan must read
    /// (`⌈total · 8 / page_size⌉`, the paper's ≈ 1300).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Shared page-access counters of the data file.
    pub fn stats(&self) -> std::sync::Arc<tsss_storage::AccessStats> {
        self.pool.stats()
    }

    /// Drops buffered frames so the next access pattern starts cold.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when flushing a dirty frame fails.
    pub fn clear_cache(&self) -> Result<(), EngineError> {
        self.pool.clear_cache()?;
        Ok(())
    }

    /// Wraps the underlying page store — the hook the fault-injection layer
    /// uses to interpose on data-file I/O.
    pub fn wrap_store(
        &mut self,
        wrap: impl FnOnce(Box<dyn tsss_storage::PageStore>) -> Box<dyn tsss_storage::PageStore>,
    ) {
        self.pool.wrap_store(wrap);
    }

    /// Mutates the raw bytes of the `nth` data page in place, bypassing the
    /// checksum layer — corruption-testing hook.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`]-style range errors surface as
    /// [`EngineError::Corrupt`] via the storage layer.
    pub fn corrupt_page(
        &mut self,
        nth: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), EngineError> {
        let &pid = self.pages.get(nth).ok_or(EngineError::Corrupt {
            detail: format!("data page index {nth} out of range"),
            page: None,
        })?;
        self.pool.corrupt_page(pid, f)?;
        Ok(())
    }

    /// Registers a new, empty series and returns its index.
    pub fn add_series(&mut self, name: impl Into<String>) -> usize {
        self.names.push(name.into());
        self.extents.push(Vec::new());
        self.lengths.push(0);
        self.names.len() - 1
    }

    /// Appends values to an existing series (the paper's "data sequences are
    /// collected regularly").
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index;
    /// [`EngineError::Corrupt`] when the storage layer fails mid-append.
    pub fn append(&mut self, series: usize, values: &[f64]) -> Result<(), EngineError> {
        if series >= self.names.len() {
            return Err(EngineError::UnknownSeries(series));
        }
        if values.is_empty() {
            return Ok(());
        }
        let global_start = self.append_globally(values)?;
        let series_offset = self.lengths[series];
        // Merge with the previous extent when the run is contiguous both in
        // the series and in the log (the common build-time case).
        let extents = &mut self.extents[series];
        if let Some(last) = extents.last_mut() {
            if last.series_offset + last.len == series_offset
                && last.global_start + last.len == global_start
            {
                last.len += values.len();
                self.lengths[series] += values.len();
                return Ok(());
            }
        }
        extents.push(Extent {
            series_offset,
            global_start,
            len: values.len(),
        });
        self.lengths[series] += values.len();
        Ok(())
    }

    /// Convenience: add a named series with initial contents.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when the storage layer fails mid-append.
    pub fn add_series_with_values(
        &mut self,
        name: impl Into<String>,
        values: &[f64],
    ) -> Result<usize, EngineError> {
        let s = self.add_series(name);
        self.append(s, values)?;
        Ok(s)
    }

    fn append_globally(&mut self, values: &[f64]) -> Result<usize, EngineError> {
        let start = self.total;
        let vpp = self.values_per_page;
        let mut pos = start;
        let mut remaining = values;
        while !remaining.is_empty() {
            let page_idx = pos / vpp;
            let slot = pos % vpp;
            if page_idx == self.pages.len() {
                self.pages.push(self.pool.allocate()?);
            }
            let page_id = self.pages[page_idx];
            let take = (vpp - slot).min(remaining.len());
            // Read-modify-write of the tail page (a fresh page is zeroed, so
            // reading it is still well-defined).
            let mut page = if slot == 0 {
                Page::zeroed(vpp * 8)
            } else {
                self.pool.read(page_id)?
            };
            page.put_f64_slice(slot * 8, &remaining[..take]);
            self.pool.write(page_id, page)?;
            pos += take;
            remaining = &remaining[take..];
        }
        self.total = pos;
        Ok(start)
    }

    /// Fetches the window `series[offset .. offset + len]`, charging one read
    /// per distinct page touched.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad series index;
    /// [`EngineError::Corrupt`] when the window runs past the end of the
    /// series or the extent table does not cover it (a corrupt index can
    /// request windows that were never appended), or when the storage layer
    /// detects page damage.
    pub fn fetch_window(
        &self,
        series: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<f64>, EngineError> {
        let mut out = Vec::with_capacity(len);
        self.fetch_window_into(series, offset, len, &mut out)?;
        Ok(out)
    }

    /// Like [`PagedSeriesStore::fetch_window`], but appends into a
    /// caller-owned buffer so the verification hot loop can reuse one
    /// allocation across candidates. The buffer is cleared first; its
    /// contents are unspecified after an error.
    ///
    /// # Errors
    /// Same contract as [`PagedSeriesStore::fetch_window`].
    pub fn fetch_window_into(
        &self,
        series: usize,
        offset: usize,
        len: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), EngineError> {
        out.clear();
        if series >= self.names.len() {
            return Err(EngineError::UnknownSeries(series));
        }
        let corrupt = |detail: String| EngineError::Corrupt { detail, page: None };
        let end = offset.saturating_add(len);
        if end > self.lengths[series] {
            return Err(corrupt(format!(
                "window [{offset}, {end}) exceeds series {series} of length {}",
                self.lengths[series]
            )));
        }
        if len == 0 {
            return Ok(());
        }
        out.reserve(len);
        let extents = &self.extents[series];
        // Locate the first extent containing `offset`.
        let mut idx = match extents.binary_search_by(|e| e.series_offset.cmp(&offset)) {
            Ok(i) => i,
            Err(0) => {
                return Err(corrupt(format!(
                    "no extent covers offset {offset} of series {series}"
                )))
            }
            Err(i) => i - 1, // the extent starting before `offset`
        };
        let mut want = offset;
        let mut last_page: Option<usize> = None;
        let mut cached_page: Option<Page> = None;
        while want < end {
            let e = extents.get(idx).ok_or_else(|| {
                corrupt(format!(
                    "extent table of series {series} ends before offset {want}"
                ))
            })?;
            if !(e.series_offset <= want && want < e.series_offset + e.len) {
                return Err(corrupt(format!(
                    "extent table of series {series} is not contiguous at offset {want}"
                )));
            }
            let within = want - e.series_offset;
            let run = (e.len - within).min(end - want);
            let gstart = e.global_start + within;
            let gend = gstart + run;
            // Decode the run page by page as contiguous byte slices; the
            // cached page (and the read charge) persists across extent runs,
            // exactly like the old value-at-a-time loop.
            let mut g = gstart;
            while g < gend {
                let page_idx = g / self.values_per_page;
                let slot = g % self.values_per_page;
                let take = (self.values_per_page - slot).min(gend - g);
                if last_page != Some(page_idx) {
                    let &pid = self.pages.get(page_idx).ok_or_else(|| {
                        corrupt(format!(
                            "global position {g} lies past the data file's {} pages",
                            self.pages.len()
                        ))
                    })?;
                    cached_page = Some(self.pool.read(pid)?);
                    last_page = Some(page_idx);
                }
                // analyze::allow(panic): `cached_page` is assigned whenever `last_page` changes, and `last_page` starts None, so the first iteration always fills it.
                let page = cached_page.as_ref().expect("just cached");
                page.extend_f64_slice(slot * 8, take, out);
                g += take;
            }
            want += run;
            idx += 1;
        }
        Ok(())
    }

    /// Serialises the store (catalogue + page file) to a writer.
    ///
    /// # Errors
    /// Propagates I/O errors; storage-layer failures (a dirty frame that no
    /// longer verifies) surface as `InvalidData`.
    pub fn write_to<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        put_magic(w, &versioned_magic(MAGIC_PREFIX, VERSION))?;
        let mut meta = Vec::new();
        put_usize(&mut meta, self.values_per_page)?;
        put_usize(&mut meta, self.total)?;
        put_usize(&mut meta, self.names.len())?;
        for i in 0..self.names.len() {
            put_string(&mut meta, &self.names[i])?;
            put_usize(&mut meta, self.lengths[i])?;
            put_usize(&mut meta, self.extents[i].len())?;
            for e in &self.extents[i] {
                put_usize(&mut meta, e.series_offset)?;
                put_usize(&mut meta, e.global_start)?;
                put_usize(&mut meta, e.len)?;
            }
        }
        put_usize(&mut meta, self.pages.len())?;
        for p in &self.pages {
            put_u32(&mut meta, p.0)?;
        }
        put_checked_block(w, &meta)?;
        // `&mut W` is itself a sized `Write`, which is what lets a
        // possibly-unsized `W` reach `persist(&mut dyn Write)`.
        let mut sink: &mut W = w;
        self.pool
            .with_store(|s| s.persist(&mut sink))
            .map_err(std::io::Error::from)?
    }

    /// Reads a store previously written by [`PagedSeriesStore::write_to`].
    ///
    /// Every structural invariant the read path relies on is re-validated:
    /// extent tables must tile each series contiguously and stay inside the
    /// global log, page ids must be distinct and in range, and the page /
    /// value arithmetic must agree with the page file.
    ///
    /// # Errors
    /// `InvalidData` on malformed or corrupt input; propagates I/O errors.
    pub fn read_from<R: std::io::Read + ?Sized>(
        r: &mut R,
        buffer_frames: usize,
    ) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        expect_versioned_magic(r, MAGIC_PREFIX, VERSION)?;
        let meta = get_checked_block(r, MAX_META_BYTES)?;
        let m = &mut std::io::Cursor::new(meta);
        let values_per_page = get_usize(m)?;
        let total = get_usize(m)?;
        let n_series = get_usize(m)?;
        let mut names = Vec::new();
        let mut lengths = Vec::new();
        let mut extents = Vec::new();
        for _ in 0..n_series {
            names.push(get_string(m)?);
            lengths.push(get_usize(m)?);
            let n_ext = get_usize(m)?;
            let mut es = Vec::new();
            for _ in 0..n_ext {
                es.push(Extent {
                    series_offset: get_usize(m)?,
                    global_start: get_usize(m)?,
                    len: get_usize(m)?,
                });
            }
            extents.push(es);
        }
        let n_pages = get_usize(m)?;
        let mut pages = Vec::new();
        for _ in 0..n_pages {
            pages.push(PageId(get_u32(m)?));
        }
        let file = PageFile::read_from(r)?;
        if file.page_size() < 8
            || !file.page_size().is_multiple_of(8)
            || file.page_size() / 8 != values_per_page
        {
            return Err(invalid(
                "page size disagrees with values-per-page".to_string(),
            ));
        }
        if total.div_ceil(values_per_page) != pages.len() {
            return Err(invalid("page count disagrees with value count".to_string()));
        }
        let mut seen = vec![false; file.extent()];
        for &p in &pages {
            let i = p.0 as usize;
            if p == PageId::INVALID || i >= file.extent() {
                return Err(invalid(format!("data page id {} is out of range", p.0)));
            }
            if std::mem::replace(&mut seen[i], true) {
                return Err(invalid(format!("data page id {} appears twice", p.0)));
            }
        }
        for (s, (es, &len)) in extents.iter().zip(&lengths).enumerate() {
            let mut run = 0usize;
            for e in es {
                if e.len == 0 || e.series_offset != run {
                    return Err(invalid(format!(
                        "extent table of series {s} is not contiguous"
                    )));
                }
                let gend = e
                    .global_start
                    .checked_add(e.len)
                    .ok_or_else(|| invalid(format!("extent of series {s} overflows")))?;
                if gend > total {
                    return Err(invalid(format!(
                        "extent of series {s} runs past the global log"
                    )));
                }
                run = run
                    .checked_add(e.len)
                    .ok_or_else(|| invalid(format!("extent table of series {s} overflows")))?;
            }
            if run != len {
                return Err(invalid(format!(
                    "series {s} length {len} disagrees with its extent table"
                )));
            }
        }
        Ok(Self {
            pool: BufferPool::new(file, buffer_frames),
            pages,
            values_per_page,
            total,
            names,
            extents,
            lengths,
        })
    }

    /// Reads the whole file page by page — exactly once per page — and
    /// reassembles every series. This is the I/O pattern of the sequential
    /// scan baseline (paper experiment set 1).
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when the storage layer detects page damage.
    pub fn read_everything(&self) -> Result<Vec<Vec<f64>>, EngineError> {
        // One pass over the global log: read-ahead batches the page fetches
        // and each page decodes as one contiguous byte run. Each page is
        // still charged exactly once, in order, so the Figure 5 page counts
        // are untouched.
        let mut global = Vec::with_capacity(self.total);
        let mut scan = ReadAhead::new(&self.pool, &self.pages);
        let mut i = 0usize;
        while let Some(page) = scan.next_page()? {
            let in_page = (self.total - i * self.values_per_page).min(self.values_per_page);
            page.extend_f64_slice(0, in_page, &mut global);
            i += 1;
        }
        // Reassemble per series from extents.
        self.extents
            .iter()
            .zip(&self.lengths)
            .enumerate()
            .map(|(s, (extents, &len))| {
                let mut v = Vec::with_capacity(len);
                for e in extents {
                    let gend = e
                        .global_start
                        .checked_add(e.len)
                        .filter(|&gend| gend <= global.len())
                        .ok_or_else(|| EngineError::Corrupt {
                            detail: format!("extent of series {s} runs past the global log"),
                            page: None,
                        })?;
                    v.extend_from_slice(&global[e.global_start..gend]);
                }
                debug_assert_eq!(v.len(), len);
                Ok(v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PagedSeriesStore {
        PagedSeriesStore::new(64, 0) // 8 values per page — forces spanning
    }

    #[test]
    fn empty_store() {
        let s = store();
        assert_eq!(s.num_series(), 0);
        assert_eq!(s.total_values(), 0);
        assert_eq!(s.page_count(), 0);
    }

    #[test]
    fn add_and_fetch_within_one_page() {
        let mut s = store();
        let a = s
            .add_series_with_values("a", &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert_eq!(s.fetch_window(a, 1, 2).unwrap(), vec![2.0, 3.0]);
        assert_eq!(s.series_len(a).unwrap(), 4);
        assert_eq!(s.series_name(a).unwrap(), "a");
    }

    #[test]
    fn windows_spanning_pages() {
        let mut s = store();
        let vals: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = s.add_series_with_values("a", &vals).unwrap();
        assert_eq!(s.page_count(), 4); // 30 values / 8 per page
        for off in 0..=20 {
            assert_eq!(s.fetch_window(a, off, 10).unwrap(), vals[off..off + 10]);
        }
    }

    #[test]
    fn interleaved_appends_create_extents() {
        let mut s = store();
        let a = s.add_series("a");
        let b = s.add_series("b");
        s.append(a, &[1.0, 2.0, 3.0]).unwrap();
        s.append(b, &[10.0, 20.0]).unwrap();
        s.append(a, &[4.0, 5.0, 6.0]).unwrap(); // non-contiguous in the log
        s.append(b, &[30.0]).unwrap();
        assert_eq!(
            s.fetch_window(a, 0, 6).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert_eq!(s.fetch_window(a, 2, 3).unwrap(), vec![3.0, 4.0, 5.0]);
        assert_eq!(s.fetch_window(b, 0, 3).unwrap(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn contiguous_appends_merge_extents() {
        let mut s = store();
        let a = s.add_series("a");
        s.append(a, &[1.0, 2.0]).unwrap();
        s.append(a, &[3.0, 4.0]).unwrap(); // still contiguous in the log
        assert_eq!(s.extents[a].len(), 1, "extents should merge");
        assert_eq!(s.fetch_window(a, 0, 4).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn read_everything_reassembles_and_charges_each_page_once() {
        let mut s = store();
        let a = s.add_series("a");
        let b = s.add_series("b");
        s.append(a, &(0..13).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(b, &(100..120).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(a, &(13..20).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.stats().reset();
        let all = s.read_everything().unwrap();
        assert_eq!(s.stats().reads(), s.page_count() as u64);
        assert_eq!(all[a], (0..20).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(all[b], (100..120).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn fetch_window_charges_distinct_pages() {
        let mut s = store();
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let a = s.add_series_with_values("a", &vals).unwrap();
        s.stats().reset();
        // Window of 10 values starting at 6 spans pages 0 and 1 (8 values per page).
        let _ = s.fetch_window(a, 6, 10).unwrap();
        assert_eq!(s.stats().reads(), 2);
    }

    #[test]
    fn unknown_series_is_an_error() {
        let mut s = store();
        assert_eq!(
            s.fetch_window(0, 0, 1).unwrap_err(),
            EngineError::UnknownSeries(0)
        );
        assert_eq!(s.series_len(3).unwrap_err(), EngineError::UnknownSeries(3));
        assert_eq!(
            s.append(1, &[1.0]).unwrap_err(),
            EngineError::UnknownSeries(1)
        );
    }

    #[test]
    fn overlong_window_is_a_typed_error() {
        let mut s = store();
        let a = s.add_series_with_values("a", &[1.0, 2.0]).unwrap();
        let err = s.fetch_window(a, 1, 5).unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
        assert!(err.to_string().contains("exceeds series"), "{err}");
    }

    #[test]
    fn corrupt_data_page_is_detected_at_read_time() {
        let mut s = store();
        let a = s
            .add_series_with_values("a", &(0..20).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.corrupt_page(1, &mut |bytes| bytes[3] ^= 0x40).unwrap();
        // Page 0 still reads fine; page 1 fails the checksum.
        assert!(s.fetch_window(a, 0, 8).is_ok());
        let err = s.fetch_window(a, 8, 8).unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
        assert!(s.read_everything().unwrap_err().is_corruption());
    }

    #[test]
    fn paper_page_arithmetic() {
        // 4 KB pages hold 512 values; 650 000 values need 1270 pages —
        // the paper rounds to "≈ 1300".
        let mut s = PagedSeriesStore::new(4096, 0);
        let a = s.add_series("big");
        let chunk = vec![1.5; 10_000];
        for _ in 0..65 {
            s.append(a, &chunk).unwrap();
        }
        assert_eq!(s.total_values(), 650_000);
        assert_eq!(s.page_count(), 650_000usize.div_ceil(512));
        assert_eq!(s.page_count(), 1270);
    }

    fn sample() -> PagedSeriesStore {
        let mut s = store();
        let a = s.add_series("alpha");
        let b = s.add_series("beta");
        s.append(a, &(0..13).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(b, &(100..120).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(a, &(13..20).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s
    }

    #[test]
    fn write_read_roundtrip() {
        let s = sample();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        let back = PagedSeriesStore::read_from(&mut std::io::Cursor::new(buf), 0).unwrap();
        assert_eq!(back.num_series(), 2);
        assert_eq!(back.series_name(0).unwrap(), "alpha");
        assert_eq!(
            back.read_everything().unwrap(),
            s.read_everything().unwrap()
        );
    }

    #[test]
    fn old_version_is_rejected_with_a_version_message() {
        let s = sample();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        buf[6] = b'0';
        buf[7] = b'1';
        let err = PagedSeriesStore::read_from(&mut std::io::Cursor::new(buf), 0).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let s = sample();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        for cut in [0, 3, 8, 20, 100, buf.len() / 2, buf.len() - 1] {
            let short = buf[..cut].to_vec();
            assert!(
                PagedSeriesStore::read_from(&mut std::io::Cursor::new(short), 0).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn sampled_bit_flips_anywhere_in_the_stream_are_rejected() {
        let s = sample();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        for pos in (0..buf.len()).step_by(37) {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << (pos % 8);
            assert!(
                PagedSeriesStore::read_from(&mut std::io::Cursor::new(bad), 0).is_err(),
                "bit flip at byte {pos} must be detected"
            );
        }
    }

    #[test]
    fn hostile_page_table_is_rejected() {
        let s = sample();
        // Re-encode with an out-of-range page id but a valid block CRC —
        // the structural validation, not the checksum, must catch it.
        let mut buf = Vec::new();
        put_magic(&mut buf, &versioned_magic(MAGIC_PREFIX, VERSION)).unwrap();
        let mut meta = Vec::new();
        put_usize(&mut meta, s.values_per_page).unwrap();
        put_usize(&mut meta, 8).unwrap(); // one page worth of values
        put_usize(&mut meta, 1).unwrap();
        put_string(&mut meta, "alpha").unwrap();
        put_usize(&mut meta, 8).unwrap();
        put_usize(&mut meta, 1).unwrap();
        for v in [0usize, 0, 8] {
            put_usize(&mut meta, v).unwrap();
        }
        put_usize(&mut meta, 1).unwrap();
        put_u32(&mut meta, 999).unwrap(); // page id far past the file extent
        put_checked_block(&mut buf, &meta).unwrap();
        s.pool
            .with_store(|st| st.persist(&mut buf))
            .unwrap()
            .unwrap();
        let err = PagedSeriesStore::read_from(&mut std::io::Cursor::new(buf), 0).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn inconsistent_extent_table_is_rejected() {
        let s = sample();
        let mut buf = Vec::new();
        put_magic(&mut buf, &versioned_magic(MAGIC_PREFIX, VERSION)).unwrap();
        let mut meta = Vec::new();
        put_usize(&mut meta, s.values_per_page).unwrap();
        put_usize(&mut meta, 8).unwrap();
        put_usize(&mut meta, 1).unwrap();
        put_string(&mut meta, "alpha").unwrap();
        put_usize(&mut meta, 8).unwrap();
        put_usize(&mut meta, 1).unwrap();
        // Extent starts at series offset 4, so [0, 4) is uncovered.
        for v in [4usize, 0, 4] {
            put_usize(&mut meta, v).unwrap();
        }
        put_usize(&mut meta, 1).unwrap();
        put_u32(&mut meta, 0).unwrap();
        put_checked_block(&mut buf, &meta).unwrap();
        s.pool
            .with_store(|st| st.persist(&mut buf))
            .unwrap()
            .unwrap();
        let err = PagedSeriesStore::read_from(&mut std::io::Cursor::new(buf), 0).unwrap_err();
        assert!(
            err.to_string().contains("not contiguous") || err.to_string().contains("disagrees"),
            "{err}"
        );
    }
}
