//! The paged raw-series data file.
//!
//! The paper's Figure 5 charges the sequential scan
//! `0.65 M values × 8 B / 4 KB ≈ 1300` page reads — i.e. the raw values live
//! densely packed in pages, in arrival order, regardless of series
//! boundaries. [`PagedSeriesStore`] reproduces that layout exactly: an
//! append-only log of `f64`s, 512 per 4 KB page, with per-series **extent**
//! lists mapping `(series, offset)` ranges onto global positions (so series
//! can keep growing after others were added — the paper's "data are
//! collected regularly" requirement — without disturbing the dense packing).
//!
//! All reads go through the buffer pool, so the post-processing
//! (verification) I/O of the tree search and the full-file I/O of the
//! sequential scan are both measured in real page accesses.

use tsss_storage::{BufferPool, Page, PageFile, PageId};

use crate::error::EngineError;

/// One contiguous run of a series' values in the global log.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Extent {
    /// Offset of the run's first value within its series.
    series_offset: usize,
    /// Global position of the run's first value.
    global_start: usize,
    /// Number of values in the run.
    len: usize,
}

/// Append-only paged store of time-series values.
#[derive(Debug)]
pub struct PagedSeriesStore {
    pool: BufferPool,
    pages: Vec<PageId>,
    values_per_page: usize,
    total: usize,
    names: Vec<String>,
    extents: Vec<Vec<Extent>>,
    lengths: Vec<usize>,
}

impl PagedSeriesStore {
    /// Creates an empty store with the given page size and buffer capacity.
    ///
    /// # Panics
    /// Panics when a page cannot hold at least one value.
    pub fn new(page_size: usize, buffer_frames: usize) -> Self {
        assert!(
            page_size >= 8 && page_size.is_multiple_of(8),
            "page size must be a positive multiple of 8 bytes"
        );
        let file = PageFile::new(page_size);
        Self {
            pool: BufferPool::new(file, buffer_frames),
            pages: Vec::new(),
            values_per_page: page_size / 8,
            total: 0,
            names: Vec::new(),
            extents: Vec::new(),
            lengths: Vec::new(),
        }
    }

    /// Number of series.
    pub fn num_series(&self) -> usize {
        self.names.len()
    }

    /// Length (in values) of series `s`.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index.
    pub fn series_len(&self, s: usize) -> Result<usize, EngineError> {
        self.lengths
            .get(s)
            .copied()
            .ok_or(EngineError::UnknownSeries(s))
    }

    /// Name of series `s`.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index.
    pub fn series_name(&self, s: usize) -> Result<&str, EngineError> {
        self.names
            .get(s)
            .map(String::as_str)
            .ok_or(EngineError::UnknownSeries(s))
    }

    /// Total stored values across all series.
    pub fn total_values(&self) -> usize {
        self.total
    }

    /// Number of data pages — what a sequential scan must read
    /// (`⌈total · 8 / page_size⌉`, the paper's ≈ 1300).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Shared page-access counters of the data file.
    pub fn stats(&self) -> std::sync::Arc<tsss_storage::AccessStats> {
        self.pool.stats()
    }

    /// Drops buffered frames so the next access pattern starts cold.
    pub fn clear_cache(&self) {
        self.pool.clear_cache();
    }

    /// Registers a new, empty series and returns its index.
    pub fn add_series(&mut self, name: impl Into<String>) -> usize {
        self.names.push(name.into());
        self.extents.push(Vec::new());
        self.lengths.push(0);
        self.names.len() - 1
    }

    /// Appends values to an existing series (the paper's "data sequences are
    /// collected regularly").
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for an out-of-range index.
    pub fn append(&mut self, series: usize, values: &[f64]) -> Result<(), EngineError> {
        if series >= self.names.len() {
            return Err(EngineError::UnknownSeries(series));
        }
        if values.is_empty() {
            return Ok(());
        }
        let global_start = self.append_globally(values);
        let series_offset = self.lengths[series];
        // Merge with the previous extent when the run is contiguous both in
        // the series and in the log (the common build-time case).
        let extents = &mut self.extents[series];
        if let Some(last) = extents.last_mut() {
            if last.series_offset + last.len == series_offset
                && last.global_start + last.len == global_start
            {
                last.len += values.len();
                self.lengths[series] += values.len();
                return Ok(());
            }
        }
        extents.push(Extent {
            series_offset,
            global_start,
            len: values.len(),
        });
        self.lengths[series] += values.len();
        Ok(())
    }

    /// Convenience: add a named series with initial contents.
    pub fn add_series_with_values(&mut self, name: impl Into<String>, values: &[f64]) -> usize {
        let s = self.add_series(name);
        self.append(s, values).expect("fresh series exists");
        s
    }

    fn append_globally(&mut self, values: &[f64]) -> usize {
        let start = self.total;
        let vpp = self.values_per_page;
        let mut pos = start;
        let mut remaining = values;
        while !remaining.is_empty() {
            let page_idx = pos / vpp;
            let slot = pos % vpp;
            if page_idx == self.pages.len() {
                self.pages.push(self.pool.allocate());
            }
            let page_id = self.pages[page_idx];
            let take = (vpp - slot).min(remaining.len());
            // Read-modify-write of the tail page (a fresh page is zeroed, so
            // reading it is still well-defined).
            let mut page = if slot == 0 {
                Page::zeroed(vpp * 8)
            } else {
                self.pool.read(page_id)
            };
            page.put_f64_slice(slot * 8, &remaining[..take]);
            self.pool.write(page_id, page);
            pos += take;
            remaining = &remaining[take..];
        }
        self.total = pos;
        start
    }

    /// Fetches the window `series[offset .. offset + len]`, charging one read
    /// per distinct page touched.
    ///
    /// # Errors
    /// [`EngineError::UnknownSeries`] for a bad series index.
    ///
    /// # Panics
    /// Panics when the window runs past the end of a known series — the
    /// engine only requests windows it indexed, so that is a bug, not a data
    /// condition.
    pub fn fetch_window(
        &self,
        series: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<f64>, EngineError> {
        if series >= self.names.len() {
            return Err(EngineError::UnknownSeries(series));
        }
        assert!(
            offset + len <= self.lengths[series],
            "window [{offset}, {}) exceeds series {series} of length {}",
            offset + len,
            self.lengths[series]
        );
        let mut out = Vec::with_capacity(len);
        let extents = &self.extents[series];
        // Locate the first extent containing `offset`.
        let mut idx = match extents.binary_search_by(|e| e.series_offset.cmp(&offset)) {
            Ok(i) => i,
            Err(i) => i - 1, // the extent starting before `offset`
        };
        let mut want = offset;
        let end = offset + len;
        let mut last_page: Option<usize> = None;
        let mut cached_page: Option<Page> = None;
        while want < end {
            let e = &extents[idx];
            debug_assert!(e.series_offset <= want && want < e.series_offset + e.len);
            let within = want - e.series_offset;
            let run = (e.len - within).min(end - want);
            let gstart = e.global_start + within;
            for g in gstart..gstart + run {
                let page_idx = g / self.values_per_page;
                if last_page != Some(page_idx) {
                    cached_page = Some(self.pool.read(self.pages[page_idx]));
                    last_page = Some(page_idx);
                }
                let page = cached_page.as_ref().expect("just cached");
                out.push(page.get_f64((g % self.values_per_page) * 8));
            }
            want += run;
            idx += 1;
        }
        Ok(out)
    }

    /// Serialises the store (catalogue + page file) to a writer.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use tsss_storage::codec::*;
        put_magic(w, b"TSSSDF01")?;
        put_usize(w, self.values_per_page)?;
        put_usize(w, self.total)?;
        put_usize(w, self.names.len())?;
        for i in 0..self.names.len() {
            put_string(w, &self.names[i])?;
            put_usize(w, self.lengths[i])?;
            put_usize(w, self.extents[i].len())?;
            for e in &self.extents[i] {
                put_usize(w, e.series_offset)?;
                put_usize(w, e.global_start)?;
                put_usize(w, e.len)?;
            }
        }
        put_usize(w, self.pages.len())?;
        for p in &self.pages {
            put_u32(w, p.0)?;
        }
        // `with_file` flushes dirty frames before exposing the file.
        self.pool.with_file(|file| file.write_to(w))
    }

    /// Reads a store previously written by [`PagedSeriesStore::write_to`].
    ///
    /// # Errors
    /// `InvalidData` on malformed input; propagates I/O errors.
    pub fn read_from<R: std::io::Read>(r: &mut R, buffer_frames: usize) -> std::io::Result<Self> {
        use tsss_storage::codec::*;
        expect_magic(r, b"TSSSDF01")?;
        let values_per_page = get_usize(r)?;
        let total = get_usize(r)?;
        let n_series = get_usize(r)?;
        let mut names = Vec::with_capacity(n_series);
        let mut lengths = Vec::with_capacity(n_series);
        let mut extents = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            names.push(get_string(r)?);
            lengths.push(get_usize(r)?);
            let n_ext = get_usize(r)?;
            let mut es = Vec::with_capacity(n_ext);
            for _ in 0..n_ext {
                es.push(Extent {
                    series_offset: get_usize(r)?,
                    global_start: get_usize(r)?,
                    len: get_usize(r)?,
                });
            }
            extents.push(es);
        }
        let n_pages = get_usize(r)?;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(PageId(get_u32(r)?));
        }
        let file = PageFile::read_from(r)?;
        if file.page_size() / 8 != values_per_page {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "page size disagrees with values-per-page",
            ));
        }
        if total.div_ceil(values_per_page.max(1)) != pages.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "page count disagrees with value count",
            ));
        }
        Ok(Self {
            pool: BufferPool::new(file, buffer_frames),
            pages,
            values_per_page,
            total,
            names,
            extents,
            lengths,
        })
    }

    /// Reads the whole file page by page — exactly once per page — and
    /// reassembles every series. This is the I/O pattern of the sequential
    /// scan baseline (paper experiment set 1).
    pub fn read_everything(&self) -> Vec<Vec<f64>> {
        // One pass over the global log.
        let mut global = Vec::with_capacity(self.total);
        for (i, &pid) in self.pages.iter().enumerate() {
            let page = self.pool.read(pid);
            let in_page = (self.total - i * self.values_per_page).min(self.values_per_page);
            for slot in 0..in_page {
                global.push(page.get_f64(slot * 8));
            }
        }
        // Reassemble per series from extents.
        self.extents
            .iter()
            .zip(&self.lengths)
            .map(|(extents, &len)| {
                let mut v = Vec::with_capacity(len);
                for e in extents {
                    v.extend_from_slice(&global[e.global_start..e.global_start + e.len]);
                }
                debug_assert_eq!(v.len(), len);
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PagedSeriesStore {
        PagedSeriesStore::new(64, 0) // 8 values per page — forces spanning
    }

    #[test]
    fn empty_store() {
        let s = store();
        assert_eq!(s.num_series(), 0);
        assert_eq!(s.total_values(), 0);
        assert_eq!(s.page_count(), 0);
    }

    #[test]
    fn add_and_fetch_within_one_page() {
        let mut s = store();
        let a = s.add_series_with_values("a", &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.fetch_window(a, 1, 2).unwrap(), vec![2.0, 3.0]);
        assert_eq!(s.series_len(a).unwrap(), 4);
        assert_eq!(s.series_name(a).unwrap(), "a");
    }

    #[test]
    fn windows_spanning_pages() {
        let mut s = store();
        let vals: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = s.add_series_with_values("a", &vals);
        assert_eq!(s.page_count(), 4); // 30 values / 8 per page
        for off in 0..=20 {
            assert_eq!(s.fetch_window(a, off, 10).unwrap(), vals[off..off + 10]);
        }
    }

    #[test]
    fn interleaved_appends_create_extents() {
        let mut s = store();
        let a = s.add_series("a");
        let b = s.add_series("b");
        s.append(a, &[1.0, 2.0, 3.0]).unwrap();
        s.append(b, &[10.0, 20.0]).unwrap();
        s.append(a, &[4.0, 5.0, 6.0]).unwrap(); // non-contiguous in the log
        s.append(b, &[30.0]).unwrap();
        assert_eq!(
            s.fetch_window(a, 0, 6).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert_eq!(s.fetch_window(a, 2, 3).unwrap(), vec![3.0, 4.0, 5.0]);
        assert_eq!(s.fetch_window(b, 0, 3).unwrap(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn contiguous_appends_merge_extents() {
        let mut s = store();
        let a = s.add_series("a");
        s.append(a, &[1.0, 2.0]).unwrap();
        s.append(a, &[3.0, 4.0]).unwrap(); // still contiguous in the log
        assert_eq!(s.extents[a].len(), 1, "extents should merge");
        assert_eq!(s.fetch_window(a, 0, 4).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn read_everything_reassembles_and_charges_each_page_once() {
        let mut s = store();
        let a = s.add_series("a");
        let b = s.add_series("b");
        s.append(a, &(0..13).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(b, &(100..120).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.append(a, &(13..20).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        s.stats().reset();
        let all = s.read_everything();
        assert_eq!(s.stats().reads(), s.page_count() as u64);
        assert_eq!(all[a], (0..20).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(all[b], (100..120).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn fetch_window_charges_distinct_pages() {
        let mut s = store();
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let a = s.add_series_with_values("a", &vals);
        s.stats().reset();
        // Window of 10 values starting at 6 spans pages 0 and 1 (8 values per page).
        let _ = s.fetch_window(a, 6, 10).unwrap();
        assert_eq!(s.stats().reads(), 2);
    }

    #[test]
    fn unknown_series_is_an_error() {
        let mut s = store();
        assert_eq!(
            s.fetch_window(0, 0, 1).unwrap_err(),
            EngineError::UnknownSeries(0)
        );
        assert_eq!(s.series_len(3).unwrap_err(), EngineError::UnknownSeries(3));
        assert_eq!(
            s.append(1, &[1.0]).unwrap_err(),
            EngineError::UnknownSeries(1)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds series")]
    fn overlong_window_panics() {
        let mut s = store();
        let a = s.add_series_with_values("a", &[1.0, 2.0]);
        let _ = s.fetch_window(a, 1, 5);
    }

    #[test]
    fn paper_page_arithmetic() {
        // 4 KB pages hold 512 values; 650 000 values need 1270 pages —
        // the paper rounds to "≈ 1300".
        let mut s = PagedSeriesStore::new(4096, 0);
        let a = s.add_series("big");
        let chunk = vec![1.5; 10_000];
        for _ in 0..65 {
            s.append(a, &chunk).unwrap();
        }
        assert_eq!(s.total_values(), 650_000);
        assert_eq!(s.page_count(), 650_000usize.div_ceil(512));
        assert_eq!(s.page_count(), 1270);
    }
}
