//! Scatter-gather search over independent engine shards
//! ([`ShardedEngine`]).
//!
//! The single [`SearchEngine`] contains faults well — breaker, quarantine,
//! repair — but it is still *one* fault domain: one corrupt page domain
//! degrades queries over **all** data. The sharded engine partitions the
//! series across N fully independent engines (each with its own store,
//! index, circuit breaker, quarantine, and [`SearchEngine::repair`]) and
//! answers every query mode by scatter-gather:
//!
//! 1. **Partition.** Series `g` lives on shard `g % N` as local series
//!    `g / N` (round-robin, so every shard sees a similar slice of the
//!    workload). The map is a bijection — `global = local·N + shard` —
//!    so shard-local match ids are remapped to the global numbering
//!    before the merge, and an N-shard engine reports the *same*
//!    [`crate::SubseqId`]s as an unsharded twin built over the same
//!    series, in the same canonical order.
//! 2. **Scatter.** Every entry point (range, k-NN, z-normalized, long,
//!    batch) fans out with the same scoped-thread work-stealing pattern
//!    the batch path uses, one ticket per shard. Per-query work bounds
//!    are sliced: each shard receives `ceil(budget / N)` of the caller's
//!    page budget and [`crate::Deadline`], so a sharded query's total
//!    work stays within a constant factor of the unsharded bound.
//! 3. **Gather.** Per-shard matches are merged with the canonical
//!    [`SubsequenceMatch::ordering`] comparator and per-shard
//!    [`SearchStats`] are summed field-wise — each shard satisfies
//!    `candidates == verified + false_alarms + cost_rejected`, so the sum
//!    does too. For k-NN the merged list is re-truncated to the global k
//!    (the union of per-shard top-k lists is a superset of the global
//!    top-k, never a miss).
//!
//! **Degradation is partial results, not a fallback scan.** On a shard
//! failure (corruption, exhausted deadline slice, spent page budget) the
//! sharded engine drops that shard's slice and returns the other N−1
//! shards' exact answers, stamping [`SearchStats::degraded_shards`] /
//! [`SearchStats::shards_ok`] — the blast radius of damage is one shard.
//! Shards therefore run under [`DegradationPolicy::Error`] internally
//! (feeding their own breaker and quarantine) rather than falling back
//! to a shard-local sequential scan, which would defeat the sliced work
//! bounds. The caller's policy selects what a shard failure means at the
//! top level:
//!
//! - [`DegradationPolicy::SeqScanFallback`] (default): degrade to the
//!   surviving shards' answers. Only when *no* shard survives does the
//!   query fail, with [`EngineError::ShardUnavailable`].
//! - [`DegradationPolicy::Error`]: any failed shard refuses the whole
//!   query with the typed [`EngineError::ShardUnavailable`].
//! - [`DegradationPolicy::Strict`]: the first shard error surfaces
//!   verbatim and no breaker is touched — the forensic mode.
//!
//! Caller mistakes (bad query length, bad ε) are the same on every shard
//! and surface verbatim under every policy.

use std::time::Instant;

use tsss_data::Series;

use crate::config::{Deadline, DegradationPolicy, EngineConfig, SearchOptions};
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::id::SubseqId;
use crate::recovery::{BreakerState, HealthReport, RepairReport};
use crate::result::{SearchResult, SearchStats, SubsequenceMatch};

/// N independent engine+store shards answering as one engine.
///
/// See the [module docs](self) for the partition/merge contract. Built
/// with [`ShardedEngine::build`] (from raw series) or
/// [`ShardedEngine::from_engine`] (re-partitioning an existing engine's
/// data file, e.g. when serving).
#[derive(Debug)]
pub struct ShardedEngine {
    cfg: EngineConfig,
    shards: Vec<SearchEngine>,
}

impl ShardedEngine {
    /// Partitions `data` round-robin across `num_shards` independent
    /// engines and builds each one. The shard count is clamped to
    /// `1..=data.len()` so no shard is built empty (a 0-series shard
    /// could answer nothing and would only dilute the fan-out).
    ///
    /// # Errors
    /// Whatever [`SearchEngine::build`] reports for a shard's slice.
    pub fn build(
        data: &[Series],
        cfg: EngineConfig,
        num_shards: usize,
    ) -> Result<Self, EngineError> {
        let n = num_shards.clamp(1, data.len().max(1));
        let mut buckets: Vec<Vec<Series>> = (0..n).map(|_| Vec::new()).collect();
        for (g, s) in data.iter().enumerate() {
            if let Some(bucket) = buckets.get_mut(g % n) {
                bucket.push(s.clone());
            }
        }
        let shards = buckets
            .iter()
            .map(|b| SearchEngine::build(b, cfg.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine { cfg, shards })
    }

    /// Re-partitions an existing engine's authoritative data file into a
    /// sharded twin with the same configuration — how the serving layer
    /// turns one published snapshot into N fault domains.
    ///
    /// # Errors
    /// [`EngineError::Corrupt`] when the source data file cannot be read,
    /// or whatever [`ShardedEngine::build`] reports.
    pub fn from_engine(engine: &SearchEngine, num_shards: usize) -> Result<Self, EngineError> {
        let values = engine.read_everything()?;
        let mut series = Vec::with_capacity(values.len());
        for (i, v) in values.into_iter().enumerate() {
            series.push(Series {
                name: engine.series_name(i)?.to_string(),
                values: v,
            });
        }
        Self::build(&series, engine.config().clone(), num_shards)
    }

    /// Number of shards (fault domains).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total series across all shards.
    pub fn num_series(&self) -> usize {
        self.shards.iter().map(SearchEngine::num_series).sum()
    }

    /// Total indexed windows across all shards.
    pub fn num_windows(&self) -> usize {
        self.shards.iter().map(SearchEngine::num_windows).sum()
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The partition function: which shard holds global series `g`.
    pub fn shard_of(&self, series: usize) -> usize {
        series % self.shards.len().max(1)
    }

    /// Shard `i`'s engine, for inspection (health, fault injection in
    /// tests).
    pub fn shard(&self, i: usize) -> Option<&SearchEngine> {
        self.shards.get(i)
    }

    /// Shard `i`'s engine, mutably (corruption injection, repair).
    pub fn shard_mut(&mut self, i: usize) -> Option<&mut SearchEngine> {
        self.shards.get_mut(i)
    }

    /// Every shard's circuit-breaker position, in shard order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.shards
            .iter()
            .map(SearchEngine::breaker_state)
            .collect()
    }

    /// Every shard's point-in-time health report, in shard order.
    pub fn health(&self) -> Vec<HealthReport> {
        self.shards.iter().map(SearchEngine::health).collect()
    }

    /// Repairs one shard — rebuilding its index from its data file,
    /// clearing its quarantine, and closing its breaker — without
    /// touching the other fault domains.
    ///
    /// # Errors
    /// [`EngineError::ShardUnavailable`] for a bad shard index, else as
    /// [`SearchEngine::repair`].
    pub fn repair_shard(&mut self, shard: usize) -> Result<RepairReport, EngineError> {
        let n = self.shards.len();
        match self.shards.get_mut(shard) {
            Some(e) => e.repair(),
            None => Err(EngineError::ShardUnavailable {
                shard,
                detail: format!("no such shard (engine has {n})"),
            }),
        }
    }

    /// Repairs every shard, in shard order.
    ///
    /// # Errors
    /// The first shard's [`SearchEngine::repair`] error, if any.
    pub fn repair(&mut self) -> Result<Vec<RepairReport>, EngineError> {
        self.shards.iter_mut().map(SearchEngine::repair).collect()
    }

    // ------------------------------------------------------------------
    // Query entry points
    // ------------------------------------------------------------------

    /// Scatter-gather ε-range search (paper Problem 1) — the sharded
    /// [`SearchEngine::search`].
    ///
    /// # Errors
    /// Malformed-input errors verbatim; [`EngineError::ShardUnavailable`]
    /// when a shard failure cannot be degraded around (see the
    /// [module docs](self)); the first shard error verbatim under
    /// [`DegradationPolicy::Strict`].
    pub fn search(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        self.search_impl(true, query, epsilon, opts)
    }

    fn search_impl(
        &self,
        parallel: bool,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let sopts = self.shard_opts(opts);
        self.fan(parallel, opts.degradation, None, &|e: &SearchEngine| {
            e.search(query, epsilon, sopts)
        })
    }

    /// Scatter-gather k-nearest-neighbour search — the sharded
    /// [`SearchEngine::nearest_search_opts`]. Each shard answers its local
    /// top-k; the merge re-tightens to the *global* k-th distance by
    /// sorting the union canonically and truncating to `k`, so the caller
    /// never sees k·N candidates. The union of per-shard top-k lists is a
    /// superset of the global top-k (every global winner is in its own
    /// shard's top-k), so no neighbour can be missed.
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn nearest_search_opts(
        &self,
        query: &[f64],
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let sopts = self.shard_opts(opts);
        self.fan(true, opts.degradation, Some(k), &|e: &SearchEngine| {
            e.nearest_search_opts(query, k, sopts)
        })
    }

    /// As [`ShardedEngine::nearest_search_opts`] with default options and
    /// the given transformation-cost limit — the sharded
    /// [`SearchEngine::nearest_search`].
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn nearest_search(
        &self,
        query: &[f64],
        k: usize,
        cost: crate::config::CostLimit,
    ) -> Result<SearchResult, EngineError> {
        self.nearest_search_opts(
            query,
            k,
            SearchOptions {
                cost,
                ..SearchOptions::default()
            },
        )
    }

    /// Convenience: the k nearest matches only — the sharded
    /// [`SearchEngine::nearest`].
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<SubsequenceMatch>, EngineError> {
        Ok(self
            .nearest_search_opts(query, k, SearchOptions::default())?
            .matches)
    }

    /// Scatter-gather z-normalized search — the sharded
    /// [`SearchEngine::search_znormalized_opts`]. Each shard probes with
    /// its own (local) SE-norm bound; verification is exact, so the merged
    /// match set is identical to the unsharded engine's, though filter
    /// counters (`candidates`, `false_alarms`) may differ with the shard
    /// count.
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn search_znormalized_opts(
        &self,
        query: &[f64],
        z_eps: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let sopts = self.shard_opts(opts);
        self.fan(true, opts.degradation, None, &|e: &SearchEngine| {
            e.search_znormalized_opts(query, z_eps, sopts)
        })
    }

    /// As [`ShardedEngine::search_znormalized_opts`] with default options.
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn search_znormalized(
        &self,
        query: &[f64],
        z_eps: f64,
    ) -> Result<SearchResult, EngineError> {
        self.search_znormalized_opts(query, z_eps, SearchOptions::default())
    }

    /// Scatter-gather long-query search (paper §4.2) — the sharded
    /// [`SearchEngine::search_long`]. Long matches stitch pieces *within*
    /// one series, and a series lives wholly on one shard, so partitioning
    /// cannot split a match.
    ///
    /// # Errors
    /// As [`ShardedEngine::search`].
    pub fn search_long(
        &self,
        query: &[f64],
        epsilon: f64,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let sopts = self.shard_opts(opts);
        self.fan(true, opts.degradation, None, &|e: &SearchEngine| {
            e.search_long(query, epsilon, sopts)
        })
    }

    /// Batch of sharded range queries with per-query outcomes — the
    /// sharded [`SearchEngine::search_batch_results`]. Queries fan over
    /// `workers` scoped threads; each worker then visits the shards
    /// serially (the parallelism budget is spent once, on the batch, not
    /// squared). One query's shard failure degrades or fails *that query
    /// only* — per-query isolation is preserved across shard faults.
    pub fn search_batch_results(
        &self,
        queries: &[Vec<f64>],
        epsilon: f64,
        opts: SearchOptions,
        workers: usize,
    ) -> Vec<Result<SearchResult, EngineError>> {
        let workers = workers.max(1).min(queries.len().max(1));
        if workers == 1 {
            return queries
                .iter()
                .map(|q| self.search_impl(true, q, epsilon, opts))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let merged = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Work-stealing by atomic claim, exactly like the
                        // single-engine batch path.
                        let mut local = Vec::new();
                        loop {
                            // Relaxed: the ticket counter only needs each
                            // claim to be unique; results are published by
                            // the join below, not by this atomic.
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(q) = queries.get(i) else { break };
                            local.push((i, self.search_impl(false, q, epsilon, opts)));
                        }
                        local
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<SearchResult, EngineError>>> =
                (0..queries.len()).map(|_| None).collect();
            for h in handles {
                // analyze::allow(panic): a worker panic is a bug, not a runtime condition — re-raising it here preserves the payload instead of silently dropping that worker's queries.
                for (i, r) in h.join().expect("sharded batch worker panicked") {
                    if let Some(slot) = merged.get_mut(i) {
                        *slot = Some(r);
                    }
                }
            }
            merged
        });
        merged
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                // Defensive: the ticket counter hands every index in
                // 0..len to exactly one worker, so each slot is filled; a
                // missing slot becomes a typed error, never a panic.
                r.unwrap_or_else(|| {
                    Err(EngineError::ShardUnavailable {
                        shard: 0,
                        detail: format!("batch query {i} was never claimed by a worker"),
                    })
                })
            })
            .collect()
    }

    /// As [`ShardedEngine::search_batch_results`], failing the whole batch
    /// on the first per-query error in query order.
    ///
    /// # Errors
    /// The first per-query error, as [`ShardedEngine::search`].
    pub fn search_batch(
        &self,
        queries: &[Vec<f64>],
        epsilon: f64,
        opts: SearchOptions,
        workers: usize,
    ) -> Result<Vec<SearchResult>, EngineError> {
        self.search_batch_results(queries, epsilon, opts, workers)
            .into_iter()
            .collect()
    }

    // ------------------------------------------------------------------
    // Scatter / gather internals
    // ------------------------------------------------------------------

    /// Derives the per-shard options: work bounds sliced `ceil(x/N)`, and
    /// the degradation policy mapped to what shards run internally —
    /// `Strict` stays `Strict` (surface verbatim, touch nothing), every
    /// other policy becomes `Error` so a damaged shard feeds its own
    /// breaker/quarantine and reports a typed error for the gather stage
    /// to degrade around (see the [module docs](self)).
    fn shard_opts(&self, opts: SearchOptions) -> SearchOptions {
        let n = u64::try_from(self.shards.len().max(1)).unwrap_or(u64::MAX);
        let mut o = opts;
        o.page_budget = opts.page_budget.map(|b| b.div_ceil(n));
        o.deadline = opts.deadline.map(|d| Deadline {
            max_pages: d.max_pages.div_ceil(n),
            max_steps: d.max_steps.div_ceil(n),
        });
        o.degradation = match opts.degradation {
            DegradationPolicy::Strict => DegradationPolicy::Strict,
            DegradationPolicy::SeqScanFallback | DegradationPolicy::Error => {
                DegradationPolicy::Error
            }
        };
        o
    }

    /// Scatter + gather: runs `run` once per shard (in parallel when
    /// asked and there is more than one shard) and merges the outcomes.
    fn fan(
        &self,
        parallel: bool,
        policy: DegradationPolicy,
        truncate_k: Option<usize>,
        run: &(dyn Fn(&SearchEngine) -> Result<SearchResult, EngineError> + Sync),
    ) -> Result<SearchResult, EngineError> {
        let t0 = Instant::now();
        let per_shard = self.scatter(parallel, run);
        self.gather(policy, per_shard, truncate_k, t0)
    }

    fn scatter(
        &self,
        parallel: bool,
        run: &(dyn Fn(&SearchEngine) -> Result<SearchResult, EngineError> + Sync),
    ) -> Vec<Result<SearchResult, EngineError>> {
        if !parallel || self.shards.len() == 1 {
            return self.shards.iter().map(run).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let merged = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|_| {
                    s.spawn(|| {
                        // Work-stealing by atomic claim: threads grab the
                        // next unclaimed shard until none remain.
                        let mut local = Vec::new();
                        loop {
                            // Relaxed: the ticket counter only needs each
                            // claim to be unique; results are published by
                            // the join below, not by this atomic.
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(shard) = self.shards.get(i) else {
                                break;
                            };
                            local.push((i, run(shard)));
                        }
                        local
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<SearchResult, EngineError>>> =
                (0..self.shards.len()).map(|_| None).collect();
            for h in handles {
                // analyze::allow(panic): a worker panic is a bug, not a runtime condition — re-raising it here preserves the payload instead of silently dropping that worker's shards.
                for (i, r) in h.join().expect("shard worker panicked") {
                    if let Some(slot) = merged.get_mut(i) {
                        *slot = Some(r);
                    }
                }
            }
            merged
        });
        merged
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                // Defensive: every shard index is claimed by exactly one
                // worker; an unfilled slot becomes a typed error.
                r.unwrap_or_else(|| {
                    Err(EngineError::ShardUnavailable {
                        shard: i,
                        detail: "shard was never claimed by a scatter worker".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Merges per-shard outcomes under the caller's (top-level) policy.
    fn gather(
        &self,
        policy: DegradationPolicy,
        per_shard: Vec<Result<SearchResult, EngineError>>,
        truncate_k: Option<usize>,
        t0: Instant,
    ) -> Result<SearchResult, EngineError> {
        let mut matches: Vec<SubsequenceMatch> = Vec::new();
        let mut stats = SearchStats::default();
        let mut first_failure: Option<(usize, EngineError)> = None;
        for (i, outcome) in per_shard.into_iter().enumerate() {
            match outcome {
                Ok(res) => {
                    stats.shards_ok += 1;
                    accumulate(&mut stats, &res.stats);
                    for m in res.matches {
                        matches.push(self.remap(i, m)?);
                    }
                }
                Err(e) if slice_degradable(&e) => match policy {
                    DegradationPolicy::Strict => return Err(e),
                    DegradationPolicy::Error => {
                        return Err(EngineError::ShardUnavailable {
                            shard: i,
                            detail: e.to_string(),
                        })
                    }
                    DegradationPolicy::SeqScanFallback => {
                        stats.degraded_shards += 1;
                        if first_failure.is_none() {
                            first_failure = Some((i, e));
                        }
                    }
                },
                // Caller mistakes (query length, ε, …) are identical on
                // every shard: surface verbatim, no degradation.
                Err(e) => return Err(e),
            }
        }
        if stats.shards_ok == 0 {
            if let Some((shard, e)) = first_failure {
                // The zero-survivor path: nothing to answer from.
                return Err(EngineError::ShardUnavailable {
                    shard,
                    detail: e.to_string(),
                });
            }
        }
        if let Some((i, e)) = &first_failure {
            stats.degraded = true;
            if stats.degraded_reason.is_none() {
                stats.degraded_reason = Some(format!("shard {i}: {e}"));
            }
        }
        matches.sort_by(SubsequenceMatch::ordering);
        if let Some(k) = truncate_k {
            matches.truncate(k);
        }
        stats.breaker = self.worst_breaker();
        stats.elapsed = t0.elapsed();
        Ok(SearchResult { matches, stats })
    }

    /// Remaps a shard-local match id to the global series numbering
    /// (`global = local·N + shard` — the partition bijection inverted).
    fn remap(&self, shard: usize, m: SubsequenceMatch) -> Result<SubsequenceMatch, EngineError> {
        let local = m.id.series_idx();
        let global = local
            .checked_mul(self.shards.len())
            .and_then(|v| v.checked_add(shard))
            .ok_or(EngineError::TooLarge {
                what: "series index",
                value: local,
            })?;
        Ok(SubsequenceMatch {
            id: SubseqId::try_new(global, m.id.offset_idx())?,
            ..m
        })
    }

    /// The most degraded breaker position across shards: `Open` if any
    /// shard's breaker is open, else `HalfOpen` if any is probing, else
    /// `Closed`.
    fn worst_breaker(&self) -> BreakerState {
        let mut worst = BreakerState::Closed;
        for e in &self.shards {
            match e.breaker_state() {
                BreakerState::Open => return BreakerState::Open,
                BreakerState::HalfOpen => worst = BreakerState::HalfOpen,
                BreakerState::Closed => {}
            }
        }
        worst
    }
}

/// True for errors that damage or exhaust *one shard's slice* of a query
/// and can therefore be degraded to partial results; everything else is a
/// caller mistake or an engine-wide condition and surfaces verbatim.
fn slice_degradable(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::Corrupt { .. }
            | EngineError::DeadlineExceeded { .. }
            | EngineError::PageBudgetExceeded { .. }
    )
}

/// Field-wise sum of one shard's stats into the merged stats. Every
/// identity counter is summed, so the merged stats satisfy
/// `candidates == verified + false_alarms + cost_rejected` whenever each
/// shard does. `breaker`, `elapsed`, and the shard counters are set by
/// the gather stage; `epoch`/`wal_tail_records` stay 0 (the serving layer
/// stamps them).
fn accumulate(into: &mut SearchStats, s: &SearchStats) {
    into.index.merge(&s.index);
    into.candidates += s.candidates;
    into.verified += s.verified;
    into.false_alarms += s.false_alarms;
    into.cost_rejected += s.cost_rejected;
    into.index_pages += s.index_pages;
    into.data_pages += s.data_pages;
    into.retries += s.retries;
    into.steps_spent += s.steps_spent;
    if s.degraded {
        into.degraded = true;
        if into.degraded_reason.is_none() {
            into.degraded_reason.clone_from(&s.degraded_reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_data::{MarketConfig, MarketSimulator};

    const WINDOW: usize = 16;

    fn market(companies: usize, seed: u64) -> Vec<Series> {
        MarketSimulator::new(MarketConfig::small(companies, 60, seed)).generate()
    }

    fn cfg() -> EngineConfig {
        EngineConfig::small(WINDOW)
    }

    fn query(data: &[Series]) -> Vec<f64> {
        data[0].values[5..5 + WINDOW].to_vec()
    }

    #[test]
    fn partition_is_round_robin_and_clamped() {
        let data = market(5, 7);
        let e = ShardedEngine::build(&data, cfg(), 3).unwrap();
        assert_eq!(e.num_shards(), 3);
        assert_eq!(e.shard_of(0), 0);
        assert_eq!(e.shard_of(4), 1);
        // Shard 0 holds series 0 and 3; shard 2 holds series 2 only.
        assert_eq!(e.shard(0).unwrap().num_series(), 2);
        assert_eq!(e.shard(2).unwrap().num_series(), 1);
        assert_eq!(e.num_series(), 5);
        // More shards than series: clamped, never an empty shard.
        let clamped = ShardedEngine::build(&data, cfg(), 64).unwrap();
        assert_eq!(clamped.num_shards(), 5);
    }

    #[test]
    fn sharded_range_search_matches_unsharded_bit_for_bit() {
        let data = market(6, 11);
        let single = SearchEngine::build(&data, cfg()).unwrap();
        let sharded = ShardedEngine::build(&data, cfg(), 3).unwrap();
        let q = query(&data);
        let a = single.search(&q, 0.8, SearchOptions::default()).unwrap();
        let b = sharded.search(&q, 0.8, SearchOptions::default()).unwrap();
        assert!(!a.matches.is_empty(), "workload must produce matches");
        assert_eq!(a.matches.len(), b.matches.len());
        for (x, y) in a.matches.iter().zip(&b.matches) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            assert_eq!(x.transform.a.to_bits(), y.transform.a.to_bits());
            assert_eq!(x.transform.b.to_bits(), y.transform.b.to_bits());
        }
        // The identity survives the merge, and the shard counters stamp.
        assert_eq!(
            b.stats.candidates,
            b.stats.verified + b.stats.false_alarms + b.stats.cost_rejected
        );
        assert_eq!(b.stats.shards_ok, 3);
        assert_eq!(b.stats.degraded_shards, 0);
        assert!(!b.stats.degraded);
    }

    #[test]
    fn knn_merge_retightens_to_global_k() {
        let data = market(6, 13);
        let single = SearchEngine::build(&data, cfg()).unwrap();
        let sharded = ShardedEngine::build(&data, cfg(), 3).unwrap();
        let q = query(&data);
        let k = 5;
        let a = single.nearest(&q, k).unwrap();
        let b = sharded.nearest(&q, k).unwrap();
        assert_eq!(b.len(), k, "merge must truncate to the global k");
        let ids_a: Vec<_> = a.iter().map(|m| m.id).collect();
        let ids_b: Vec<_> = b.iter().map(|m| m.id).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn smashed_shard_degrades_only_its_slice() {
        let data = market(6, 17);
        let mut sharded = ShardedEngine::build(&data, cfg(), 3).unwrap();
        let sick = 1;
        let extent = sharded.shard(sick).unwrap().index_extent();
        {
            let shard = sharded.shard_mut(sick).unwrap();
            for p in 0..u32::try_from(extent).unwrap() {
                let _ = shard.corrupt_index_page(p, &mut |b| {
                    b[12] ^= 0x42;
                });
            }
            shard.tree_mut().clear_cache().unwrap();
        }
        let q = query(&data);
        let res = sharded.search(&q, 0.8, SearchOptions::default()).unwrap();
        assert_eq!(res.stats.degraded_shards, 1);
        assert_eq!(res.stats.shards_ok, 2);
        assert!(res.stats.degraded);
        let reason = res.stats.degraded_reason.clone().unwrap();
        assert!(reason.starts_with("shard 1:"), "{reason}");
        // No surviving match maps back to the sick shard's series.
        for m in &res.matches {
            assert_ne!(sharded.shard_of(m.id.series_idx()), sick);
        }
        // Error policy refuses the whole query, typed.
        let err = sharded
            .search(
                &q,
                0.8,
                SearchOptions {
                    degradation: DegradationPolicy::Error,
                    ..SearchOptions::default()
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::ShardUnavailable { shard: 1, .. }
        ));
        // Strict surfaces the shard's own error verbatim.
        let err = sharded
            .search(
                &q,
                0.8,
                SearchOptions {
                    degradation: DegradationPolicy::Strict,
                    ..SearchOptions::default()
                },
            )
            .unwrap_err();
        assert!(err.is_corruption(), "{err:?}");
        // Repairing the sick shard restores full service.
        sharded.repair_shard(sick).unwrap();
        let healed = sharded.search(&q, 0.8, SearchOptions::default()).unwrap();
        assert_eq!(healed.stats.degraded_shards, 0);
        assert_eq!(healed.stats.shards_ok, 3);
    }

    #[test]
    fn caller_mistakes_surface_verbatim() {
        let data = market(4, 19);
        let sharded = ShardedEngine::build(&data, cfg(), 2).unwrap();
        let err = sharded
            .search(&[0.0; WINDOW + 1], 0.5, SearchOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::QueryLength { .. }));
        let err = sharded
            .search(&query(&data), -1.0, SearchOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidEpsilon(_)));
    }

    #[test]
    fn repair_shard_rejects_bad_index() {
        let data = market(4, 23);
        let mut sharded = ShardedEngine::build(&data, cfg(), 2).unwrap();
        let err = sharded.repair_shard(9).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ShardUnavailable { shard: 9, .. }
        ));
    }
}
