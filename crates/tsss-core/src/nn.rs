//! Exact k-nearest-subsequence search under scale-shift dissimilarity.
//!
//! Corollary 1 of the paper: the nearest neighbour of `Q` is the
//! subsequence whose shifting line lies closest to `Q`'s scaling line — the
//! paper leaves the algorithm as future work ("because of the limited space,
//! we will not discuss nearest neighbor search in this paper"). We implement
//! it with the standard **filter-and-refine multi-step kNN**: feature-space
//! distances lower-bound exact distances (the DFT contraction + Theorem 2),
//! so candidates retrieved in ascending feature distance can be verified
//! until the k-th exact distance drops below the feature distance of the
//! last unverified candidate — at which point no unseen candidate can
//! improve the answer.

use std::collections::BTreeMap;

use tsss_index::LineQueryStats;
use tsss_storage::StatsScope;

use crate::config::SearchOptions;
use crate::engine::SearchEngine;
use crate::error::EngineError;
use crate::id::SubseqId;
use crate::pipeline::{
    CandidateSource, Candidates, DeadlineMeter, QueryPlan, RawAccess, SeqScanSource, Verifier,
};
use crate::result::{SearchResult, SubsequenceMatch};

impl SearchEngine {
    /// The `k` indexed subsequences nearest to `query` under the paper's
    /// dissimilarity (minimum scale-shift distance), ascending. Returns
    /// fewer when the index holds fewer windows.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] on a malformed query.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<SubsequenceMatch>, EngineError> {
        self.nearest_with_cost(query, k, crate::config::CostLimit::UNLIMITED)
    }

    /// Like [`SearchEngine::nearest`], but only counting neighbours whose
    /// optimal transformation satisfies `cost` (paper §3's transformation
    /// budget applied to ranking queries).
    ///
    /// Under the paper's asymmetric distance, unconstrained nearest
    /// neighbours are dominated by low-fluctuation windows (any query maps
    /// near them with `a ≈ 0`); a lower bound on `a` recovers the intuitive
    /// "same trend" ranking.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] on a malformed query.
    pub fn nearest_with_cost(
        &self,
        query: &[f64],
        k: usize,
        cost: crate::config::CostLimit,
    ) -> Result<Vec<SubsequenceMatch>, EngineError> {
        Ok(self.nearest_search(query, k, cost)?.matches)
    }

    /// The full-result form of [`SearchEngine::nearest_with_cost`]: the
    /// ranked matches plus the pipeline's per-stage statistics
    /// (`candidates` = unique windows pulled from the best-first frontier,
    /// `verified`/`cost_rejected` partitioning them, and exact per-query
    /// page counts).
    ///
    /// The frontier drives the shared pipeline iteratively: each round
    /// retrieves the next best-first batch from the index, verifies the
    /// not-yet-seen candidates through the one [`Verifier`], and stops as
    /// soon as the k-th exact distance is at most the feature distance of
    /// the last retrieved candidate (no unseen window can improve the
    /// answer, since feature distances lower-bound exact distances).
    /// `stats.verified` counts all exactly-verified candidates; the k best
    /// of them are returned, so `matches.len() ≤ stats.verified`.
    ///
    /// A numerically-constant query degenerates (its SE-line collapses to
    /// the origin, so the frontier order is meaningless): the ranking is
    /// answered exhaustively by the sequential-scan source instead.
    ///
    /// # Errors
    /// [`EngineError::QueryLength`] on a malformed query;
    /// [`EngineError::Corrupt`] on detected storage damage.
    pub fn nearest_search(
        &self,
        query: &[f64],
        k: usize,
        cost: crate::config::CostLimit,
    ) -> Result<SearchResult, EngineError> {
        self.nearest_search_opts(
            query,
            k,
            SearchOptions {
                cost,
                ..Default::default()
            },
        )
    }

    /// [`SearchEngine::nearest_search`] with full per-query options
    /// (`opts.cost` constrains the transforms; `opts.deadline` bounds the
    /// frontier's page accesses and verification steps, checked once per
    /// frontier round and per candidate).
    ///
    /// # Errors
    /// As [`SearchEngine::nearest_search`], plus
    /// [`EngineError::DeadlineExceeded`] when `opts.deadline` fires.
    pub fn nearest_search_opts(
        &self,
        query: &[f64],
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult, EngineError> {
        let plan = QueryPlan::ranking_with_opts(self, query, opts)?;
        let t0 = std::time::Instant::now();
        let index_stats = self.index_stats();
        let data_stats = self.data_stats();
        let index_scope = index_stats.local_scope();
        let data_scope = data_stats.local_scope();
        let mut meter = DeadlineMeter::new(plan.options().deadline);

        let mut res = if k == 0 || self.num_windows() == 0 {
            SearchResult::default()
        } else if plan.degenerate() {
            let cands = SeqScanSource.candidates(self, &plan, &mut meter)?;
            let mut res = Verifier.verify(self, &plan, cands, &mut meter)?;
            res.matches.truncate(k);
            res
        } else {
            self.nearest_frontier(
                &plan,
                k.min(self.num_windows()),
                &mut meter,
                &index_scope,
                &data_scope,
            )?
        };
        let idx = index_scope.finish();
        let dat = data_scope.finish();
        meter.charge_pages_to(idx.total_accesses() + dat.total_accesses())?;
        res.stats.index_pages = idx.total_accesses();
        res.stats.data_pages = dat.total_accesses();
        res.stats.retries = idx.retries + dat.retries;
        res.stats.steps_spent = meter.steps();
        res.stats.breaker = self.breaker_state();
        res.stats.elapsed = t0.elapsed();
        Ok(res)
    }

    /// The filter-and-refine frontier loop over a non-degenerate ranking
    /// plan. Verified fits are cached across rounds: the best-first pop
    /// sequence is deterministic, so a larger batch is always a prefix
    /// extension of the previous one and only its tail needs verifying.
    /// The deadline is checked cooperatively once per round against the
    /// scopes' running page tallies (and per candidate inside the shared
    /// verifier).
    fn nearest_frontier(
        &self,
        plan: &QueryPlan<'_>,
        k: usize,
        meter: &mut DeadlineMeter,
        index_scope: &StatsScope<'_>,
        data_scope: &StatsScope<'_>,
    ) -> Result<SearchResult, EngineError> {
        let line = self.query_line(plan.query());
        let mut res = SearchResult::default();
        // All verified matches seen so far, in canonical order.
        let mut pool: Vec<SubsequenceMatch> = Vec::new();
        let mut seen: BTreeMap<SubseqId, ()> = BTreeMap::new();

        let mut fetch = (2 * k).max(8);
        loop {
            // Per-round cooperative deadline check on the pages spent so far.
            meter.charge_pages_to(
                index_scope.counts().total_accesses() + data_scope.counts().total_accesses(),
            )?;
            let candidates = self.tree().nearest_to_line(&line, fetch)?;
            // Exhausted: we have already pulled every window — exact answers
            // are final regardless of bounds.
            let exhausted = candidates.len() < fetch || fetch >= self.num_windows();
            let max_feature_dist = candidates
                .last()
                .map(|c| c.distance)
                .unwrap_or(f64::INFINITY);

            // Refine through the shared verifier — only the candidates this
            // round added.
            let fresh: Vec<SubseqId> = candidates
                .iter()
                .map(|c| SubseqId::unpack(c.id))
                .filter(|id| seen.insert(*id, ()).is_none())
                .collect();
            let round = Verifier.verify(
                self,
                plan,
                Candidates {
                    ids: fresh,
                    index: LineQueryStats::default(),
                    raw: RawAccess::Paged,
                },
                meter,
            )?;
            res.stats.candidates += round.stats.candidates;
            res.stats.verified += round.stats.verified;
            res.stats.false_alarms += round.stats.false_alarms;
            res.stats.cost_rejected += round.stats.cost_rejected;
            pool.extend(round.matches);
            pool.sort_by(SubsequenceMatch::ordering);

            // analyze::allow(index): the range end is clamped to pool.len().
            let exact = &pool[..pool.len().min(k)];

            // Termination: every unseen candidate has feature distance
            // ≥ max_feature_dist, and exact ≥ feature, so once our k-th
            // exact distance is within that bound the answer is final.
            let kth = exact.last().map(|m| m.distance).unwrap_or(f64::INFINITY);
            if exhausted || (exact.len() == k && kth <= max_feature_dist) {
                res.matches = exact.to_vec();
                return Ok(res);
            }
            fetch = (fetch * 2).min(self.num_windows());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use tsss_data::{MarketConfig, MarketSimulator, Series};
    use tsss_geometry::scale_shift::{min_scale_shift_distance, ScaleShift};

    fn engine() -> (SearchEngine, Vec<Series>) {
        let data = MarketSimulator::new(MarketConfig::small(5, 60, 99)).generate();
        (
            SearchEngine::build(&data, EngineConfig::small(16)).unwrap(),
            data,
        )
    }

    fn brute_force_nn(data: &[Series], q: &[f64], k: usize) -> Vec<(SubseqId, f64)> {
        let mut all = Vec::new();
        for (si, s) in data.iter().enumerate() {
            for off in 0..=s.len() - 16 {
                let d = min_scale_shift_distance(q, s.window(off, 16).unwrap()).unwrap();
                all.push((
                    SubseqId {
                        series: si as u32,
                        offset: off as u32,
                    },
                    d,
                ));
            }
        }
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn nn_of_an_indexed_window_is_itself() {
        let (e, data) = engine();
        let q = data[3].window(25, 16).unwrap().to_vec();
        let got = e.nearest(&q, 1).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].distance < 1e-6);
        assert_eq!(got[0].id.series, 3);
        assert_eq!(got[0].id.offset, 25);
    }

    #[test]
    fn nn_sees_through_disguises() {
        let (e, data) = engine();
        let src = data[1].window(5, 16).unwrap();
        let q = ScaleShift { a: 0.2, b: 55.0 }.apply(src);
        let got = e.nearest(&q, 1).unwrap();
        assert!(got[0].distance < 1e-6);
        assert_eq!((got[0].id.series, got[0].id.offset), (1, 5));
    }

    #[test]
    fn knn_distances_match_brute_force() {
        let (e, data) = engine();
        let q = data[0].window(30, 16).unwrap().to_vec();
        for k in [1, 3, 10] {
            let got = e.nearest(&q, k).unwrap();
            let want = brute_force_nn(&data, &q, k);
            assert_eq!(got.len(), k);
            for (g, (_, wd)) in got.iter().zip(&want) {
                assert!(
                    (g.distance - wd).abs() < 1e-7,
                    "k = {k}: {} vs {}",
                    g.distance,
                    wd
                );
            }
        }
    }

    #[test]
    fn knn_is_sorted_ascending() {
        let (e, data) = engine();
        let q = data[2].window(11, 16).unwrap().to_vec();
        let got = e.nearest(&q, 15).unwrap();
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        assert!(e.nearest(&q, 0).unwrap().is_empty());
        let all = e.nearest(&q, usize::MAX).unwrap();
        assert_eq!(all.len(), e.num_windows());
    }

    #[test]
    fn cost_constrained_nn_only_returns_accepted_transforms() {
        let (e, data) = engine();
        let q = data[0].window(30, 16).unwrap().to_vec();
        let cost = crate::config::CostLimit {
            a_range: Some((0.5, 2.0)),
            b_range: None,
        };
        let got = e.nearest_with_cost(&q, 10, cost).unwrap();
        assert!(!got.is_empty());
        for m in &got {
            assert!(m.transform.a >= 0.5 && m.transform.a <= 2.0);
        }
        // Matches brute force restricted to the same cost set.
        let mut brute = Vec::new();
        for (si, s) in data.iter().enumerate() {
            for off in 0..=s.len() - 16 {
                let fit =
                    tsss_geometry::scale_shift::optimal_scale_shift(&q, s.window(off, 16).unwrap())
                        .unwrap();
                if fit.transform.a >= 0.5 && fit.transform.a <= 2.0 {
                    brute.push(((si, off), fit.distance));
                }
            }
        }
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (g, (_, wd)) in got.iter().zip(&brute) {
            assert!((g.distance - wd).abs() < 1e-7, "{} vs {}", g.distance, wd);
        }
    }

    #[test]
    fn cost_constrained_nn_may_return_fewer_than_k() {
        let (e, data) = engine();
        let q = data[0].window(0, 16).unwrap().to_vec();
        // Impossible cost window: nothing qualifies.
        let cost = crate::config::CostLimit {
            a_range: Some((1e9, 2e9)),
            b_range: None,
        };
        assert!(e.nearest_with_cost(&q, 5, cost).unwrap().is_empty());
    }

    #[test]
    fn nearest_search_stats_satisfy_the_stage_identity() {
        let (e, data) = engine();
        let q = data[0].window(30, 16).unwrap().to_vec();
        let cost = crate::config::CostLimit {
            a_range: Some((0.5, 2.0)),
            b_range: None,
        };
        for cost in [crate::config::CostLimit::UNLIMITED, cost] {
            let res = e.nearest_search(&q, 5, cost).unwrap();
            let s = &res.stats;
            assert_eq!(s.candidates, s.verified + s.false_alarms + s.cost_rejected);
            // ε = ∞ on the ranking plan: nothing can be a false alarm.
            assert_eq!(s.false_alarms, 0);
            // The k best of the verified pool are returned.
            assert!((res.matches.len() as u64) <= s.verified);
            assert!(s.index_pages > 0 && s.data_pages > 0);
        }
    }

    #[test]
    fn malformed_query_is_an_error() {
        let (e, _) = engine();
        assert!(matches!(
            e.nearest(&[1.0; 5], 3),
            Err(EngineError::QueryLength { .. })
        ));
    }
}
