//! Sliding-window extraction (the paper's pre-processing step, following
//! the ST-index \[2\]).
//!
//! A window of length `n` slides over each data sequence with a configurable
//! stride (the paper uses stride 1, extracting every subsequence). Each
//! window is identified by its [`SubseqId`].

use crate::id::SubseqId;

/// Iterator over the window offsets of a series of length `series_len`.
///
/// Yields `offset` values such that `offset + window_len <= series_len`,
/// stepping by `stride`.
pub fn window_offsets(
    series_len: usize,
    window_len: usize,
    stride: usize,
) -> impl Iterator<Item = usize> {
    assert!(stride >= 1, "stride must be at least 1");
    let last = series_len.checked_sub(window_len);
    WindowOffsets {
        next: 0,
        last,
        stride,
    }
}

struct WindowOffsets {
    next: usize,
    last: Option<usize>,
    stride: usize,
}

impl Iterator for WindowOffsets {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        let last = self.last?;
        if self.next > last {
            return None;
        }
        let cur = self.next;
        self.next += self.stride;
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.last {
            None => (0, Some(0)),
            Some(last) => {
                if self.next > last {
                    (0, Some(0))
                } else {
                    let n = (last - self.next) / self.stride + 1;
                    (n, Some(n))
                }
            }
        }
    }
}

/// Number of windows a series of `series_len` values yields.
pub fn window_count(series_len: usize, window_len: usize, stride: usize) -> usize {
    window_offsets(series_len, window_len, stride).count()
}

/// Enumerates the [`SubseqId`]s of every window over a set of series
/// lengths. Each item is an `Err` when the series index or offset does not
/// fit the packed `u32` id — callers propagate instead of panicking.
pub fn all_window_ids<'a>(
    series_lens: impl IntoIterator<Item = usize> + 'a,
    window_len: usize,
    stride: usize,
) -> impl Iterator<Item = Result<SubseqId, crate::EngineError>> + 'a {
    series_lens
        .into_iter()
        .enumerate()
        .flat_map(move |(series, len)| {
            window_offsets(len, window_len, stride)
                .map(move |offset| SubseqId::try_new(series, offset))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_covers_every_offset() {
        let offs: Vec<usize> = window_offsets(10, 4, 1).collect();
        assert_eq!(offs, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(window_count(10, 4, 1), 7);
    }

    #[test]
    fn larger_strides_skip() {
        let offs: Vec<usize> = window_offsets(10, 4, 3).collect();
        assert_eq!(offs, vec![0, 3, 6]);
    }

    #[test]
    fn exact_fit_yields_one_window() {
        assert_eq!(window_offsets(4, 4, 1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn too_short_series_yields_nothing() {
        assert_eq!(window_count(3, 4, 1), 0);
        assert_eq!(window_count(0, 1, 1), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let it = window_offsets(100, 10, 7);
        let (lo, hi) = it.size_hint();
        let n = it.count();
        assert_eq!(lo, n);
        assert_eq!(hi, Some(n));
    }

    #[test]
    fn all_window_ids_enumerates_per_series() {
        let ids: Vec<SubseqId> = all_window_ids(vec![5usize, 2, 4], 3, 1)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            ids,
            vec![
                SubseqId {
                    series: 0,
                    offset: 0
                },
                SubseqId {
                    series: 0,
                    offset: 1
                },
                SubseqId {
                    series: 0,
                    offset: 2
                },
                // series 1 is too short
                SubseqId {
                    series: 2,
                    offset: 0
                },
                SubseqId {
                    series: 2,
                    offset: 1
                },
            ]
        );
    }

    #[test]
    fn oversized_offsets_are_errors_not_panics() {
        // A series long enough that a window offset overflows u32; the huge
        // stride keeps the enumeration cheap. These exact sites used to
        // `expect` and abort the process.
        let huge = u32::MAX as usize + 10;
        let ids: Vec<Result<SubseqId, crate::EngineError>> =
            all_window_ids(vec![huge], 2, huge - 2).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids[0].is_ok());
        assert!(matches!(
            ids[1],
            Err(crate::EngineError::TooLarge {
                what: "window offset",
                ..
            })
        ));
    }

    #[test]
    fn paper_scale_window_count() {
        // 1000 series × 650 values, window 128, stride 1:
        // 650 − 128 + 1 = 523 windows per series.
        let total: usize = (0..1000).map(|_| window_count(650, 128, 1)).sum();
        assert_eq!(total, 523_000);
    }
}
