//! Search results and per-query statistics.

use tsss_geometry::scale_shift::ScaleShift;
use tsss_index::LineQueryStats;

use crate::id::SubseqId;
use crate::recovery::BreakerState;

/// One qualifying data subsequence (the paper's reported triple: the
/// subsequence plus its scaling factor and shifting offset).
#[derive(Debug, Clone, PartialEq)]
pub struct SubsequenceMatch {
    /// Which window matched.
    pub id: SubseqId,
    /// The optimal transformation carrying the query onto the subsequence.
    pub transform: ScaleShift,
    /// The exact distance `‖F_{a,b}(Q) − S'‖₂ ≤ ε`.
    pub distance: f64,
}

impl SubsequenceMatch {
    /// The canonical match order every query path reports in: ascending
    /// distance, ties broken by [`SubseqId`]. Use with
    /// `matches.sort_by(SubsequenceMatch::ordering)` — one comparator for
    /// all paths, so tie-breaking can never drift between them.
    pub fn ordering(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    }
}

/// Per-query cost accounting.
///
/// The per-stage counters have **one meaning on every entry point** (they
/// are filled by the shared [`crate::pipeline::Verifier`]): `candidates`
/// is what the candidate stage produced, and every candidate is counted in
/// exactly one of `verified`, `false_alarms`, or `cost_rejected` — so
///
/// ```text
/// candidates == verified + false_alarms + cost_rejected
/// ```
///
/// holds whether the candidates came from the R-tree probe, the
/// sequential scan (where `candidates` is simply every window), the
/// long-query piece intersection, or the k-NN frontier (where `verified`
/// counts all exactly-verified candidates, of which the k best are
/// returned). The differential equivalence suite asserts the identity on
/// each path, and the [`crate::pipeline::Verifier`] debug-asserts it when
/// it finalises a result.
///
/// The remaining fields sit **outside** the identity — they measure cost
/// and health, not candidate accounting: `index` (traversal work inside
/// the candidate stage), `index_pages`/`data_pages` (the Figure 5 page
/// counters), `steps_spent` (deadline budget consumed, one per candidate
/// examined), `retries` (transient-fault re-reads, charged to no page
/// counter), `degraded`/`degraded_reason` (whether the sequential-scan
/// fallback produced the answer), `breaker` (circuit-breaker state at
/// query end), `epoch` and `wal_tail_records` (serving-layer stamps:
/// which snapshot generation answered and how deep the write-ahead log
/// tail was — no candidate accounting at all),
/// `degraded_shards`/`shards_ok` (scatter-gather accounting stamped by
/// [`crate::ShardedEngine`]: how many shards failed and had their slice
/// dropped vs. how many answered — summed per-shard stats still satisfy
/// the identity because each contributing shard does), and `elapsed`
/// (wall-clock time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Index traversal statistics (nodes visited, penetration tests, …).
    pub index: LineQueryStats,
    /// Candidates produced by the candidate stage, before verification.
    pub candidates: u64,
    /// Candidates that verified as true matches.
    pub verified: u64,
    /// Candidates rejected on exact distance (false alarms of the
    /// feature-space filter — never the reverse; false dismissals are
    /// impossible by Theorems 2–3 and the DFT contraction).
    pub false_alarms: u64,
    /// Matches dropped by the user's transformation-cost limits.
    pub cost_rejected: u64,
    /// Index-file page accesses.
    pub index_pages: u64,
    /// Data-file page accesses (candidate verification, or the full scan for
    /// the sequential baseline).
    pub data_pages: u64,
    /// True when index corruption was detected mid-query and the answer was
    /// produced by the sequential-scan fallback instead
    /// ([`crate::DegradationPolicy::SeqScanFallback`]). The match set is
    /// still exact; only the page cost differs from the indexed path.
    pub degraded: bool,
    /// The corruption diagnosis that triggered the fallback.
    pub degraded_reason: Option<String>,
    /// Transient-fault read retries absorbed by the storage layer during
    /// this query (both files). Excluded from the page counters: a retry
    /// re-issues the same logical read.
    pub retries: u64,
    /// Verification steps charged against the query's
    /// [`crate::Deadline`] (one per candidate examined). Counted whether
    /// or not a deadline was set, so the spend is always observable.
    pub steps_spent: u64,
    /// The engine's circuit-breaker state observed when the query
    /// finished (see [`crate::BreakerState`]).
    pub breaker: BreakerState,
    /// Snapshot epoch the query ran against, when served through the
    /// snapshot-publishing server (each published ingest bumps it by one);
    /// `0` for direct engine calls, which have no epochs.
    pub epoch: u64,
    /// Acknowledged appends sitting in the write-ahead log (not yet folded
    /// into a full save) when the query was answered; `0` for engines
    /// without a log. Stamped by the serving layer, like `epoch`.
    pub wal_tail_records: u64,
    /// Shards whose slice was dropped from a scatter-gather answer because
    /// the shard failed (corruption, exhausted deadline slice, spent page
    /// budget). Stamped by [`crate::ShardedEngine`]; `0` for direct
    /// single-engine calls, which have no shards.
    pub degraded_shards: u64,
    /// Shards that answered and whose exact results are merged into this
    /// one. A fully healthy scatter-gather query has
    /// `shards_ok == num_shards` and `degraded_shards == 0`; `0` for
    /// direct single-engine calls, like `degraded_shards`.
    pub shards_ok: u64,
    /// Wall-clock search time.
    pub elapsed: std::time::Duration,
}

impl SearchStats {
    /// Total page accesses — the paper's Figure 5 metric.
    pub fn total_pages(&self) -> u64 {
        self.index_pages + self.data_pages
    }
}

/// The outcome of one similarity query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchResult {
    /// Qualifying subsequences with their transformations, sorted by
    /// ascending distance.
    pub matches: Vec<SubsequenceMatch>,
    /// Cost accounting for this query.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Convenience: the match ids as a set, for recall comparisons.
    pub fn id_set(&self) -> std::collections::BTreeSet<SubseqId> {
        self.matches.iter().map(|m| m.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_pages_sums_both_files() {
        let stats = SearchStats {
            index_pages: 7,
            data_pages: 5,
            ..Default::default()
        };
        assert_eq!(stats.total_pages(), 12);
    }

    #[test]
    fn id_set_deduplicates_and_orders() {
        let m = |series, offset| SubsequenceMatch {
            id: SubseqId { series, offset },
            transform: ScaleShift::IDENTITY,
            distance: 0.0,
        };
        let r = SearchResult {
            matches: vec![m(1, 5), m(0, 2), m(1, 5)],
            stats: SearchStats::default(),
        };
        let ids: Vec<SubseqId> = r.id_set().into_iter().collect();
        assert_eq!(
            ids,
            vec![
                SubseqId {
                    series: 0,
                    offset: 2
                },
                SubseqId {
                    series: 1,
                    offset: 5
                }
            ]
        );
    }
}
