//! Model-based property test: the buffer pool over a simulated disk must be
//! observationally equivalent to a plain `HashMap<PageId, Vec<u8>>`,
//! regardless of pool capacity, operation order, or eviction churn.

use proptest::prelude::*;
use std::collections::HashMap;
use tsss_storage::{BufferPool, Page, PageFile, PageId};

#[derive(Debug, Clone)]
enum Op {
    Write { slot: usize, value: u64 },
    Read { slot: usize },
    Flush,
    ClearCache,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..16, any::<u64>()).prop_map(|(slot, value)| Op::Write { slot, value }),
        4 => (0usize..16).prop_map(|slot| Op::Read { slot }),
        1 => Just(Op::Flush),
        1 => Just(Op::ClearCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_is_equivalent_to_a_hashmap(
        capacity in 0usize..6,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut file = PageFile::new(32);
        let ids: Vec<PageId> = (0..16).map(|_| file.allocate()).collect();
        let mut pool = BufferPool::new(file, capacity);
        let mut model: HashMap<usize, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Write { slot, value } => {
                    let mut p = Page::zeroed(32);
                    p.put_u64(0, value);
                    pool.write(ids[slot], p);
                    model.insert(slot, value);
                }
                Op::Read { slot } => {
                    let got = pool.read(ids[slot]).get_u64(0);
                    let want = model.get(&slot).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "slot {} diverged", slot);
                }
                Op::Flush => pool.flush(),
                Op::ClearCache => pool.clear_cache(),
            }
            prop_assert!(pool.cached() <= capacity);
        }

        // After draining the pool, the file itself must agree with the model.
        let file = pool.into_file();
        for (slot, want) in model {
            prop_assert_eq!(file.read_page_uncounted(ids[slot]).get_u64(0), want);
        }
    }

    #[test]
    fn logical_read_count_is_exact(
        capacity in 0usize..6,
        slots in prop::collection::vec(0usize..8, 1..100),
    ) {
        let mut file = PageFile::new(32);
        let ids: Vec<PageId> = (0..8).map(|_| file.allocate()).collect();
        file.stats().reset();
        let mut pool = BufferPool::new(file, capacity);
        for &s in &slots {
            let _ = pool.read(ids[s]);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.reads(), slots.len() as u64);
        prop_assert_eq!(stats.hits() + stats.misses(), slots.len() as u64);
        if capacity == 0 {
            prop_assert_eq!(stats.misses(), slots.len() as u64);
        }
    }
}
