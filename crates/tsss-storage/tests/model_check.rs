//! Model-based randomised test: the buffer pool over a simulated disk must
//! be observationally equivalent to a plain `HashMap<PageId, Vec<u8>>`,
//! regardless of pool capacity, operation order, or eviction churn.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

use std::collections::HashMap;
use tsss_rand::Rng;
use tsss_storage::{BufferPool, Page, PageFile, PageId};

#[derive(Debug, Clone)]
enum Op {
    Write { slot: usize, value: u64 },
    Read { slot: usize },
    Flush,
    ClearCache,
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.usize_below(10) {
        0..=3 => Op::Write {
            slot: rng.usize_below(16),
            value: rng.next_u64(),
        },
        4..=7 => Op::Read {
            slot: rng.usize_below(16),
        },
        8 => Op::Flush,
        _ => Op::ClearCache,
    }
}

#[test]
fn pool_is_equivalent_to_a_hashmap() {
    let mut rng = Rng::seed_from_u64(0x5EED_0001);
    for case in 0..128 {
        let capacity = rng.usize_below(6);
        let n_ops = 1 + rng.usize_below(199);

        let mut file = PageFile::new(32).unwrap();
        let ids: Vec<PageId> = (0..16).map(|_| file.allocate().unwrap()).collect();
        let pool = BufferPool::new(file, capacity);
        let mut model: HashMap<usize, u64> = HashMap::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Write { slot, value } => {
                    let mut p = Page::zeroed(32);
                    p.put_u64(0, value);
                    pool.write(ids[slot], p).unwrap();
                    model.insert(slot, value);
                }
                Op::Read { slot } => {
                    let got = pool.read(ids[slot]).unwrap().get_u64(0);
                    let want = model.get(&slot).copied().unwrap_or(0);
                    assert_eq!(got, want, "case {case}: slot {slot} diverged");
                }
                Op::Flush => pool.flush().unwrap(),
                Op::ClearCache => pool.clear_cache().unwrap(),
            }
            assert!(
                pool.cached() <= capacity,
                "case {case}: cache over capacity"
            );
        }

        // After draining the pool, the file itself must agree with the model.
        let store = pool.into_store().unwrap();
        for (slot, want) in model {
            assert_eq!(
                store.read_uncounted(ids[slot]).unwrap().get_u64(0),
                want,
                "case {case}: slot {slot} wrong after drain"
            );
        }
    }
}

#[test]
fn logical_read_count_is_exact() {
    let mut rng = Rng::seed_from_u64(0x5EED_0002);
    for case in 0..128 {
        let capacity = rng.usize_below(6);
        let n_reads = 1 + rng.usize_below(99);
        let slots: Vec<usize> = (0..n_reads).map(|_| rng.usize_below(8)).collect();

        let mut file = PageFile::new(32).unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| file.allocate().unwrap()).collect();
        file.stats().reset();
        let pool = BufferPool::new(file, capacity);
        for &s in &slots {
            let _ = pool.read(ids[s]).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.reads(), slots.len() as u64, "case {case}");
        assert_eq!(
            stats.hits() + stats.misses(),
            slots.len() as u64,
            "case {case}"
        );
        if capacity == 0 {
            assert_eq!(stats.misses(), slots.len() as u64, "case {case}");
        }
    }
}
