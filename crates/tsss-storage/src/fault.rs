//! Deterministic fault injection for chaos testing.
//!
//! [`FaultyStore`] decorates any [`PageStore`] and, with configurable
//! probabilities drawn from a seeded [`tsss_rand::Rng`], injects the
//! classic storage failure modes:
//!
//! * **read errors** — the medium refuses a read
//!   ([`StorageError::ReadFailed`]);
//! * **torn writes** — only a prefix of the page lands, the tail keeps its
//!   old bytes (a truncated sector write);
//! * **lost writes** — the write is acknowledged but never lands;
//! * **bit flips** — the write lands, then one random bit rots.
//!
//! Faults are injected *beneath* the checksum layer: torn writes and bit
//! flips go through [`PageStore::corrupt_raw`], which damages bytes without
//! refreshing the page's CRC, so the honest store underneath reports
//! [`StorageError::Corrupt`] on the next read — exactly how real media
//! corruption meets real checksums. Lost writes are the one silent mode
//! (detecting them needs external versioning, which the engine does not
//! model); they are exercised by storage-level tests only.
//!
//! The fault stream is a pure function of [`FaultConfig::seed`] and the
//! operation sequence, so any failure a chaos run finds is replayable from
//! its seed.

// analyze::allow-file(atomics): the fault counters are independent Relaxed event tallies read only by test assertions and reports; no ordering with other memory is implied or needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tsss_rand::Rng;

use crate::disk::PageId;
use crate::error::StorageError;
use crate::page::Page;
use crate::stats::AccessStats;
use crate::store::PageStore;

/// Named crash points on the durable append path, for deterministic
/// kill-at-every-point chaos testing.
///
/// The durable engine (`tsss-core`) checks an armed crash point at each of
/// these moments and, when it matches, simulates a process kill by leaving
/// the on-disk state exactly as a real kill would and returning an error —
/// the chaos suite then drops the engine and re-opens from disk. The
/// variants are ordered along the append path:
///
/// 1. [`CrashPoint::PreWalSync`] — the process died while the WAL frame
///    was being written, before the fsync: the log holds a torn, unsynced
///    half-frame and the append was **never acknowledged** (losing it is
///    allowed; recovery must still replay every earlier record).
/// 2. [`CrashPoint::PostWalPreIndex`] — the record is fsynced (the append
///    is acknowledged-durable) but the in-memory engine never mutated.
/// 3. [`CrashPoint::MidIndexInsert`] — the record is fsynced and the
///    in-memory mutation ran, then the process died before replying.
///    Since the engine is in-memory until the next save, the disk image
///    is identical to `PostWalPreIndex` — recovery must not care.
/// 4. [`CrashPoint::PostSavePreTruncate`] — a full atomic save landed but
///    the process died before truncating the WAL: every logged record is
///    *also* in the saved engine, so replay must be idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Kill mid-WAL-write, before the fsync acknowledgement.
    PreWalSync,
    /// Kill after the WAL fsync, before any in-memory mutation.
    PostWalPreIndex,
    /// Kill after the WAL fsync and the in-memory index insert.
    MidIndexInsert,
    /// Kill after an atomic save, before the WAL truncate.
    PostSavePreTruncate,
}

impl CrashPoint {
    /// Every crash point, in append-path order — the chaos matrix iterates
    /// this so adding a variant automatically widens the suite.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::PreWalSync,
        CrashPoint::PostWalPreIndex,
        CrashPoint::MidIndexInsert,
        CrashPoint::PostSavePreTruncate,
    ];

    /// Stable name used in test output and the CI matrix.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PreWalSync => "pre-wal-sync",
            CrashPoint::PostWalPreIndex => "post-wal-pre-index",
            CrashPoint::MidIndexInsert => "mid-index-insert",
            CrashPoint::PostSavePreTruncate => "post-save-pre-truncate",
        }
    }
}

/// Injection probabilities (each in `[0, 1]`) and the seed that makes the
/// fault stream reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a read fails with [`StorageError::ReadFailed`].
    pub read_error: f64,
    /// Probability a write applies only its first half (old tail kept,
    /// checksum stale → detected on next read).
    pub torn_write: f64,
    /// Probability a write is acknowledged but dropped.
    pub lost_write: f64,
    /// Probability a successful write is followed by one random bit
    /// rotting (checksum stale → detected on next read).
    pub bit_flip: f64,
}

impl FaultConfig {
    /// No faults at all — the decorator becomes a transparent wrapper.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            read_error: 0.0,
            torn_write: 0.0,
            lost_write: 0.0,
            bit_flip: 0.0,
        }
    }

    /// A read-side-only profile: reads fail with probability `p`, writes
    /// are honest. The profile chaos tests use against read-only query
    /// workloads.
    pub fn read_errors(seed: u64, p: f64) -> Self {
        Self {
            read_error: p,
            ..Self::none(seed)
        }
    }
}

/// How many faults of each kind a [`FaultyStore`] has injected.
///
/// Shared (`Arc`) so tests keep a handle after the store disappears behind
/// `Box<dyn PageStore>` — chaos assertions hinge on whether any fault
/// actually fired during a query.
#[derive(Debug, Default)]
pub struct FaultCounters {
    read_errors: AtomicU64,
    torn_writes: AtomicU64,
    lost_writes: AtomicU64,
    bit_flips: AtomicU64,
}

impl FaultCounters {
    /// Injected read errors so far.
    pub fn read_errors(&self) -> u64 {
        self.read_errors.load(Ordering::Relaxed)
    }

    /// Injected torn writes so far.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes.load(Ordering::Relaxed)
    }

    /// Injected lost writes so far.
    pub fn lost_writes(&self) -> u64 {
        self.lost_writes.load(Ordering::Relaxed)
    }

    /// Injected bit flips so far.
    pub fn bit_flips(&self) -> u64 {
        self.bit_flips.load(Ordering::Relaxed)
    }

    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        self.read_errors() + self.torn_writes() + self.lost_writes() + self.bit_flips()
    }
}

/// A [`PageStore`] decorator injecting deterministic faults; see the module
/// docs.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Box<dyn PageStore>,
    cfg: FaultConfig,
    rng: Mutex<Rng>,
    counters: Arc<FaultCounters>,
}

impl FaultyStore {
    /// Wraps `inner`, injecting faults per `cfg`.
    pub fn new(inner: Box<dyn PageStore>, cfg: FaultConfig) -> Self {
        Self {
            inner,
            rng: Mutex::new(Rng::seed_from_u64(cfg.seed)),
            cfg,
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// The injection configuration.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Shared handle to the injection counters (keep it before boxing the
    /// store away).
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Unwraps the decorated store.
    pub fn into_inner(self) -> Box<dyn PageStore> {
        self.inner
    }

    /// One Bernoulli draw from the deterministic fault stream.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // analyze::allow(panic): fault injection is a test harness; a poisoned rng lock means a test already panicked, and aborting the fault stream there is the desired behaviour.
        self.rng.lock().expect("fault rng lock").f64() < p
    }

    /// Shared write path; `counted` distinguishes the pool-facing uncounted
    /// variant (the pool already recorded the logical write) from the
    /// direct one.
    fn write_impl(&mut self, id: PageId, page: Page, counted: bool) -> Result<(), StorageError> {
        // Validate the request before rolling, so invalid calls keep their
        // typed errors regardless of the fault stream.
        if page.size() != self.inner.page_size() {
            return Err(StorageError::PageSizeMismatch {
                expected: self.inner.page_size(),
                got: page.size(),
            });
        }
        if self.roll(self.cfg.lost_write) {
            self.counters.lost_writes.fetch_add(1, Ordering::Relaxed);
            // Probe the slot so bad ids still fail like an honest write.
            self.inner.corrupt_raw(id, &mut |_| {})?;
            if counted {
                self.inner.stats().record_write();
            }
            return Ok(());
        }
        if self.roll(self.cfg.torn_write) {
            self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
            let half = page.size() / 2;
            let result = self.inner.corrupt_raw(id, &mut |bytes| {
                // analyze::allow(index): `half` is page.size()/2 and both buffers are exactly page-sized (checked at entry).
                bytes[..half].copy_from_slice(&page.bytes()[..half]);
            });
            if result.is_ok() && counted {
                self.inner.stats().record_write();
            }
            return result;
        }
        let result = if counted {
            self.inner.write(id, page)
        } else {
            self.inner.write_uncounted(id, page)
        };
        if result.is_ok() && self.roll(self.cfg.bit_flip) {
            self.counters.bit_flips.fetch_add(1, Ordering::Relaxed);
            let (byte, bit) = {
                // analyze::allow(panic): see `roll` — test-harness lock.
                let mut rng = self.rng.lock().expect("fault rng lock");
                (rng.usize_below(self.inner.page_size()), rng.usize_below(8))
            };
            self.inner
                // analyze::allow(index): `byte` was drawn from `usize_below(page_size)` and the raw buffer is page-sized.
                .corrupt_raw(id, &mut |bytes| bytes[byte] ^= 1 << bit)?;
        }
        result
    }
}

impl PageStore for FaultyStore {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn extent(&self) -> usize {
        self.inner.extent()
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> Arc<AccessStats> {
        self.inner.stats()
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        self.inner.allocate()
    }

    fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
        self.inner.deallocate(id)
    }

    fn read(&self, id: PageId) -> Result<Page, StorageError> {
        if self.roll(self.cfg.read_error) {
            self.counters.read_errors.fetch_add(1, Ordering::Relaxed);
            // The logical access still happened from the caller's view.
            self.inner.stats().record_read();
            return Err(StorageError::ReadFailed { page: id });
        }
        self.inner.read(id)
    }

    fn write(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        self.write_impl(id, page, true)
    }

    fn read_uncounted(&self, id: PageId) -> Result<Page, StorageError> {
        if self.roll(self.cfg.read_error) {
            self.counters.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::ReadFailed { page: id });
        }
        self.inner.read_uncounted(id)
    }

    fn write_uncounted(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        self.write_impl(id, page, false)
    }

    fn corrupt_raw(
        &mut self,
        id: PageId,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), StorageError> {
        self.inner.corrupt_raw(id, f)
    }

    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.inner.persist(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageFile;

    /// Every test here returns `Result<(), String>` and threads storage
    /// errors through [`seeded`], so a failure under fault pressure reports
    /// the fault seed to reproduce with instead of a bare `unwrap` panic.
    type TestResult = Result<(), String>;

    /// Attaches the fault seed to a storage error so the failing seed is in
    /// the test output.
    fn seeded<T>(r: Result<T, StorageError>, seed: u64, what: &str) -> Result<T, String> {
        r.map_err(|e| format!("seed {seed}: {what}: {e}"))
    }

    fn faulty(cfg: FaultConfig) -> Result<(FaultyStore, Vec<PageId>), String> {
        let seed = cfg.seed;
        let mut file = seeded(PageFile::new(64), seed, "new page file")?;
        let mut ids = Vec::new();
        for i in 0..8u64 {
            let id = seeded(file.allocate(), seed, "allocate")?;
            let mut p = Page::zeroed(64);
            p.put_u64(0, 100 + i);
            seeded(file.write_page(id, p), seed, "seed page")?;
            ids.push(id);
        }
        Ok((FaultyStore::new(Box::new(file), cfg), ids))
    }

    #[test]
    fn no_faults_means_transparent_delegation() -> TestResult {
        let (mut s, ids) = faulty(FaultConfig::none(1))?;
        let mut p = Page::zeroed(64);
        p.put_u64(0, 777);
        seeded(s.write(ids[0], p), 1, "fault-free write")?;
        let got = seeded(s.read(ids[0]), 1, "fault-free read")?.get_u64(0);
        assert_eq!(got, 777);
        assert_eq!(s.counters().total(), 0);
        Ok(())
    }

    #[test]
    fn fault_stream_is_deterministic_in_the_seed() -> TestResult {
        let run = |seed: u64| -> Result<Vec<bool>, String> {
            let (s, ids) = faulty(FaultConfig::read_errors(seed, 0.3))?;
            Ok((0..100)
                .map(|i| s.read(ids[i % ids.len()]).is_err())
                .collect())
        };
        assert_eq!(run(42)?, run(42)?);
        assert_ne!(run(42)?, run(43)?, "different seeds, different streams");
        assert!(run(42)?.iter().any(|&e| e), "p = 0.3 over 100 reads fires");
        assert!(run(42)?.iter().any(|&e| !e), "and not always");
        Ok(())
    }

    #[test]
    fn read_errors_are_typed_and_counted() -> TestResult {
        let (s, ids) = faulty(FaultConfig::read_errors(7, 1.0))?;
        assert_eq!(
            s.read(ids[0]),
            Err(StorageError::ReadFailed { page: ids[0] }),
            "seed 7: p = 1.0 must fail every read"
        );
        assert_eq!(s.counters().read_errors(), 1);
        // The logical access is still charged.
        assert_eq!(s.stats().reads(), 1);
        Ok(())
    }

    #[test]
    fn torn_write_is_detected_by_the_checksum() -> TestResult {
        let cfg = FaultConfig {
            torn_write: 1.0,
            ..FaultConfig::none(3)
        };
        let (mut s, ids) = faulty(cfg)?;
        let mut p = Page::zeroed(64);
        p.put_u64(0, 1); // lands in the written prefix
        p.put_u64(56, 2); // would land in the lost tail
        seeded(s.write(ids[2], p), 3, "torn write is still acknowledged")?;
        assert_eq!(s.counters().torn_writes(), 1);
        assert!(
            matches!(s.read(ids[2]), Err(StorageError::Corrupt { .. })),
            "seed 3: half-written page must fail verification"
        );
        Ok(())
    }

    #[test]
    fn lost_write_keeps_the_old_consistent_content() -> TestResult {
        let cfg = FaultConfig {
            lost_write: 1.0,
            ..FaultConfig::none(9)
        };
        let (mut s, ids) = faulty(cfg)?;
        let mut p = Page::zeroed(64);
        p.put_u64(0, 999);
        seeded(s.write(ids[1], p), 9, "lost write is still acknowledged")?;
        assert_eq!(s.counters().lost_writes(), 1);
        // The old page is intact and verifies — the silent failure mode.
        let got = seeded(s.read(ids[1]), 9, "read of the surviving page")?.get_u64(0);
        assert_eq!(got, 101);
        Ok(())
    }

    #[test]
    fn bit_flip_after_write_is_detected_on_read() -> TestResult {
        let cfg = FaultConfig {
            bit_flip: 1.0,
            ..FaultConfig::none(5)
        };
        let (mut s, ids) = faulty(cfg)?;
        seeded(
            s.write(ids[4], Page::zeroed(64)),
            5,
            "write before the flip",
        )?;
        assert_eq!(s.counters().bit_flips(), 1);
        assert!(
            matches!(s.read(ids[4]), Err(StorageError::Corrupt { .. })),
            "seed 5: flipped page must fail verification"
        );
        Ok(())
    }

    #[test]
    fn invalid_requests_stay_typed_even_under_full_fault_pressure() -> TestResult {
        let cfg = FaultConfig {
            read_error: 1.0,
            torn_write: 1.0,
            lost_write: 1.0,
            bit_flip: 1.0,
            seed: 11,
        };
        let (mut s, _) = faulty(cfg)?;
        assert_eq!(
            s.write(PageId(0), Page::zeroed(32)),
            Err(StorageError::PageSizeMismatch {
                expected: 64,
                got: 32
            }),
            "seed 11: size mismatch must win over injected faults"
        );
        assert!(
            matches!(
                s.write(PageId(99), Page::zeroed(64)),
                Err(StorageError::OutOfRange { .. } | StorageError::InvalidPageId)
            ),
            "seed 11: bad id must stay typed under fault pressure"
        );
        Ok(())
    }

    #[test]
    fn write_accounting_is_exact_under_faults() -> TestResult {
        for (name, cfg) in [
            (
                "lost",
                FaultConfig {
                    lost_write: 1.0,
                    ..FaultConfig::none(2)
                },
            ),
            (
                "torn",
                FaultConfig {
                    torn_write: 1.0,
                    ..FaultConfig::none(2)
                },
            ),
            (
                "flip",
                FaultConfig {
                    bit_flip: 1.0,
                    ..FaultConfig::none(2)
                },
            ),
        ] {
            let (mut s, ids) = faulty(cfg)?;
            s.stats().reset();
            for _ in 0..5 {
                seeded(s.write(ids[0], Page::zeroed(64)), 2, name)?;
            }
            assert_eq!(s.stats().writes(), 5, "{name}: every logical write counted");
        }
        Ok(())
    }

    #[test]
    fn persist_writes_the_underlying_state() -> TestResult {
        let (mut s, ids) = faulty(FaultConfig::none(1))?;
        let mut p = Page::zeroed(64);
        p.put_u64(0, 4242);
        seeded(s.write(ids[0], p), 1, "write before persist")?;
        let mut buf = Vec::new();
        s.persist(&mut buf)
            .map_err(|e| format!("seed 1: persist: {e}"))?;
        let g = PageFile::read_from(&mut std::io::Cursor::new(buf))
            .map_err(|e| format!("seed 1: reload persisted state: {e}"))?;
        let got = seeded(g.read_page_uncounted(ids[0]), 1, "read persisted page")?.get_u64(0);
        assert_eq!(got, 4242);
        Ok(())
    }
}
