//! The page-store abstraction the buffer pool sits on.
//!
//! [`PageStore`] is the seam between the cache/accounting layer and the
//! medium that actually holds the bytes. [`crate::PageFile`] is the honest
//! implementation; [`crate::FaultyStore`] decorates any store with
//! deterministic fault injection. Because the pool owns its store as
//! `Box<dyn PageStore>`, a test can swap the medium out from under a live
//! R-tree ([`crate::BufferPool::wrap_store`]) without the tree knowing.
//!
//! # Contract
//!
//! * `read`/`write` are the **counted** operations — each records one
//!   logical access in [`AccessStats`]. The `_uncounted` variants are the
//!   buffer pool's physical path (the pool does its own logical counting)
//!   and white-box test hooks.
//! * `read` must verify integrity: a store that checksums its pages
//!   returns [`StorageError::Corrupt`] when the stored bytes no longer
//!   match their checksum. Corruption is *detected at read time*, never
//!   silently decoded.
//! * `corrupt_raw` mutates stored bytes **without** updating any checksum —
//!   it models damage to the medium (bit rot, torn sectors) and is how
//!   fault injectors and chaos tests plant detectable corruption.

use std::sync::Arc;

use crate::disk::PageId;
use crate::error::StorageError;
use crate::page::Page;
use crate::stats::AccessStats;

/// A page-granular storage medium (see the module docs for the contract).
pub trait PageStore: Send + Sync + std::fmt::Debug {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Total pages ever allocated (the physical extent).
    fn extent(&self) -> usize;

    /// Pages allocated and not freed.
    fn live_pages(&self) -> usize;

    /// Shared handle to the access counters.
    fn stats(&self) -> Arc<AccessStats>;

    /// Allocates a zeroed page, reusing a freed slot when available.
    ///
    /// # Errors
    /// [`StorageError::Full`] when 32-bit page ids are exhausted.
    fn allocate(&mut self) -> Result<PageId, StorageError>;

    /// Returns a page to the free list.
    ///
    /// # Errors
    /// Typed errors on the sentinel id, out-of-range ids, and double frees.
    fn deallocate(&mut self, id: PageId) -> Result<(), StorageError>;

    /// Reads a page, verifying its checksum (counted as one logical read).
    ///
    /// # Errors
    /// Typed errors on bad ids; [`StorageError::Corrupt`] when the stored
    /// bytes fail verification; [`StorageError::ReadFailed`] when the
    /// medium refuses the read outright.
    fn read(&self, id: PageId) -> Result<Page, StorageError>;

    /// Writes a page (counted as one logical write).
    ///
    /// # Errors
    /// Typed errors on bad ids or a size mismatch.
    fn write(&mut self, id: PageId, page: Page) -> Result<(), StorageError>;

    /// [`PageStore::read`] without access accounting — the buffer pool's
    /// physical read path and a white-box test hook. Integrity is still
    /// verified.
    ///
    /// # Errors
    /// As [`PageStore::read`].
    fn read_uncounted(&self, id: PageId) -> Result<Page, StorageError>;

    /// [`PageStore::write`] without access accounting — the buffer pool's
    /// eviction/flush path.
    ///
    /// # Errors
    /// As [`PageStore::write`].
    fn write_uncounted(&mut self, id: PageId, page: Page) -> Result<(), StorageError>;

    /// Damages the stored bytes of `id` in place via `f`, **without**
    /// updating the page's checksum — the next `read` of this page reports
    /// [`StorageError::Corrupt`] (unless `f` left the bytes unchanged).
    /// Not an access; never counted.
    ///
    /// # Errors
    /// Typed errors on bad ids.
    fn corrupt_raw(&mut self, id: PageId, f: &mut dyn FnMut(&mut [u8]))
        -> Result<(), StorageError>;

    /// Serialises the store's durable state (pages, free list, checksums)
    /// to `w`. Decorators persist the *underlying* state — injected fault
    /// configuration is a session property, not data.
    ///
    /// # Errors
    /// Propagates I/O errors.
    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()>;
}
