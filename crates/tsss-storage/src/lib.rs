//! Paged storage substrate for the PODS '99 reproduction.
//!
//! The paper's experiments (§7, Figure 5) measure the *average number of page
//! accesses* per query with 4 KB pages, each page storing one R*-tree node,
//! against a sequential scan that must read every data page
//! (`0.65 M values × 8 B / 4 KB ≈ 1300` pages). To reproduce those numbers
//! faithfully we model the storage layer explicitly instead of timing real
//! I/O:
//!
//! * [`page::Page`] — a fixed-size byte page with typed big-endian
//!   read/write helpers (the unit of transfer),
//! * [`disk::PageFile`] — a simulated disk: an allocatable array of pages
//!   with exact read/write accounting and a free list,
//! * [`buffer::BufferPool`] — an LRU buffer pool in front of a `PageFile`
//!   distinguishing *logical* accesses (what the paper counts — every page
//!   the algorithm touches) from *physical* accesses (misses that would
//!   really hit the disk),
//! * [`stats::AccessStats`] — the counters the benchmark harness reports.
//!
//! The R-tree / R*-tree in `tsss-index` serialise their nodes into these
//! pages, so page-access counts fall directly out of the traversal — there
//! is no side-channel estimate.
//!
//! # Fault model
//!
//! The medium behind the pool is abstracted as [`store::PageStore`], with
//! per-page CRC32 checksums verified on every read: damage that bypasses
//! the legitimate write path surfaces as a typed
//! [`error::StorageError::Corrupt`], never a garbage decode.
//! [`fault::FaultyStore`] decorates any store with deterministic,
//! seed-reproducible fault injection (read errors, torn writes, lost
//! writes, bit flips) for the chaos suite, and [`atomic::atomic_write`]
//! makes file persistence crash-safe (temp file + rename).

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
// Belt-and-braces next to the analyzer's R1: clippy flags stray unwraps in
// non-test code too, so regressions fail CI twice.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod atomic;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod fault;
pub mod page;
pub mod readahead;
pub mod stats;
pub mod store;
pub mod wal;

pub use atomic::atomic_write;
pub use buffer::BufferPool;
pub use disk::{PageFile, PageId};
pub use error::StorageError;
pub use fault::{CrashPoint, FaultConfig, FaultCounters, FaultyStore};
pub use page::{Page, DEFAULT_PAGE_SIZE};
pub use readahead::{ReadAhead, DEFAULT_READ_AHEAD};
pub use stats::{AccessCounts, AccessStats, StatsScope};
pub use store::PageStore;
pub use wal::{Wal, WalScan, MAX_WAL_RECORD_BYTES};
