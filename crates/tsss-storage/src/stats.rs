//! Access counters reported by the benchmark harness.
//!
//! The paper's Figure 5 plots *average number of page accesses per query*.
//! [`AccessStats`] accumulates exactly that: every page the algorithm reads
//! or writes, plus the buffer pool's hit/miss split so the `ablation_buffer`
//! bench can show how caching changes the picture (the paper's counts are
//! unbuffered logical accesses; we default to the same).

use std::cell::Cell;

/// Monotonic page-access counters.
///
/// Interior-mutable (`Cell`) so read paths can stay `&self`; the storage
/// layer is single-threaded by design, mirroring the paper's setup.
#[derive(Debug, Default)]
pub struct AccessStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl AccessStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical page read.
    pub fn record_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }

    /// Records one logical page write.
    pub fn record_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }

    /// Records a buffer-pool hit (logical read served from memory).
    pub fn record_hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    /// Records a buffer-pool miss (logical read that went to the disk).
    pub fn record_miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }

    /// Logical page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Logical page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Buffer-pool hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Buffer-pool misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Total logical page accesses (reads + writes) — the Figure 5 metric.
    pub fn total_accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Resets every counter to zero (called between benchmark queries).
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.hits.set(0);
        self.misses.set(0);
    }

    /// A point-in-time copy of the counters as plain numbers
    /// `(reads, writes, hits, misses)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.reads.get(),
            self.writes.get(),
            self.hits.get(),
            self.misses.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = AccessStats::new();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
        assert_eq!(s.total_accesses(), 0);
    }

    #[test]
    fn record_and_total() {
        let s = AccessStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let s = AccessStats::new();
        s.record_read();
        s.record_miss();
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }
}
