//! Access counters reported by the benchmark harness.
//!
//! The paper's Figure 5 plots *average number of page accesses per query*.
//! [`AccessStats`] accumulates exactly that: every page the algorithm reads
//! or writes, plus the buffer pool's hit/miss split so the `ablation_buffer`
//! bench can show how caching changes the picture (the paper's counts are
//! unbuffered logical accesses; we default to the same).
//!
//! # Concurrency model
//!
//! The counters are `AtomicU64`s, so any number of threads may record
//! accesses through a shared [`AccessStats`] handle. Global totals stay
//! exact under concurrency (every access is one `fetch_add`).
//!
//! Per-query accounting — the number a single query contributed, which is
//! what Figure 5 actually plots — cannot be recovered from global counters
//! once queries run in parallel (start/end snapshots interleave). Instead a
//! thread opens a [`StatsScope`] around its query: every access the *same
//! thread* records while the scope is open is tallied into the scope as well
//! as into the global counters. Scopes are thread-local, so concurrent
//! queries never see each other's accesses, and the per-query deltas sum to
//! exactly the global increment.

// analyze::allow-file(atomics): every atomic here is an independent monotone event counter (reads/writes/hits/misses/retries, plus the id allocator); Relaxed is sufficient because no counter's value ever gates control flow or publishes other memory — readers only aggregate for reporting.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A plain-number snapshot of access counters — either a global snapshot or
/// the per-thread delta collected by a [`StatsScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// Logical page reads.
    pub reads: u64,
    /// Logical page writes.
    pub writes: u64,
    /// Buffer-pool hits.
    pub hits: u64,
    /// Buffer-pool misses.
    pub misses: u64,
    /// Transient-fault retries (re-issued physical reads). A retried read is
    /// still *one* logical read, so retries are excluded from
    /// [`AccessCounts::total_accesses`].
    pub retries: u64,
}

impl AccessCounts {
    /// Total logical page accesses (reads + writes) — the Figure 5 metric.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

thread_local! {
    /// Stack of open scopes on this thread: `(stats instance id, tally)`.
    /// Nested scopes each receive the accesses recorded while they are open.
    static SCOPES: RefCell<Vec<(u64, AccessCounts)>> = const { RefCell::new(Vec::new()) };
}

/// Source of unique per-instance ids (so a thread-local scope tallies only
/// the [`AccessStats`] it was opened on, not every instance in the process).
static NEXT_STATS_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic page-access counters, safe to share across threads.
#[derive(Debug)]
pub struct AccessStats {
    id: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
}

impl Default for AccessStats {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self {
            id: NEXT_STATS_ID.fetch_add(1, Ordering::Relaxed),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    #[inline]
    fn tally_local(&self, f: impl Fn(&mut AccessCounts)) {
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            for (id, counts) in scopes.iter_mut() {
                if *id == self.id {
                    f(counts);
                }
            }
        });
    }

    /// Records one logical page read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.tally_local(|c| c.reads += 1);
    }

    /// Records one logical page write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.tally_local(|c| c.writes += 1);
    }

    /// Records a buffer-pool hit (logical read served from memory).
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.tally_local(|c| c.hits += 1);
    }

    /// Records a buffer-pool miss (logical read that went to the disk).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.tally_local(|c| c.misses += 1);
    }

    /// Records one transient-fault retry: a physical re-read of a page whose
    /// first attempt failed with a transient error. The logical read was
    /// already recorded, so this does not touch the read counter.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.tally_local(|c| c.retries += 1);
    }

    /// Logical page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Logical page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Transient-fault retries so far (see [`AccessStats::record_retry`]).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total logical page accesses (reads + writes) — the Figure 5 metric.
    pub fn total_accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Resets every counter to zero (called between benchmark queries).
    ///
    /// Not linearisable against concurrent recorders — callers reset only
    /// in serial sections (between queries), never mid-batch.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the access counters as plain numbers
    /// `(reads, writes, hits, misses)`. Retries are reported separately by
    /// [`AccessStats::retries`] — they are physical re-reads, not logical
    /// accesses.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (self.reads(), self.writes(), self.hits(), self.misses())
    }

    /// Opens a per-thread tally scope: accesses this thread records on this
    /// instance while the scope is alive are counted into the scope (and, as
    /// always, into the global counters). The scope must be dropped on the
    /// thread that opened it.
    pub fn local_scope(&self) -> StatsScope<'_> {
        SCOPES.with(|scopes| {
            scopes.borrow_mut().push((self.id, AccessCounts::default()));
        });
        StatsScope { stats: self }
    }
}

/// Guard returned by [`AccessStats::local_scope`]; see there.
#[derive(Debug)]
pub struct StatsScope<'a> {
    stats: &'a AccessStats,
}

impl StatsScope<'_> {
    /// The accesses recorded by this thread on the parent [`AccessStats`]
    /// since the scope opened.
    pub fn counts(&self) -> AccessCounts {
        SCOPES.with(|scopes| {
            let scopes = scopes.borrow();
            scopes
                .iter()
                .rev()
                .find(|(id, _)| *id == self.stats.id)
                .map(|(_, c)| *c)
                // analyze::allow(panic): the guard pushed its frame at construction and only Drop removes it, so the lookup cannot miss while `self` is alive.
                .expect("scope tally present while guard is alive")
        })
    }

    /// Consumes the scope, returning its final tally.
    pub fn finish(self) -> AccessCounts {
        self.counts()
        // Drop pops the frame.
    }
}

impl Drop for StatsScope<'_> {
    fn drop(&mut self) {
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            // Scopes are strictly nested per thread, so the most recent frame
            // for this instance is ours.
            let pos = scopes
                .iter()
                .rposition(|(id, _)| *id == self.stats.id)
                // analyze::allow(panic): see `counts` — the frame this guard pushed is still present when Drop runs.
                .expect("scope tally present at drop");
            scopes.remove(pos);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = AccessStats::new();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
        assert_eq!(s.total_accesses(), 0);
    }

    #[test]
    fn record_and_total() {
        let s = AccessStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let s = AccessStats::new();
        s.record_read();
        s.record_miss();
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn retries_are_counted_but_not_logical_accesses() {
        let s = AccessStats::new();
        let scope = s.local_scope();
        s.record_read();
        s.record_retry();
        s.record_retry();
        let c = scope.finish();
        assert_eq!(c.retries, 2);
        assert_eq!(c.total_accesses(), 1, "a retried read is one logical read");
        assert_eq!(s.retries(), 2);
        assert_eq!(s.total_accesses(), 1);
        s.reset();
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn local_scope_tallies_only_its_window() {
        let s = AccessStats::new();
        s.record_read(); // outside any scope
        let scope = s.local_scope();
        s.record_read();
        s.record_write();
        s.record_miss();
        let c = scope.finish();
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 0);
        assert_eq!(c.total_accesses(), 2);
        // Globals saw everything.
        assert_eq!(s.reads(), 2);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn scopes_are_per_instance() {
        let a = AccessStats::new();
        let b = AccessStats::new();
        let scope_a = a.local_scope();
        a.record_read();
        b.record_read();
        assert_eq!(
            scope_a.finish().reads,
            1,
            "b's read must not leak into a's scope"
        );
    }

    #[test]
    fn nested_scopes_both_tally() {
        let s = AccessStats::new();
        let outer = s.local_scope();
        s.record_read();
        {
            let inner = s.local_scope();
            s.record_read();
            assert_eq!(inner.finish().reads, 1);
        }
        assert_eq!(outer.finish().reads, 2);
    }

    #[test]
    fn scopes_do_not_cross_threads() {
        let s = std::sync::Arc::new(AccessStats::new());
        let scope = s.local_scope();
        let s2 = std::sync::Arc::clone(&s);
        std::thread::scope(|sc| {
            sc.spawn(move || {
                s2.record_read(); // different thread: global only
            });
        });
        assert_eq!(scope.finish().reads, 0);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let s = std::sync::Arc::new(AccessStats::new());
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let s = std::sync::Arc::clone(&s);
                sc.spawn(move || {
                    let scope = s.local_scope();
                    for _ in 0..1000 {
                        s.record_read();
                    }
                    assert_eq!(scope.finish().reads, 1000);
                });
            }
        });
        assert_eq!(s.reads(), 8000);
    }
}
