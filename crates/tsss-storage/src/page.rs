//! Fixed-size pages with typed cursor-style encode/decode helpers.
//!
//! A [`Page`] is the unit of transfer between the simulated disk and the
//! access methods. The paper uses 4 KB pages with one R*-tree node per page
//! (§7); [`DEFAULT_PAGE_SIZE`] matches that. Index nodes and raw-series data
//! are serialised into pages with the little-endian fixed-width helpers
//! below — deliberately simple, deterministic, and alignment-free.

// analyze::allow-file(index): the typed accessors deliberately bounds-check through slice indexing — an out-of-range offset is a caller logic error with a documented `# Panics` contract, and every caller derives offsets from layout constants validated against the page size.

/// The paper's page size: 4 KBytes (§7), kept as the default.
///
/// The A5 ablation (`results/ablation_page.txt`, reproduced with
/// `cargo run --release -p tsss-bench --bin ablation_page`) sweeps 1–16 KB:
/// larger pages buy fewer page accesses roughly linearly but cost
/// proportionally more CPU per touched page, and 4 KB sits at the knee —
/// matching both the paper's setting and the common filesystem block size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A fixed-size byte page.
///
/// Cloning a page is an explicit byte copy; the buffer pool hands out clones
/// so callers can never alias the cached frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl Page {
    /// A zero-filled page of `size` bytes.
    ///
    /// For hostile (user- or file-supplied) sizes use [`Page::try_zeroed`];
    /// this variant is for sizes already validated upstream.
    ///
    /// # Panics
    /// Panics when `size == 0`.
    pub fn zeroed(size: usize) -> Self {
        // analyze::allow(panic): documented `# Panics` contract; the fallible twin is `try_zeroed`.
        Self::try_zeroed(size).expect("page size must be positive")
    }

    /// A zero-filled page of `size` bytes, rejecting hostile sizes with a
    /// typed error instead of a panic.
    ///
    /// # Errors
    /// [`crate::StorageError::BadPageSize`] when `size == 0`.
    pub fn try_zeroed(size: usize) -> Result<Self, crate::error::StorageError> {
        if size == 0 {
            return Err(crate::error::StorageError::BadPageSize { size });
        }
        Ok(Self {
            bytes: vec![0u8; size].into_boxed_slice(),
        })
    }

    /// Page capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Read-only view of the raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable view of the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Writes an `f64` at byte offset `off` (little-endian).
    ///
    /// # Panics
    /// Panics when the value does not fit the page.
    pub fn put_f64(&mut self, off: usize, v: f64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `f64` from byte offset `off`.
    pub fn get_f64(&self, off: usize) -> f64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[off..off + 8]);
        f64::from_le_bytes(buf)
    }

    /// Writes a `u64` at byte offset `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` from byte offset `off`.
    pub fn get_u64(&self, off: usize) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[off..off + 8]);
        u64::from_le_bytes(buf)
    }

    /// Writes a `u32` at byte offset `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` from byte offset `off`.
    pub fn get_u32(&self, off: usize) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.bytes[off..off + 4]);
        u32::from_le_bytes(buf)
    }

    /// Writes a `u16` at byte offset `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u16` from byte offset `off`.
    pub fn get_u16(&self, off: usize) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.bytes[off..off + 2]);
        u16::from_le_bytes(buf)
    }

    /// Writes a single byte at offset `off`.
    pub fn put_u8(&mut self, off: usize, v: u8) {
        self.bytes[off] = v;
    }

    /// Reads a single byte from offset `off`.
    pub fn get_u8(&self, off: usize) -> u8 {
        self.bytes[off]
    }

    /// Writes a contiguous run of `f64`s starting at byte offset `off`;
    /// returns the offset just past the run.
    ///
    /// One bounds check up front, then a chunked byte loop the compiler can
    /// keep in registers — the bulk encoder for slab-format leaf pages and
    /// data-file runs. Pure byte reinterpretation, so trivially bit-exact.
    pub fn put_f64_slice(&mut self, off: usize, vs: &[f64]) -> usize {
        let end = off + vs.len() * 8;
        let dst = &mut self.bytes[off..end];
        for (chunk, &v) in dst.chunks_exact_mut(8).zip(vs) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        end
    }

    /// Reads `out.len()` consecutive `f64`s starting at byte offset `off`;
    /// returns the offset just past the run.
    ///
    /// The bulk decoder twin of [`put_f64_slice`](Self::put_f64_slice):
    /// one bounds check, then a chunked loop over the byte range.
    pub fn get_f64_slice(&self, off: usize, out: &mut [f64]) -> usize {
        let end = off + out.len() * 8;
        let src = &self.bytes[off..end];
        for (chunk, v) in src.chunks_exact(8).zip(out) {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            *v = f64::from_le_bytes(buf);
        }
        end
    }

    /// Appends `out.len()`-agnostic: decodes `count` consecutive `f64`s
    /// starting at byte offset `off` onto the end of `out`; returns the
    /// offset just past the run.
    ///
    /// This is the append-flavoured bulk decoder the columnar read path
    /// uses to fill window/series slabs without zero-initialising first.
    pub fn extend_f64_slice(&self, off: usize, count: usize, out: &mut Vec<f64>) -> usize {
        let end = off + count * 8;
        let src = &self.bytes[off..end];
        out.reserve(count);
        for chunk in src.chunks_exact(8) {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            out.push(f64::from_le_bytes(buf));
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed(64);
        assert_eq!(p.size(), 64);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_page_panics() {
        let _ = Page::zeroed(0);
    }

    #[test]
    fn try_zeroed_rejects_zero_size_with_typed_error() {
        assert_eq!(
            Page::try_zeroed(0).unwrap_err(),
            crate::error::StorageError::BadPageSize { size: 0 }
        );
        assert_eq!(Page::try_zeroed(16).unwrap().size(), 16);
    }

    #[test]
    fn f64_roundtrip_preserves_bits() {
        let mut p = Page::zeroed(DEFAULT_PAGE_SIZE);
        for (i, v) in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -12345.6789]
            .iter()
            .enumerate()
        {
            p.put_f64(i * 8, *v);
            assert_eq!(p.get_f64(i * 8).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn integer_roundtrips() {
        let mut p = Page::zeroed(32);
        p.put_u64(0, u64::MAX - 7);
        p.put_u32(8, 0xDEAD_BEEF);
        p.put_u16(12, 65533);
        p.put_u8(14, 200);
        assert_eq!(p.get_u64(0), u64::MAX - 7);
        assert_eq!(p.get_u32(8), 0xDEAD_BEEF);
        assert_eq!(p.get_u16(12), 65533);
        assert_eq!(p.get_u8(14), 200);
    }

    #[test]
    fn unaligned_offsets_work() {
        let mut p = Page::zeroed(32);
        p.put_f64(3, 2.25);
        assert_eq!(p.get_f64(3), 2.25);
    }

    #[test]
    fn slice_roundtrip_returns_advancing_offsets() {
        let mut p = Page::zeroed(128);
        let vs = [1.0, 2.0, 3.0, 4.5];
        let end = p.put_f64_slice(16, &vs);
        assert_eq!(end, 16 + 32);
        let mut out = [0.0; 4];
        let end2 = p.get_f64_slice(16, &mut out);
        assert_eq!(end2, end);
        assert_eq!(out, vs);
    }

    #[test]
    fn extend_f64_slice_appends_bit_exact() {
        let mut p = Page::zeroed(128);
        let vs = [0.0, -0.0, f64::MAX, 1.0 / 3.0, -12345.6789];
        let end = p.put_f64_slice(8, &vs);
        let mut out = vec![7.0];
        let end2 = p.extend_f64_slice(8, 5, &mut out);
        assert_eq!(end2, end);
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], 7.0);
        for (got, want) in out[1..].iter().zip(&vs) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn slice_codecs_roundtrip_bits_at_odd_offsets() {
        let mut p = Page::zeroed(256);
        let vs: Vec<f64> = (0..17).map(|i| f64::from(i) * 0.1 - 0.5).collect();
        let end = p.put_f64_slice(3, &vs);
        assert_eq!(end, 3 + 17 * 8);
        let mut out = vec![0.0; 17];
        p.get_f64_slice(3, &mut out);
        for (got, want) in out.iter().zip(&vs) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut p = Page::zeroed(8);
        p.put_f64(1, 1.0); // bytes 1..9 exceed the 8-byte page
    }
}
