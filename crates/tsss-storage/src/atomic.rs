//! Crash-safe file replacement: write a temp file, then rename into place.
//!
//! Both persistence paths (`SearchEngine::save_to_path` and
//! `RTree::save_to_path`) go through [`atomic_write`], so a crash, an
//! `ENOSPC`, or any mid-write failure leaves the previous file untouched —
//! a reader only ever sees the complete old contents or the complete new
//! contents, never a torn prefix.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Writes a file atomically: `f` streams the contents into a temporary
/// sibling (`<name>.tmp` in the same directory, so the final rename cannot
/// cross filesystems), which is flushed, synced, and renamed over `path`
/// only after `f` succeeds. On any failure the temporary is removed and
/// the previous `path` contents remain intact.
///
/// # Errors
/// Propagates errors from `f` and from the filesystem operations.
pub fn atomic_write(
    path: &Path,
    f: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp_path = path.with_file_name(tmp_name);

    let result = (|| {
        let file = fs::File::create(&tmp_path)?;
        let mut w = io::BufWriter::new(file);
        f(&mut w)?;
        w.flush()?;
        w.into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?
            .sync_all()?;
        fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        // analyze::allow(result-discipline): best-effort cleanup of the torn temp file — the write error below is the one that matters, and a leaked `.tmp` is re-created (same name) on the next save.
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tsss-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file() {
        let dir = temp_dir("new");
        let path = dir.join("out.bin");
        atomic_write(&path, |w| w.write_all(b"hello")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_write_failure_leaves_old_contents_readable() {
        let dir = temp_dir("torn");
        let path = dir.join("out.bin");
        fs::write(&path, b"old contents").unwrap();

        let err = atomic_write(&path, |w| {
            w.write_all(b"new prefix that must never be seen")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated crash"));

        assert_eq!(fs::read(&path).unwrap(), b"old contents");
        assert!(
            !dir.join("out.bin.tmp").exists(),
            "torn temp file must be cleaned up"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaces_existing_contents_completely() {
        let dir = temp_dir("replace");
        let path = dir.join("out.bin");
        fs::write(&path, b"a much longer previous payload").unwrap();
        atomic_write(&path, |w| w.write_all(b"short")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"short");
        fs::remove_dir_all(&dir).unwrap();
    }
}
