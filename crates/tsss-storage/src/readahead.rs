//! Sequential page read-ahead over a [`BufferPool`].
//!
//! The sequential-scan oracle and the bulk data-file readers consume pages
//! in a known order, so there is no reason to interleave one `pool.read`
//! with each page's decode: [`ReadAhead`] fetches the next batch of pages
//! into a `VecDeque<Page>` up front and hands them out one at a time. The
//! consumer then decodes each page as one contiguous byte run (see
//! [`Page::get_f64_slice`](crate::Page::get_f64_slice)) instead of
//! point-reading values through the pool.
//!
//! Accounting contract: pages are read through [`BufferPool::read`] exactly
//! once each, in list order — the logical read counts (the paper's Figure 5
//! metric), retry accounting, and error behaviour are byte-identical to a
//! plain `for id in ids { pool.read(id)? }` loop; only the batching of the
//! fetches ahead of consumption changes. The equivalence suite pins the
//! per-query page counts across this refactor.

use std::collections::VecDeque;

use crate::buffer::BufferPool;
use crate::disk::PageId;
use crate::error::StorageError;
use crate::page::Page;

/// Default number of pages fetched per batch. Sized so a batch of the
/// paper's 4 KB pages (32 KB) stays comfortably inside L1/L2 while still
/// amortising the pool's per-read locking over many decoded values.
pub const DEFAULT_READ_AHEAD: usize = 8;

/// Batched sequential scanner over an ordered page list.
///
/// ```
/// use tsss_storage::{BufferPool, Page, PageFile, ReadAhead};
/// let mut file = PageFile::new(64).unwrap();
/// let ids: Vec<_> = (0..3).map(|_| file.allocate().unwrap()).collect();
/// let pool = BufferPool::new(file, 0);
/// let mut scan = ReadAhead::new(&pool, &ids);
/// let mut seen = 0;
/// while let Some(_page) = scan.next_page().unwrap() {
///     seen += 1;
/// }
/// assert_eq!(seen, 3);
/// ```
#[derive(Debug)]
pub struct ReadAhead<'a> {
    pool: &'a BufferPool,
    ids: std::slice::Iter<'a, PageId>,
    window: VecDeque<Page>,
    batch: usize,
}

impl<'a> ReadAhead<'a> {
    /// A scanner over `ids` with the [`DEFAULT_READ_AHEAD`] batch size.
    pub fn new(pool: &'a BufferPool, ids: &'a [PageId]) -> Self {
        Self::with_batch(pool, ids, DEFAULT_READ_AHEAD)
    }

    /// A scanner with an explicit batch size (clamped to at least 1).
    pub fn with_batch(pool: &'a BufferPool, ids: &'a [PageId], batch: usize) -> Self {
        Self {
            pool,
            ids: ids.iter(),
            window: VecDeque::with_capacity(batch.max(1)),
            batch: batch.max(1),
        }
    }

    /// The next page in list order, fetching a fresh batch when the window
    /// is empty; `None` when the list is exhausted.
    ///
    /// # Errors
    /// Propagates the pool's typed errors. A failing page surfaces on the
    /// batch fetch that includes it — the same logical reads have been
    /// charged, in the same order, as the unbatched loop would have charged
    /// before failing.
    pub fn next_page(&mut self) -> Result<Option<Page>, StorageError> {
        if self.window.is_empty() {
            for id in (&mut self.ids).take(self.batch) {
                self.window.push_back(self.pool.read(*id)?);
            }
        }
        Ok(self.window.pop_front())
    }

    /// Pages currently buffered ahead of the consumer.
    pub fn buffered(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageFile;

    fn pool_with_pages(n: usize) -> (BufferPool, Vec<PageId>) {
        let mut file = PageFile::new(64).unwrap();
        let ids: Vec<PageId> = (0..n).map(|_| file.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(64);
            p.put_u64(0, i as u64);
            file.write_page(id, p).unwrap();
        }
        file.stats().reset();
        (BufferPool::new(file, 0), ids)
    }

    #[test]
    fn yields_every_page_in_order_exactly_once() {
        for n in [0usize, 1, 7, 8, 9, 20] {
            for batch in [1usize, 3, 8, 64] {
                let (pool, ids) = pool_with_pages(n);
                let mut scan = ReadAhead::with_batch(&pool, &ids, batch);
                let mut seen = Vec::new();
                while let Some(page) = scan.next_page().unwrap() {
                    seen.push(page.get_u64(0));
                }
                assert_eq!(
                    seen,
                    (0..n as u64).collect::<Vec<_>>(),
                    "n={n} batch={batch}"
                );
                assert_eq!(pool.stats().reads(), n as u64, "one logical read per page");
                assert!(scan.next_page().unwrap().is_none(), "stays exhausted");
            }
        }
    }

    #[test]
    fn buffered_reflects_the_fetch_window() {
        let (pool, ids) = pool_with_pages(10);
        let mut scan = ReadAhead::with_batch(&pool, &ids, 4);
        assert_eq!(scan.buffered(), 0);
        let _ = scan.next_page().unwrap();
        assert_eq!(scan.buffered(), 3, "batch of 4 minus the page handed out");
        assert_eq!(pool.stats().reads(), 4, "whole batch charged up front");
    }

    #[test]
    fn zero_batch_is_clamped_to_one() {
        let (pool, ids) = pool_with_pages(2);
        let mut scan = ReadAhead::with_batch(&pool, &ids, 0);
        assert!(scan.next_page().unwrap().is_some());
        assert_eq!(pool.stats().reads(), 1);
    }

    #[test]
    fn errors_propagate_with_the_unbatched_read_charge() {
        let (mut pool, ids) = pool_with_pages(6);
        pool.corrupt_page(ids[2], &mut |b| b[0] ^= 0xFF).unwrap();
        pool.stats().reset();
        let mut scan = ReadAhead::with_batch(&pool, &ids, 8);
        assert!(matches!(
            scan.next_page(),
            Err(StorageError::Corrupt { .. })
        ));
        // Pages 0,1 succeeded, page 2 was charged then failed — exactly what
        // the plain loop would have charged.
        assert_eq!(pool.stats().reads(), 3);
    }
}
