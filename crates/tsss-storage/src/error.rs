//! Typed storage failures.
//!
//! Every way the page layer can refuse or fail an operation is enumerated
//! here, so callers (the R-tree, the engine) can distinguish *invalid
//! request* (bad id, wrong size) from *damaged medium* (checksum mismatch,
//! injected read error) and react — typically by degrading to the
//! sequential-scan baseline rather than panicking.

use crate::disk::PageId;

/// Errors surfaced by [`crate::PageFile`], [`crate::BufferPool`], and any
/// [`crate::PageStore`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page size of zero (or otherwise unusable) was requested.
    BadPageSize {
        /// The rejected size.
        size: usize,
    },
    /// A page of the wrong size was handed to a store.
    PageSizeMismatch {
        /// The store's page size.
        expected: usize,
        /// The size of the offered page.
        got: usize,
    },
    /// The [`PageId::INVALID`] sentinel was used where a real page is
    /// required.
    InvalidPageId,
    /// A page id beyond the file's extent.
    OutOfRange {
        /// The offending id.
        page: PageId,
        /// The file's extent (pages ever allocated).
        extent: usize,
    },
    /// The page is already on the free list.
    DoubleFree {
        /// The offending id.
        page: PageId,
    },
    /// The file cannot grow further (page ids are 32-bit).
    Full,
    /// The page's content does not match its checksum — the stored bytes
    /// were damaged after the last legitimate write.
    Corrupt {
        /// The damaged page.
        page: PageId,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// The medium refused to return the page at all (an injected or
    /// simulated transport error, as opposed to damaged content).
    ReadFailed {
        /// The unreadable page.
        page: PageId,
    },
    /// A lock guarding pool state was poisoned: another thread panicked
    /// while holding it, so the protected data may be mid-mutation. The
    /// pool refuses to serve from possibly-inconsistent state.
    LockPoisoned,
}

impl StorageError {
    /// Whether the failure is *transient*: a re-read of the same page may
    /// legitimately succeed because the stored bytes themselves are fine.
    ///
    /// Only [`StorageError::ReadFailed`] (a transport-level refusal)
    /// qualifies. Checksum mismatches ([`StorageError::Corrupt`]) mean the
    /// bytes on the medium are damaged — retrying re-reads the same damage —
    /// and every other variant is an invalid request, so all of those are
    /// permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::ReadFailed { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadPageSize { size } => {
                write!(f, "bad page size {size}: pages must be non-empty")
            }
            Self::PageSizeMismatch { expected, got } => {
                write!(
                    f,
                    "page size mismatch: store holds {expected}-byte pages, got {got}"
                )
            }
            Self::InvalidPageId => write!(f, "invalid page id (the INVALID sentinel)"),
            Self::OutOfRange { page, extent } => {
                write!(f, "{page} out of range: file extent is {extent} pages")
            }
            Self::DoubleFree { page } => write!(f, "double free of {page}"),
            Self::Full => write!(f, "page file full: 32-bit page ids exhausted"),
            Self::Corrupt { page, detail } => {
                write!(f, "corrupt {page}: {detail}")
            }
            Self::ReadFailed { page } => write!(f, "read of {page} failed"),
            Self::LockPoisoned => {
                write!(f, "buffer pool lock poisoned by a panicking thread")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for std::io::Error {
    fn from(e: StorageError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let cases: Vec<(StorageError, &str)> = vec![
            (StorageError::BadPageSize { size: 0 }, "bad page size 0"),
            (
                StorageError::PageSizeMismatch {
                    expected: 64,
                    got: 128,
                },
                "page size mismatch",
            ),
            (StorageError::InvalidPageId, "invalid page id"),
            (
                StorageError::OutOfRange {
                    page: PageId(9),
                    extent: 3,
                },
                "page#9 out of range",
            ),
            (StorageError::DoubleFree { page: PageId(2) }, "double free"),
            (StorageError::Full, "full"),
            (
                StorageError::Corrupt {
                    page: PageId(1),
                    detail: "checksum mismatch".into(),
                },
                "corrupt page#1",
            ),
            (
                StorageError::ReadFailed { page: PageId(4) },
                "read of page#4 failed",
            ),
        ];
        for (err, fragment) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(fragment),
                "{msg:?} should contain {fragment:?}"
            );
        }
    }

    #[test]
    fn only_read_failures_are_transient() {
        assert!(StorageError::ReadFailed { page: PageId(4) }.is_transient());
        let permanent: Vec<StorageError> = vec![
            StorageError::BadPageSize { size: 0 },
            StorageError::PageSizeMismatch {
                expected: 64,
                got: 128,
            },
            StorageError::InvalidPageId,
            StorageError::OutOfRange {
                page: PageId(9),
                extent: 3,
            },
            StorageError::DoubleFree { page: PageId(2) },
            StorageError::Full,
            StorageError::Corrupt {
                page: PageId(1),
                detail: "checksum mismatch".into(),
            },
            StorageError::LockPoisoned,
        ];
        for err in permanent {
            assert!(!err.is_transient(), "{err} must be permanent");
        }
    }

    #[test]
    fn converts_to_io_error() {
        let io: std::io::Error = StorageError::InvalidPageId.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
