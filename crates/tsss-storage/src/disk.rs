//! The simulated disk: a growable array of fixed-size pages with exact
//! access accounting and a free list.
//!
//! `PageFile` is the ground truth the buffer pool sits in front of. Every
//! `read_page`/`write_page` bumps the shared [`AccessStats`], so the
//! benchmark harness measures precisely what the paper's Figure 5 measures —
//! pages touched, not wall-clock I/O.

use std::sync::Arc;

use crate::page::Page;
use crate::stats::AccessStats;

/// Identifier of a page within a [`PageFile`].
///
/// A newtype over `u32` (4 G pages × 4 KB = 16 TB of addressable store —
/// far beyond the experiments) so page ids serialise compactly inside index
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in serialised nodes for "no page" (e.g. no child).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True when this id is the sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A simulated page-oriented file (the "disk").
///
/// All pages share one size, fixed at construction. Deallocated pages go on
/// a free list and are reused by later allocations. The access counters are
/// shared (`Arc`) so a buffer pool and its backing file report into the same
/// [`AccessStats`].
#[derive(Debug)]
pub struct PageFile {
    page_size: usize,
    pages: Vec<Page>,
    free: Vec<PageId>,
    stats: Arc<AccessStats>,
}

impl PageFile {
    /// Creates an empty page file with the given page size.
    ///
    /// # Panics
    /// Panics when `page_size == 0`.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            stats: Arc::new(AccessStats::new()),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total pages ever allocated (the file's physical extent).
    pub fn extent(&self) -> usize {
        self.pages.len()
    }

    /// Shared handle to the access counters.
    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    /// Allocates a zeroed page, reusing a freed slot when available.
    ///
    /// Allocation itself is not counted as an access; the subsequent write
    /// of real content is.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize] = Page::zeroed(self.page_size);
            return id;
        }
        let id = PageId(u32::try_from(self.pages.len()).expect("page file full"));
        assert!(id.is_valid(), "page file full");
        self.pages.push(Page::zeroed(self.page_size));
        id
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    /// Panics on an out-of-range id or a double free.
    pub fn deallocate(&mut self, id: PageId) {
        assert!((id.0 as usize) < self.pages.len(), "deallocate: bad {id}");
        assert!(!self.free.contains(&id), "double free of {id}");
        self.free.push(id);
    }

    /// Reads a page (counted as one logical read).
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn read_page(&self, id: PageId) -> Page {
        self.stats.record_read();
        self.pages[id.0 as usize].clone()
    }

    /// Writes a page (counted as one logical write).
    ///
    /// # Panics
    /// Panics on an out-of-range id or a page of the wrong size.
    pub fn write_page(&mut self, id: PageId, page: Page) {
        assert_eq!(page.size(), self.page_size, "page size mismatch");
        self.stats.record_write();
        self.pages[id.0 as usize] = page;
    }

    /// Serialises the whole file (pages + free list) to a writer.
    ///
    /// Format: magic `TSSSPG01`, page size, extent, free-list, raw page
    /// bytes. Access counters are *not* persisted — they describe a
    /// session, not the data.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use crate::codec::*;
        put_magic(w, b"TSSSPG01")?;
        put_usize(w, self.page_size)?;
        put_usize(w, self.pages.len())?;
        put_usize(w, self.free.len())?;
        for f in &self.free {
            put_u32(w, f.0)?;
        }
        for p in &self.pages {
            w.write_all(p.bytes())?;
        }
        Ok(())
    }

    /// Reads a file previously written by [`PageFile::write_to`].
    ///
    /// # Errors
    /// `InvalidData` on a bad magic tag or inconsistent free list;
    /// propagates I/O errors.
    pub fn read_from<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use crate::codec::*;
        expect_magic(r, b"TSSSPG01")?;
        let page_size = get_usize(r)?;
        if page_size == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "zero page size",
            ));
        }
        let extent = get_usize(r)?;
        let free_len = get_usize(r)?;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            let id = PageId(get_u32(r)?);
            if id.0 as usize >= extent {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "free-list entry out of range",
                ));
            }
            free.push(id);
        }
        let mut pages = Vec::with_capacity(extent);
        for _ in 0..extent {
            let mut page = Page::zeroed(page_size);
            r.read_exact(page.bytes_mut())?;
            pages.push(page);
        }
        Ok(Self {
            page_size,
            pages,
            free,
            stats: Arc::new(AccessStats::new()),
        })
    }

    /// Stores a page without any accounting or size validation beyond the
    /// debug assertion. Internal plumbing for the buffer pool.
    pub(crate) fn write_raw(&mut self, id: PageId, page: Page) {
        debug_assert_eq!(page.size(), self.page_size);
        self.pages[id.0 as usize] = page;
    }

    /// Reads a page **without** counting an access.
    ///
    /// For white-box tests and integrity checks only — never on the query
    /// path, where every touch must be charged.
    pub fn read_page_uncounted(&self, id: PageId) -> &Page {
        &self.pages[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_distinct_zeroed_pages() {
        let mut f = PageFile::new(64);
        let a = f.allocate();
        let b = f.allocate();
        assert_ne!(a, b);
        assert_eq!(f.live_pages(), 2);
        assert!(f.read_page_uncounted(a).bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn read_write_roundtrip_counts_accesses() {
        let mut f = PageFile::new(64);
        let id = f.allocate();
        let mut p = Page::zeroed(64);
        p.put_f64(0, 42.5);
        f.write_page(id, p);
        let back = f.read_page(id);
        assert_eq!(back.get_f64(0), 42.5);
        let stats = f.stats();
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.reads(), 1);
        assert_eq!(stats.total_accesses(), 2);
    }

    #[test]
    fn uncounted_read_does_not_touch_stats() {
        let mut f = PageFile::new(64);
        let id = f.allocate();
        let _ = f.read_page_uncounted(id);
        assert_eq!(f.stats().total_accesses(), 0);
    }

    #[test]
    fn deallocate_then_allocate_reuses_slot_and_zeroes() {
        let mut f = PageFile::new(64);
        let a = f.allocate();
        let mut p = Page::zeroed(64);
        p.put_u64(0, 7);
        f.write_page(a, p);
        f.deallocate(a);
        assert_eq!(f.live_pages(), 0);
        let b = f.allocate();
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(f.read_page_uncounted(b).get_u64(0), 0, "page re-zeroed");
        assert_eq!(f.extent(), 1, "no physical growth");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut f = PageFile::new(64);
        let a = f.allocate();
        f.deallocate(a);
        f.deallocate(a);
    }

    #[test]
    #[should_panic(expected = "page size mismatch")]
    fn wrong_size_write_panics() {
        let mut f = PageFile::new(64);
        let a = f.allocate();
        f.write_page(a, Page::zeroed(128));
    }

    #[test]
    fn stats_are_shared_with_handles() {
        let mut f = PageFile::new(64);
        let id = f.allocate();
        let handle = f.stats();
        let _ = f.read_page(id);
        assert_eq!(handle.reads(), 1);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_free_list() {
        let mut f = PageFile::new(64);
        let ids: Vec<PageId> = (0..5).map(|_| f.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(64);
            p.put_u64(0, i as u64 * 11);
            f.write_page(id, p);
        }
        f.deallocate(ids[2]);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let mut g = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.page_size(), 64);
        assert_eq!(g.extent(), 5);
        assert_eq!(g.live_pages(), 4);
        for (i, &id) in ids.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(g.read_page_uncounted(id).get_u64(0), i as u64 * 11);
        }
        // Reallocation reuses the freed slot, as in the original.
        assert_eq!(g.allocate(), ids[2]);
    }

    #[test]
    fn counters_are_not_persisted() {
        let mut f = PageFile::new(32);
        let id = f.allocate();
        let _ = f.read_page(id);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let g = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.stats().total_accesses(), 0);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut buf = Vec::new();
        PageFile::new(32).write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut f = PageFile::new(32);
        let _ = f.allocate();
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(PageFile::read_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn out_of_range_free_entry_is_rejected() {
        let f = PageFile::new(32);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        // Hand-craft: set free_len = 1 with an entry but extent 0.
        // Layout: magic(8) page_size(8) extent(8) free_len(8)...
        buf[24..32].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
