//! The simulated disk: a growable array of fixed-size pages with exact
//! access accounting, a free list, and per-page CRC32 checksums.
//!
//! `PageFile` is the ground truth the buffer pool sits in front of. Every
//! `read_page`/`write_page` bumps the shared [`AccessStats`], so the
//! benchmark harness measures precisely what the paper's Figure 5 measures —
//! pages touched, not wall-clock I/O.
//!
//! # Integrity model
//!
//! A checksum sidecar holds the CRC32 of every page's content as of its
//! last legitimate write. Reads verify the sidecar, so any damage that
//! bypassed `write_page` — a fault injector's bit flip, a torn write, bytes
//! rotted inside a persisted file — surfaces as a typed
//! [`StorageError::Corrupt`] instead of a garbage decode downstream.
//! [`PageFile::corrupt_raw`] is the sanctioned way to model such damage.

use std::sync::Arc;

use crate::codec::crc32;
// analyze::allow-file(index): `pages`, `crcs` and `seen` are indexed only through `slot()`-validated indices (or `extent`-checked ids during load), and `pages`/`crcs` are grown and shrunk together.

use crate::error::StorageError;
use crate::page::Page;
use crate::stats::AccessStats;
use crate::store::PageStore;

/// Identifier of a page within a [`PageFile`].
///
/// A newtype over `u32` (4 G pages × 4 KB = 16 TB of addressable store —
/// far beyond the experiments) so page ids serialise compactly inside index
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in serialised nodes for "no page" (e.g. no child).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True when this id is not the sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A simulated page-oriented file (the "disk").
///
/// All pages share one size, fixed at construction. Deallocated pages go on
/// a free list and are reused by later allocations. The access counters are
/// shared (`Arc`) so a buffer pool and its backing file report into the same
/// [`AccessStats`].
#[derive(Debug)]
pub struct PageFile {
    page_size: usize,
    pages: Vec<Page>,
    /// CRC32 of each page's content as of its last legitimate write.
    crcs: Vec<u32>,
    free: Vec<PageId>,
    stats: Arc<AccessStats>,
    /// Cached CRC of an all-zero page (every allocation starts there).
    zero_crc: u32,
}

impl PageFile {
    /// Creates an empty page file with the given page size.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] when `page_size == 0`.
    pub fn new(page_size: usize) -> Result<Self, StorageError> {
        if page_size == 0 {
            return Err(StorageError::BadPageSize { size: page_size });
        }
        Ok(Self {
            page_size,
            pages: Vec::new(),
            crcs: Vec::new(),
            free: Vec::new(),
            stats: Arc::new(AccessStats::new()),
            zero_crc: crc32(&vec![0u8; page_size]),
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total pages ever allocated (the file's physical extent).
    pub fn extent(&self) -> usize {
        self.pages.len()
    }

    /// Shared handle to the access counters.
    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    /// Maps an id to its slot, rejecting the sentinel and out-of-range ids.
    fn slot(&self, id: PageId) -> Result<usize, StorageError> {
        if !id.is_valid() {
            return Err(StorageError::InvalidPageId);
        }
        // analyze::allow(cast): u32 page id → usize is lossless on every supported (≥ 32-bit) target; the range check below is the point of this function.
        let idx = id.0 as usize;
        if idx >= self.pages.len() {
            return Err(StorageError::OutOfRange {
                page: id,
                extent: self.pages.len(),
            });
        }
        Ok(idx)
    }

    /// Allocates a zeroed page, reusing a freed slot when available.
    ///
    /// Allocation itself is not counted as an access; the subsequent write
    /// of real content is.
    ///
    /// # Errors
    /// [`StorageError::Full`] when 32-bit page ids are exhausted.
    pub fn allocate(&mut self) -> Result<PageId, StorageError> {
        if let Some(id) = self.free.pop() {
            // analyze::allow(cast): lossless u32 → usize; free-list ids were in range when pushed and the vectors never shrink past them.
            let idx = id.0 as usize;
            self.pages[idx] = Page::zeroed(self.page_size);
            self.crcs[idx] = self.zero_crc;
            return Ok(id);
        }
        let id = match u32::try_from(self.pages.len()) {
            Ok(n) if PageId(n).is_valid() => PageId(n),
            _ => return Err(StorageError::Full),
        };
        self.pages.push(Page::zeroed(self.page_size));
        self.crcs.push(self.zero_crc);
        Ok(id)
    }

    /// Returns a page to the free list.
    ///
    /// # Errors
    /// Typed errors on the sentinel, an out-of-range id, or a double free.
    pub fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
        self.slot(id)?;
        if self.free.contains(&id) {
            return Err(StorageError::DoubleFree { page: id });
        }
        self.free.push(id);
        Ok(())
    }

    /// Verifies the checksum of the page in `idx` and clones it out.
    fn verified(&self, id: PageId, idx: usize) -> Result<Page, StorageError> {
        let page = &self.pages[idx];
        let actual = crc32(page.bytes());
        let stored = self.crcs[idx];
        if actual != stored {
            return Err(StorageError::Corrupt {
                page: id,
                detail: format!(
                    "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            });
        }
        Ok(page.clone())
    }

    /// Reads a page, verifying its checksum (counted as one logical read).
    ///
    /// # Errors
    /// Typed errors on bad ids; [`StorageError::Corrupt`] when the stored
    /// bytes no longer match the page's checksum.
    pub fn read_page(&self, id: PageId) -> Result<Page, StorageError> {
        self.stats.record_read();
        let idx = self.slot(id)?;
        self.verified(id, idx)
    }

    /// Writes a page and refreshes its checksum (counted as one logical
    /// write).
    ///
    /// # Errors
    /// Typed errors on bad ids or a page of the wrong size.
    pub fn write_page(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        self.stats.record_write();
        self.write_page_uncounted(id, page)
    }

    /// Serialises the whole file (pages + checksums + free list) to a
    /// writer.
    ///
    /// Format: magic `TSSSPG02`, a CRC-protected header block (page size,
    /// extent, free list), then per page its CRC32 followed by the raw
    /// bytes. Access counters are *not* persisted — they describe a
    /// session, not the data.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        use crate::codec::*;
        put_magic(w, b"TSSSPG02")?;
        let mut header = Vec::new();
        put_usize(&mut header, self.page_size)?;
        put_usize(&mut header, self.pages.len())?;
        put_usize(&mut header, self.free.len())?;
        for f in &self.free {
            put_u32(&mut header, f.0)?;
        }
        put_checked_block(w, &header)?;
        for (p, crc) in self.pages.iter().zip(&self.crcs) {
            put_u32(w, *crc)?;
            w.write_all(p.bytes())?;
        }
        Ok(())
    }

    /// Reads a file previously written by [`PageFile::write_to`], verifying
    /// the header checksum and every page checksum — a full scrub, so a
    /// damaged file is refused at open rather than discovered mid-query.
    ///
    /// # Errors
    /// `InvalidData` on a bad magic tag, an unsupported version, a
    /// checksum mismatch anywhere, or an inconsistent free list; propagates
    /// I/O errors (truncation surfaces as `UnexpectedEof`).
    pub fn read_from<R: std::io::Read + ?Sized>(r: &mut R) -> std::io::Result<Self> {
        use crate::codec::*;
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        expect_versioned_magic(r, b"TSSSPG", 2)?;
        // 64 MB admits ~16 M free-list entries — far beyond any real file,
        // small enough that a hostile length prefix cannot exhaust memory.
        let header = get_checked_block(r, 1 << 26)?;
        let hr = &mut std::io::Cursor::new(header);
        let page_size = get_usize(hr)?;
        if page_size == 0 {
            return Err(invalid("zero page size".into()));
        }
        let extent = get_usize(hr)?;
        // analyze::allow(cast): lossless u32 → usize widening of the constant; the comparison rejects extents that cannot be addressed by 32-bit ids (MAX is the reserved sentinel).
        if extent >= u32::MAX as usize {
            return Err(invalid(format!("extent {extent} exceeds 32-bit page ids")));
        }
        let free_len = get_usize(hr)?;
        if free_len > extent {
            return Err(invalid(format!(
                "free list of {free_len} entries exceeds extent {extent}"
            )));
        }
        let mut free = Vec::with_capacity(free_len);
        let mut seen = vec![false; extent];
        for _ in 0..free_len {
            let id = PageId(get_u32(hr)?);
            // analyze::allow(cast): lossless u32 → usize; this comparison is the range check for the line below.
            if id.0 as usize >= extent {
                return Err(invalid("free-list entry out of range".into()));
            }
            // analyze::allow(cast): see above — just range-checked against `extent`, the length of `seen`.
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                return Err(invalid(format!("duplicate free-list entry {id}")));
            }
            free.push(id);
        }
        let mut pages = Vec::new();
        let mut crcs = Vec::new();
        for i in 0..extent {
            let stored = get_u32(r)?;
            let mut page = Page::zeroed(page_size);
            r.read_exact(page.bytes_mut())?;
            let actual = crc32(page.bytes());
            if actual != stored {
                return Err(invalid(format!(
                    "corrupt page#{i}: stored checksum {stored:#010x}, computed {actual:#010x}"
                )));
            }
            pages.push(page);
            crcs.push(stored);
        }
        Ok(Self {
            page_size,
            pages,
            crcs,
            free,
            stats: Arc::new(AccessStats::new()),
            zero_crc: crc32(&vec![0u8; page_size]),
        })
    }

    /// Stores a page and refreshes its checksum without access accounting —
    /// the buffer pool's physical path for evictions and flushes (logical
    /// counting already happened at the pool boundary).
    ///
    /// # Errors
    /// Typed errors on bad ids or a page of the wrong size.
    pub fn write_page_uncounted(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        if page.size() != self.page_size {
            return Err(StorageError::PageSizeMismatch {
                expected: self.page_size,
                got: page.size(),
            });
        }
        let idx = self.slot(id)?;
        self.crcs[idx] = crc32(page.bytes());
        self.pages[idx] = page;
        Ok(())
    }

    /// Reads a page **without** counting an access. Integrity is still
    /// verified.
    ///
    /// For the buffer pool's physical path, white-box tests, and integrity
    /// checks — never on the query path, where every touch must be charged.
    ///
    /// # Errors
    /// As [`PageFile::read_page`].
    pub fn read_page_uncounted(&self, id: PageId) -> Result<Page, StorageError> {
        let idx = self.slot(id)?;
        self.verified(id, idx)
    }

    /// Damages the stored bytes of `id` in place via `f`, deliberately
    /// **not** refreshing the page's checksum: the next read reports
    /// [`StorageError::Corrupt`]. Models medium damage (bit rot, torn
    /// sectors) for fault injection and chaos tests.
    ///
    /// # Errors
    /// Typed errors on bad ids.
    pub fn corrupt_raw(
        &mut self,
        id: PageId,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), StorageError> {
        let idx = self.slot(id)?;
        f(self.pages[idx].bytes_mut());
        Ok(())
    }
}

impl PageStore for PageFile {
    fn page_size(&self) -> usize {
        PageFile::page_size(self)
    }

    fn extent(&self) -> usize {
        PageFile::extent(self)
    }

    fn live_pages(&self) -> usize {
        PageFile::live_pages(self)
    }

    fn stats(&self) -> Arc<AccessStats> {
        PageFile::stats(self)
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        PageFile::allocate(self)
    }

    fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
        PageFile::deallocate(self, id)
    }

    fn read(&self, id: PageId) -> Result<Page, StorageError> {
        self.read_page(id)
    }

    fn write(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        self.write_page(id, page)
    }

    fn read_uncounted(&self, id: PageId) -> Result<Page, StorageError> {
        self.read_page_uncounted(id)
    }

    fn write_uncounted(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
        self.write_page_uncounted(id, page)
    }

    fn corrupt_raw(
        &mut self,
        id: PageId,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), StorageError> {
        PageFile::corrupt_raw(self, id, f)
    }

    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.write_to(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_distinct_zeroed_pages() {
        let mut f = PageFile::new(64).unwrap();
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(f.live_pages(), 2);
        assert!(f
            .read_page_uncounted(a)
            .unwrap()
            .bytes()
            .iter()
            .all(|&x| x == 0));
    }

    #[test]
    fn zero_page_size_is_a_typed_error() {
        assert_eq!(
            PageFile::new(0).unwrap_err(),
            StorageError::BadPageSize { size: 0 }
        );
    }

    #[test]
    fn read_write_roundtrip_counts_accesses() {
        let mut f = PageFile::new(64).unwrap();
        let id = f.allocate().unwrap();
        let mut p = Page::zeroed(64);
        p.put_f64(0, 42.5);
        f.write_page(id, p).unwrap();
        let back = f.read_page(id).unwrap();
        assert_eq!(back.get_f64(0), 42.5);
        let stats = f.stats();
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.reads(), 1);
        assert_eq!(stats.total_accesses(), 2);
    }

    #[test]
    fn uncounted_read_does_not_touch_stats() {
        let mut f = PageFile::new(64).unwrap();
        let id = f.allocate().unwrap();
        let _ = f.read_page_uncounted(id).unwrap();
        assert_eq!(f.stats().total_accesses(), 0);
    }

    #[test]
    fn deallocate_then_allocate_reuses_slot_and_zeroes() {
        let mut f = PageFile::new(64).unwrap();
        let a = f.allocate().unwrap();
        let mut p = Page::zeroed(64);
        p.put_u64(0, 7);
        f.write_page(a, p).unwrap();
        f.deallocate(a).unwrap();
        assert_eq!(f.live_pages(), 0);
        let b = f.allocate().unwrap();
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(
            f.read_page_uncounted(b).unwrap().get_u64(0),
            0,
            "page re-zeroed"
        );
        assert_eq!(f.extent(), 1, "no physical growth");
    }

    #[test]
    fn free_list_cycles_do_not_leak_or_resurrect_stale_content() {
        // Satellite: dealloc/realloc churn must neither grow the extent nor
        // let stale bytes survive a checksum-verified read.
        let mut f = PageFile::new(64).unwrap();
        let ids: Vec<PageId> = (0..4).map(|_| f.allocate().unwrap()).collect();
        for round in 0u64..50 {
            for (i, &id) in ids.iter().enumerate() {
                let mut p = Page::zeroed(64);
                p.put_u64(0, round * 100 + i as u64);
                f.write_page(id, p).unwrap();
            }
            // Free two, reallocate two — slots must be reused, re-zeroed,
            // and verify cleanly.
            f.deallocate(ids[1]).unwrap();
            f.deallocate(ids[3]).unwrap();
            assert_eq!(f.live_pages(), 2);
            let r1 = f.allocate().unwrap();
            let r2 = f.allocate().unwrap();
            let mut reused = [r1, r2];
            reused.sort();
            assert_eq!(reused, [ids[1], ids[3]], "round {round}: slots not reused");
            for id in reused {
                let p = f.read_page(id).expect("re-zeroed page verifies");
                assert!(p.bytes().iter().all(|&b| b == 0), "stale bytes resurrected");
            }
        }
        assert_eq!(f.extent(), 4, "free-list churn must not leak pages");
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut f = PageFile::new(64).unwrap();
        let a = f.allocate().unwrap();
        f.deallocate(a).unwrap();
        assert_eq!(
            f.deallocate(a).unwrap_err(),
            StorageError::DoubleFree { page: a }
        );
    }

    #[test]
    fn wrong_size_write_is_a_typed_error() {
        let mut f = PageFile::new(64).unwrap();
        let a = f.allocate().unwrap();
        assert_eq!(
            f.write_page(a, Page::zeroed(128)).unwrap_err(),
            StorageError::PageSizeMismatch {
                expected: 64,
                got: 128
            }
        );
    }

    #[test]
    fn invalid_sentinel_and_out_of_range_ids_are_typed_errors() {
        let mut f = PageFile::new(64).unwrap();
        let _ = f.allocate().unwrap();
        assert_eq!(
            f.read_page(PageId::INVALID).unwrap_err(),
            StorageError::InvalidPageId
        );
        assert_eq!(
            f.read_page(PageId(9)).unwrap_err(),
            StorageError::OutOfRange {
                page: PageId(9),
                extent: 1
            }
        );
        assert!(matches!(
            f.deallocate(PageId::INVALID).unwrap_err(),
            StorageError::InvalidPageId
        ));
        assert!(matches!(
            f.write_page(PageId(5), Page::zeroed(64)).unwrap_err(),
            StorageError::OutOfRange { .. }
        ));
    }

    #[test]
    fn corrupt_raw_is_detected_on_read() {
        let mut f = PageFile::new(64).unwrap();
        let id = f.allocate().unwrap();
        let mut p = Page::zeroed(64);
        p.put_u64(0, 12345);
        f.write_page(id, p).unwrap();
        f.corrupt_raw(id, &mut |bytes| bytes[3] ^= 0x40).unwrap();
        assert!(matches!(
            f.read_page(id).unwrap_err(),
            StorageError::Corrupt { page, .. } if page == id
        ));
        // A legitimate rewrite heals the page.
        f.write_page(id, Page::zeroed(64)).unwrap();
        assert!(f.read_page(id).is_ok());
    }

    #[test]
    fn stats_are_shared_with_handles() {
        let mut f = PageFile::new(64).unwrap();
        let id = f.allocate().unwrap();
        let handle = f.stats();
        let _ = f.read_page(id);
        assert_eq!(handle.reads(), 1);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_free_list() {
        let mut f = PageFile::new(64).unwrap();
        let ids: Vec<PageId> = (0..5).map(|_| f.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(64);
            p.put_u64(0, i as u64 * 11);
            f.write_page(id, p).unwrap();
        }
        f.deallocate(ids[2]).unwrap();
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let mut g = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.page_size(), 64);
        assert_eq!(g.extent(), 5);
        assert_eq!(g.live_pages(), 4);
        for (i, &id) in ids.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(g.read_page_uncounted(id).unwrap().get_u64(0), i as u64 * 11);
        }
        // Reallocation reuses the freed slot, as in the original.
        assert_eq!(g.allocate().unwrap(), ids[2]);
    }

    #[test]
    fn counters_are_not_persisted() {
        let mut f = PageFile::new(32).unwrap();
        let id = f.allocate().unwrap();
        let _ = f.read_page(id);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let g = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.stats().total_accesses(), 0);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut buf = Vec::new();
        PageFile::new(32).unwrap().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn old_version_is_rejected_with_a_version_message() {
        let mut buf = Vec::new();
        PageFile::new(32).unwrap().write_to(&mut buf).unwrap();
        buf[6..8].copy_from_slice(b"01");
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut f = PageFile::new(32).unwrap();
        let _ = f.allocate().unwrap();
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(PageFile::read_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn every_single_bit_flip_in_the_stream_is_rejected() {
        let mut f = PageFile::new(32).unwrap();
        let ids: Vec<PageId> = (0..3).map(|_| f.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(32);
            p.put_u64(0, 0xA5A5 + i as u64);
            f.write_page(id, p).unwrap();
        }
        f.deallocate(ids[1]).unwrap();
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        for byte in 0..buf.len() {
            for bit in [0u8, 3, 7] {
                let mut damaged = buf.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    PageFile::read_from(&mut std::io::Cursor::new(damaged)).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn out_of_range_free_entry_is_rejected() {
        // Build a file whose (otherwise valid, correctly checksummed)
        // header claims a free-list entry beyond the extent.
        use crate::codec::*;
        let mut buf = Vec::new();
        put_magic(&mut buf, b"TSSSPG02").unwrap();
        let mut header = Vec::new();
        put_usize(&mut header, 32).unwrap(); // page size
        put_usize(&mut header, 1).unwrap(); // extent
        put_usize(&mut header, 1).unwrap(); // free_len
        put_u32(&mut header, 7).unwrap(); // free entry 7 >= extent 1
        put_checked_block(&mut buf, &header).unwrap();
        let page = vec![0u8; 32];
        put_u32(&mut buf, crc32(&page)).unwrap();
        buf.extend_from_slice(&page);
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("free-list entry out of range"));
    }

    #[test]
    fn duplicate_free_entry_is_rejected() {
        use crate::codec::*;
        let mut buf = Vec::new();
        put_magic(&mut buf, b"TSSSPG02").unwrap();
        let mut header = Vec::new();
        put_usize(&mut header, 32).unwrap();
        put_usize(&mut header, 2).unwrap();
        put_usize(&mut header, 2).unwrap();
        put_u32(&mut header, 0).unwrap();
        put_u32(&mut header, 0).unwrap();
        put_checked_block(&mut buf, &header).unwrap();
        for _ in 0..2 {
            let page = vec![0u8; 32];
            put_u32(&mut buf, crc32(&page)).unwrap();
            buf.extend_from_slice(&page);
        }
        let err = PageFile::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("duplicate free-list entry"));
    }
}
