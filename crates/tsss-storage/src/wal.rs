//! Write-ahead append log: the durability half of the ingest story.
//!
//! A [`Wal`] is a sidecar file holding a header followed by framed,
//! CRC32-checksummed byte records. The engine layer appends one record per
//! acknowledged mutation **before** mutating any in-memory state, and the
//! append's `fsync` is the acknowledgement point: once [`Wal::append`]
//! returns, the record survives a process kill or power cut. A full
//! engine save makes the log redundant, so the saver calls
//! [`Wal::truncate`] afterwards; on startup the caller replays whatever
//! records the log still holds (see `tsss-core`'s durable engine).
//!
//! # On-disk format
//!
//! ```text
//! header:  8-byte versioned magic ("TSSSWL01")
//! record:  u32 payload_len · u32 crc32(payload) · payload bytes
//! ```
//!
//! Everything is little-endian ([`crate::codec`]). The scanner is
//! **tail-tolerant**: a record cut short by a crash mid-write (torn frame)
//! or damaged by media rot (CRC mismatch) ends the scan cleanly at the
//! last intact record — exactly the semantics a crashed appender needs,
//! since the torn record was never acknowledged. Damage is *reported*
//! ([`WalScan::damaged_tail`]), never silently hidden, and
//! [`Wal::open`] truncates the damaged tail so the next append starts on
//! a clean frame boundary. Damage to the 8-byte header is a hard error:
//! the header is written once and synced at creation, so a bad header
//! means the file is not (or no longer) a WAL at all.
//!
//! The log layer is payload-agnostic — records are byte strings. Typed
//! encoding (which series, which values) lives with the engine that owns
//! the log, keeping this module reusable and free of upward dependencies.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, expect_versioned_magic, get_u32, versioned_magic};

/// Magic prefix of the WAL sidecar format.
const MAGIC_PREFIX: &[u8; 6] = b"TSSSWL";
/// Current format version (`TSSSWL01`).
const VERSION: u8 = 1;
/// Bytes of the one-time header preceding the first record.
const HEADER_LEN: u64 = 8;
/// Per-record frame overhead: `u32` length + `u32` CRC.
const FRAME_OVERHEAD: u64 = 8;

/// Upper bound on a single record's payload. An append call carries at
/// most one HTTP body's worth of values, so a length prefix beyond this is
/// tail damage (a torn length field decoding as garbage), not a real
/// record — the scanner stops rather than attempting the allocation.
pub const MAX_WAL_RECORD_BYTES: usize = 1 << 28;

/// The result of scanning a WAL from its header to its (possibly damaged)
/// tail.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when the scan stopped at a torn or corrupt tail record (which
    /// is dropped — it was never acknowledged).
    pub damaged_tail: bool,
    /// File length in bytes up to and including the last intact record.
    pub valid_len: u64,
}

/// An open write-ahead log positioned for appending; see the module docs.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
}

impl Wal {
    /// Creates (or truncates) the log at `path`: writes the header and
    /// syncs it, leaving an empty, appendable WAL.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn create(path: &Path) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&versioned_magic(MAGIC_PREFIX, VERSION))?;
        file.sync_all()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Opens the log at `path` for appending, creating it when missing.
    /// Scans every intact record (returned for replay), truncates any
    /// torn or corrupt tail, and positions the write cursor after the
    /// last intact record.
    ///
    /// # Errors
    /// `InvalidData` when the header is damaged (the file is not a WAL);
    /// propagates I/O errors.
    pub fn open(path: &Path) -> io::Result<(Wal, WalScan)> {
        if !path.exists() {
            let wal = Wal::create(path)?;
            return Ok((
                wal,
                WalScan {
                    records: Vec::new(),
                    damaged_tail: false,
                    valid_len: HEADER_LEN,
                },
            ));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let scan = scan_stream(&mut file)?;
        // Drop the damaged tail (if any) so the next append starts on a
        // clean frame boundary instead of extending a torn frame.
        file.set_len(scan.valid_len)?;
        file.seek(SeekFrom::Start(scan.valid_len))?;
        if scan.damaged_tail {
            file.sync_all()?;
        }
        let records = u64::try_from(scan.records.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL record count overflow"))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                records,
            },
            scan,
        ))
    }

    /// Appends one record and **fsyncs** it — the durability
    /// acknowledgement point. When this returns `Ok`, the record survives
    /// a process kill at any later moment.
    ///
    /// # Errors
    /// `InvalidInput` when the payload exceeds
    /// [`MAX_WAL_RECORD_BYTES`]; propagates I/O errors (an error means
    /// the record is **not** durable and must not be acknowledged).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = frame_record(payload)?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Fault-injection helper: writes only the first half of the record's
    /// frame and does **not** sync — the on-disk image a process kill
    /// between `write` and `fsync` leaves behind. The record is never
    /// counted; a subsequent [`Wal::open`] must report a damaged tail and
    /// recover every earlier record.
    ///
    /// # Errors
    /// As [`Wal::append`].
    pub fn append_torn_unsynced(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = frame_record(payload)?;
        frame.truncate(frame.len() / 2);
        self.file.write_all(&frame)?;
        self.file.flush()
    }

    /// Empties the log back to its header — called right after a full
    /// engine save lands atomically, at which point every logged record
    /// is reflected in the saved engine and the log is redundant.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_all()?;
        self.records = 0;
        Ok(())
    }

    /// Records appended (or recovered at open) and not yet truncated away.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read-only scan of the WAL at `path`; a missing file is an empty log.
///
/// # Errors
/// `InvalidData` when the header is damaged; propagates I/O errors.
pub fn scan(path: &Path) -> io::Result<WalScan> {
    if !path.exists() {
        return Ok(WalScan {
            records: Vec::new(),
            damaged_tail: false,
            valid_len: HEADER_LEN,
        });
    }
    let mut file = File::open(path)?;
    scan_stream(&mut file)
}

/// Builds the on-disk frame for one record.
fn frame_record(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_WAL_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "WAL record exceeds the maximum payload size",
        ));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "WAL record length overflow"))?;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Scans from the header to the tail; see [`WalScan`] for the contract.
/// The body is read into memory first — a WAL is truncated on every full
/// save, so its size is bounded by the appends since the last save.
fn scan_stream<R: Read>(r: &mut R) -> io::Result<WalScan> {
    expect_versioned_magic(r, MAGIC_PREFIX, VERSION)?;
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    let body_len = u64::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL length overflow"))?;
    let mut cur = io::Cursor::new(body.as_slice());
    let mut records = Vec::new();
    let mut valid_len = HEADER_LEN;
    let mut damaged_tail = false;
    while cur.position() < body_len {
        let frame = read_frame(&mut cur);
        match frame {
            Some(payload) => {
                let payload_len = u64::try_from(payload.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "WAL record length overflow")
                })?;
                valid_len += FRAME_OVERHEAD + payload_len;
                records.push(payload);
            }
            None => {
                damaged_tail = true;
                break;
            }
        }
    }
    Ok(WalScan {
        records,
        damaged_tail,
        valid_len,
    })
}

/// Reads one frame from the in-memory cursor; `None` on any torn or
/// corrupt shape (short length field, absurd length, short payload, CRC
/// mismatch) — all of which end the scan at the previous record.
fn read_frame(cur: &mut io::Cursor<&[u8]>) -> Option<Vec<u8>> {
    let len = get_u32(cur).ok()?;
    let len = usize::try_from(len).ok()?;
    if len > MAX_WAL_RECORD_BYTES {
        return None;
    }
    let want_crc = get_u32(cur).ok()?;
    let mut payload = vec![0u8; len];
    cur.read_exact(&mut payload).ok()?;
    if crc32(&payload) != want_crc {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsss-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.wal")
    }

    #[test]
    fn empty_log_roundtrips() {
        let path = temp_wal_path("empty");
        let wal = Wal::create(&path).unwrap();
        assert_eq!(wal.records(), 0);
        drop(wal);
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(wal.records(), 0);
        assert!(scan.records.is_empty());
        assert!(!scan.damaged_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_opens_as_a_fresh_log() {
        let path = temp_wal_path("missing");
        std::fs::remove_file(&path).ok();
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty() && !s.damaged_tail);
        let (wal, s) = Wal::open(&path).unwrap();
        assert_eq!(wal.records(), 0);
        assert!(s.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_records_scan_back_in_order() {
        let path = temp_wal_path("order");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap(); // empty payloads are legal records
        wal.append(&[0xAB; 1000]).unwrap();
        assert_eq!(wal.records(), 3);
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0], b"alpha");
        assert_eq!(s.records[1], b"");
        assert_eq!(s.records[2], vec![0xAB; 1000]);
        assert!(!s.damaged_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_earlier_records_survive() {
        let path = temp_wal_path("torn");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"kept one").unwrap();
        wal.append(b"kept two").unwrap();
        wal.append_torn_unsynced(b"torn away mid-frame").unwrap();
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2, "the torn record was never acked");
        assert!(s.damaged_tail, "damage must be reported, not hidden");
        // Re-opening truncates the tail and appends continue cleanly.
        let (mut wal, s) = Wal::open(&path).unwrap();
        assert_eq!(wal.records(), 2);
        assert_eq!(s.records.len(), 2);
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 3);
        assert!(!s.damaged_tail, "tail damage was truncated at open");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flipped_record_ends_the_scan_at_the_previous_record() {
        let path = temp_wal_path("flip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"to be damaged").unwrap();
        drop(wal);
        // Flip one payload bit of the final record, beneath the CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0], b"good");
        assert!(s.damaged_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_empties_the_log_but_keeps_it_appendable() {
        let path = temp_wal_path("trunc");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        wal.append(b"post-truncate").unwrap();
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0], b"post-truncate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_header_is_a_hard_error() {
        let path = temp_wal_path("header");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"x").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(scan(&path).is_err(), "a smashed header is not tail damage");
        assert!(Wal::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_prefix_is_tail_damage_not_an_allocation() {
        let path = temp_wal_path("absurd");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"fine").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Append a frame whose length field claims ~4 GiB.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.damaged_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_payload_is_rejected_before_touching_the_file() {
        let path = temp_wal_path("oversize");
        let mut wal = Wal::create(&path).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let huge = vec![0u8; MAX_WAL_RECORD_BYTES + 1];
        assert!(wal.append(&huge).is_err());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        std::fs::remove_file(&path).ok();
    }
}
