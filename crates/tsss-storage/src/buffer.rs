//! A thread-safe LRU buffer pool in front of a [`PageStore`].
//!
//! The paper's Figure 5 counts raw (unbuffered) page accesses, so the
//! reproduction engine defaults to `capacity = 0` — every logical access is
//! also a physical one, and the pool is a pass-through that only keeps the
//! books. The `ablation_buffer` bench then turns the pool on to show how a
//! modest cache changes the sequential-vs-tree picture (an extension beyond
//! the paper).
//!
//! Accounting model:
//!
//! * [`AccessStats::reads`]/[`AccessStats::writes`] — **logical** accesses:
//!   every page the algorithm touches. This is the Figure 5 metric.
//! * [`AccessStats::hits`]/[`AccessStats::misses`] — how the pool served the
//!   logical reads. With `capacity = 0`, `misses == reads`.
//!
//! Evictions write dirty frames back to the store; those write-backs are
//! physical artefacts of caching and are *not* added to the logical
//! counters.
//!
//! # Concurrency model
//!
//! The pool has interior mutability so the whole read path can run on
//! `&self` from many threads at once:
//!
//! * The backing [`PageStore`] sits behind an `RwLock`. In the paper's
//!   unbuffered regime (`capacity = 0`) reads only ever take the shared
//!   lock, so concurrent queries proceed in parallel.
//! * Cached frames live in **shards**, each its own `Mutex`-protected LRU
//!   (pages hash to shards by id). Hit/miss accounting stays exact: the
//!   shard lock is held from lookup to frame insertion, so every logical
//!   read is classified exactly once.
//! * Lock order is always shard → store; shards are never nested, so the
//!   pool cannot deadlock against itself.
//!
//! Structural operations (allocate/deallocate/wrap-store) take `&mut self` —
//! they are build/maintenance-time operations and the exclusive borrow makes
//! the single-writer discipline explicit in the API.
//!
//! # Fallibility
//!
//! Every path that touches the store propagates [`StorageError`], so
//! checksum failures and injected faults in the medium surface to the
//! R-tree and engine as typed errors instead of panics. That includes
//! lock poisoning: if another thread panicked while holding a shard or
//! store lock, operations return [`StorageError::LockPoisoned`] instead
//! of propagating the panic.

// analyze::allow-file(index): frame indices flow only from the intrusive LRU list (head/tail/prev/next) and the id→index map, which are mutated together with the frame vector under the owning shard's lock; `shard()` reduces the hash modulo `shards.len()`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::disk::{PageFile, PageId};
use crate::error::StorageError;
use crate::page::Page;
use crate::stats::AccessStats;
use crate::store::PageStore;

const NIL: usize = usize::MAX;

/// Upper bound on frame-table shards (fewer when capacity is small, so each
/// shard still holds at least one frame).
const MAX_SHARDS: usize = 8;

/// Physical read attempts per logical read: one initial try plus up to two
/// retries for transient faults. Deterministic and wall-clock free — the
/// "backoff" is simply re-issuing the read, which under the seeded
/// [`crate::FaultyStore`] draws a fresh Bernoulli trial.
const READ_ATTEMPTS: u32 = 3;

#[derive(Debug)]
struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// One independently locked slice of the frame table: a bounded LRU over the
/// pages that hash to this shard.
#[derive(Debug)]
struct Shard {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.frames[idx].prev, self.frames[idx].next);
        if p != NIL {
            self.frames[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.frames[n].prev = p;
        } else {
            self.tail = p;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Detaches the (already unlinked) frame at `idx` from the table and
    /// returns it. Uses swap-remove to keep the frame vector dense, then
    /// repairs the map entry and list pointers of the frame that moved
    /// into `idx`. Nothing in the list can still point at `idx` itself —
    /// the caller unlinked it first.
    fn detach(&mut self, idx: usize) -> Frame {
        let frame = self.frames.swap_remove(idx);
        self.map.remove(&frame.id);
        if idx < self.frames.len() {
            let moved_id = self.frames[idx].id;
            match self.map.get_mut(&moved_id) {
                Some(slot) => *slot = idx,
                // Map and frame vector are updated together under the
                // shard lock, so a cached frame is always mapped.
                None => debug_assert!(false, "LRU map out of sync with frame table"),
            }
            let (p, n) = (self.frames[idx].prev, self.frames[idx].next);
            if p != NIL {
                self.frames[p].next = idx;
            } else {
                self.head = idx;
            }
            if n != NIL {
                self.frames[n].prev = idx;
            } else {
                self.tail = idx;
            }
        }
        frame
    }

    /// Unlinks and drops any cached frame for `id` without writing it
    /// back — the freed/corrupted page's cached copy is meaningless.
    fn discard(&mut self, id: PageId) {
        if let Some(&idx) = self.map.get(&id) {
            self.unlink(idx);
            self.detach(idx);
        }
    }

    /// Inserts a frame, evicting the LRU victim first when full. A dirty
    /// victim is written back to the store (uncounted — caching artefact).
    fn insert_frame(
        &mut self,
        id: PageId,
        page: Page,
        dirty: bool,
        store: &RwLock<Box<dyn PageStore>>,
    ) -> Result<(), StorageError> {
        debug_assert!(self.capacity > 0);
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "evict on empty shard");
            self.unlink(victim);
            self.remove_frame(victim, store)?;
        }
        let idx = self.frames.len();
        self.frames.push(Frame {
            id,
            page,
            dirty,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(id, idx);
        self.push_front(idx);
        Ok(())
    }

    /// Removes the frame at `idx` (which must already be unlinked from the
    /// LRU list), writing it back if dirty. The frame is dropped even when
    /// the write-back fails — the error is reported, but the cache stays
    /// consistent.
    fn remove_frame(
        &mut self,
        idx: usize,
        store: &RwLock<Box<dyn PageStore>>,
    ) -> Result<(), StorageError> {
        let frame = self.detach(idx);
        if frame.dirty {
            store
                .write()
                .map_err(|_| StorageError::LockPoisoned)?
                .write_uncounted(frame.id, frame.page)?;
        }
        Ok(())
    }

    fn flush(&mut self, store: &RwLock<Box<dyn PageStore>>) -> Result<(), StorageError> {
        let mut store = store.write().map_err(|_| StorageError::LockPoisoned)?;
        for f in &mut self.frames {
            if f.dirty {
                store.write_uncounted(f.id, f.page.clone())?;
                f.dirty = false;
            }
        }
        Ok(())
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A sharded LRU page cache with write-back semantics over a [`PageStore`],
/// safe for concurrent readers.
///
/// ```
/// use tsss_storage::{BufferPool, Page, PageFile};
/// let mut file = PageFile::new(64).unwrap();
/// let id = file.allocate().unwrap();
/// let pool = BufferPool::new(file, 4);
/// let mut page = Page::zeroed(64);
/// page.put_u64(0, 42);
/// pool.write(id, page).unwrap();
/// assert_eq!(pool.read(id).unwrap().get_u64(0), 42);
/// assert_eq!(pool.stats().hits(), 1); // served from the cached frame
/// ```
#[derive(Debug)]
pub struct BufferPool {
    store: RwLock<Box<dyn PageStore>>,
    capacity: usize,
    page_size: usize,
    shards: Vec<Mutex<Shard>>,
    stats: Arc<AccessStats>,
}

impl BufferPool {
    /// Wraps `file` in a pool holding at most `capacity` frames.
    ///
    /// `capacity = 0` disables caching entirely (the paper's measurement
    /// regime): reads and writes go straight to the store and every read is
    /// a miss.
    pub fn new(file: PageFile, capacity: usize) -> Self {
        Self::from_store(Box::new(file), capacity)
    }

    /// Wraps an arbitrary [`PageStore`] (e.g. a [`crate::FaultyStore`]) in
    /// a pool holding at most `capacity` frames.
    pub fn from_store(store: Box<dyn PageStore>, capacity: usize) -> Self {
        let stats = store.stats();
        let page_size = store.page_size();
        let n_shards = capacity.clamp(0, MAX_SHARDS);
        let shards = (0..n_shards)
            .map(|i| {
                // Distribute capacity as evenly as possible; every shard gets
                // at least one frame.
                let cap = capacity / n_shards + usize::from(i < capacity % n_shards);
                Mutex::new(Shard::new(cap))
            })
            .collect();
        Self {
            store: RwLock::new(store),
            capacity,
            page_size,
            shards,
            stats,
        }
    }

    /// Replaces the backing store with `wrap(old_store)` — the hook chaos
    /// tests use to slide a [`crate::FaultyStore`] underneath a live tree.
    /// Cached frames are dropped (without write-back) so every subsequent
    /// access goes through the new store. Poisoned locks are recovered
    /// rather than reported: every piece of the protected state is
    /// discarded or replaced here anyway.
    pub fn wrap_store(&mut self, wrap: impl FnOnce(Box<dyn PageStore>) -> Box<dyn PageStore>) {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
        let slot = self.store.get_mut().unwrap_or_else(PoisonError::into_inner);
        // Park an inert placeholder while `wrap` consumes the real store.
        let old = std::mem::replace(slot, Box::new(NullStore) as Box<dyn PageStore>);
        *slot = wrap(old);
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently cached. Tolerates poisoned shards (the
    /// count is advisory; reading a length cannot observe a torn update).
    pub fn cached(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Shared access counters (same object the underlying store reports to).
    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    /// Allocates a fresh page in the backing store.
    ///
    /// # Errors
    /// Propagates the store's typed errors.
    pub fn allocate(&mut self) -> Result<PageId, StorageError> {
        self.store
            .get_mut()
            .map_err(|_| StorageError::LockPoisoned)?
            .allocate()
    }

    /// Frees a page, dropping any cached frame for it (dirty or not).
    ///
    /// # Errors
    /// Propagates the store's typed errors (double free, bad ids).
    pub fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
        if !self.shards.is_empty() {
            // Drop without write-back: the page is being freed.
            self.shard(id)
                .lock()
                .map_err(|_| StorageError::LockPoisoned)?
                .discard(id);
        }
        self.store
            .get_mut()
            .map_err(|_| StorageError::LockPoisoned)?
            .deallocate(id)
    }

    /// Page size of the backing store.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Physical extent (pages ever allocated) of the backing store.
    /// Tolerates a poisoned store lock — the extent is a monotone counter
    /// the store updates atomically with respect to this lock.
    pub fn extent(&self) -> usize {
        self.store
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .extent()
    }

    fn shard(&self, id: PageId) -> &Mutex<Shard> {
        // analyze::allow(cast): u32 page id → usize is lossless on every supported (≥32-bit) target, and the modulo bounds the index.
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// Issues a physical read, re-issuing it up to [`READ_ATTEMPTS`] times
    /// while the failure is transient ([`StorageError::is_transient`]).
    /// Each re-issue is recorded as a retry; permanent errors propagate
    /// immediately. The happy path costs nothing extra: the first success
    /// returns without touching the retry counter.
    fn read_with_retry(
        store: &dyn PageStore,
        stats: &AccessStats,
        id: PageId,
    ) -> Result<Page, StorageError> {
        let mut attempt = 1;
        loop {
            match store.read_uncounted(id) {
                Err(e) if e.is_transient() && attempt < READ_ATTEMPTS => {
                    stats.record_retry();
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Reads a page through the cache. Counts one logical read, plus a hit
    /// or a miss. Transient store failures are retried a bounded number of
    /// times (recorded in [`AccessStats::retries`]) before surfacing. Safe
    /// to call from many threads at once.
    ///
    /// # Errors
    /// Propagates the store's typed errors — notably
    /// [`StorageError::Corrupt`] on a checksum mismatch.
    pub fn read(&self, id: PageId) -> Result<Page, StorageError> {
        self.stats.record_read();
        if self.capacity == 0 {
            self.stats.record_miss();
            let store = self.store.read().map_err(|_| StorageError::LockPoisoned)?;
            return Self::read_with_retry(store.as_ref(), &self.stats, id);
        }
        let mut shard = self
            .shard(id)
            .lock()
            .map_err(|_| StorageError::LockPoisoned)?;
        if let Some(&idx) = shard.map.get(&id) {
            self.stats.record_hit();
            shard.touch(idx);
            return Ok(shard.frames[idx].page.clone());
        }
        self.stats.record_miss();
        let page = {
            let store = self.store.read().map_err(|_| StorageError::LockPoisoned)?;
            Self::read_with_retry(store.as_ref(), &self.stats, id)?
        };
        shard.insert_frame(id, page.clone(), false, &self.store)?;
        Ok(page)
    }

    /// Writes a page through the cache. Counts one logical write. Safe to
    /// call concurrently with reads (writers of the *same* page serialise on
    /// its shard).
    ///
    /// # Errors
    /// Propagates the store's typed errors; rejects wrong-size pages.
    pub fn write(&self, id: PageId, page: Page) -> Result<(), StorageError> {
        if page.size() != self.page_size {
            return Err(StorageError::PageSizeMismatch {
                expected: self.page_size,
                got: page.size(),
            });
        }
        self.stats.record_write();
        if self.capacity == 0 {
            return self
                .store
                .write()
                .map_err(|_| StorageError::LockPoisoned)?
                .write_uncounted(id, page);
        }
        let mut shard = self
            .shard(id)
            .lock()
            .map_err(|_| StorageError::LockPoisoned)?;
        if let Some(&idx) = shard.map.get(&id) {
            shard.frames[idx].page = page;
            shard.frames[idx].dirty = true;
            shard.touch(idx);
            return Ok(());
        }
        shard.insert_frame(id, page, true, &self.store)
    }

    /// Writes every dirty frame back to the store (frames stay cached,
    /// now clean).
    ///
    /// # Errors
    /// Propagates write-back failures.
    pub fn flush(&self) -> Result<(), StorageError> {
        for shard in &self.shards {
            shard
                .lock()
                .map_err(|_| StorageError::LockPoisoned)?
                .flush(&self.store)?;
        }
        Ok(())
    }

    /// Flushes and returns the backing store.
    ///
    /// # Errors
    /// Propagates write-back failures (the store is lost in that case —
    /// callers needing the bytes regardless should `flush` first and
    /// inspect the error).
    pub fn into_store(self) -> Result<Box<dyn PageStore>, StorageError> {
        self.flush()?;
        self.store
            .into_inner()
            .map_err(|_| StorageError::LockPoisoned)
    }

    /// Runs `f` against the backing store's durable contents (dirty frames
    /// are flushed first so the store is current).
    ///
    /// # Errors
    /// Propagates flush failures.
    pub fn with_store<R>(&self, f: impl FnOnce(&dyn PageStore) -> R) -> Result<R, StorageError> {
        self.flush()?;
        let store = self.store.read().map_err(|_| StorageError::LockPoisoned)?;
        Ok(f(store.as_ref()))
    }

    /// Damages the stored bytes of `id` via `f` without refreshing its
    /// checksum (see [`PageStore::corrupt_raw`]); any cached frame for the
    /// page is dropped so the damage is visible to the next read. Chaos
    /// test hook.
    ///
    /// # Errors
    /// Propagates the store's typed errors on bad ids.
    pub fn corrupt_page(
        &mut self,
        id: PageId,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), StorageError> {
        if !self.shards.is_empty() {
            // Drop without write-back: the cached copy must not mask the
            // damage planted in the store.
            self.shard(id)
                .lock()
                .map_err(|_| StorageError::LockPoisoned)?
                .discard(id);
        }
        self.store
            .get_mut()
            .map_err(|_| StorageError::LockPoisoned)?
            .corrupt_raw(id, f)
    }

    /// Drops every cached frame after flushing — subsequent reads are cold.
    /// Used between benchmark queries to reproduce the paper's per-query
    /// accounting.
    ///
    /// # Errors
    /// Propagates flush failures.
    pub fn clear_cache(&self) -> Result<(), StorageError> {
        for shard in &self.shards {
            let mut shard = shard.lock().map_err(|_| StorageError::LockPoisoned)?;
            shard.flush(&self.store)?;
            shard.clear();
        }
        Ok(())
    }
}

/// The inert store parked in the pool's store slot for the instant
/// [`BufferPool::wrap_store`] hands the real store to the wrapping
/// closure. Never observable through the pool's API; every operation is
/// refused with a typed error.
#[derive(Debug)]
struct NullStore;

impl PageStore for NullStore {
    fn page_size(&self) -> usize {
        0
    }
    fn extent(&self) -> usize {
        0
    }
    fn live_pages(&self) -> usize {
        0
    }
    fn stats(&self) -> Arc<AccessStats> {
        Arc::new(AccessStats::new())
    }
    fn allocate(&mut self) -> Result<PageId, StorageError> {
        Err(StorageError::Full)
    }
    fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn read(&self, id: PageId) -> Result<Page, StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn write(&mut self, id: PageId, _page: Page) -> Result<(), StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn read_uncounted(&self, id: PageId) -> Result<Page, StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn write_uncounted(&mut self, id: PageId, _page: Page) -> Result<(), StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn corrupt_raw(
        &mut self,
        id: PageId,
        _f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), StorageError> {
        Err(StorageError::OutOfRange {
            page: id,
            extent: 0,
        })
    }
    fn persist(&self, _w: &mut dyn std::io::Write) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> (BufferPool, Vec<PageId>) {
        let mut file = PageFile::new(64).unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| file.allocate().unwrap()).collect();
        // Seed each page with a recognisable value.
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(64);
            p.put_u64(0, i as u64 + 100);
            file.write_page(id, p).unwrap();
        }
        file.stats().reset();
        (BufferPool::new(file, cap), ids)
    }

    /// A store whose first `fail_reads` physical reads fail transiently,
    /// then behave honestly — the minimal deterministic transient fault.
    #[derive(Debug)]
    struct Flaky {
        inner: Box<dyn PageStore>,
        fail_reads: std::sync::atomic::AtomicU32,
    }

    impl PageStore for Flaky {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn extent(&self) -> usize {
            self.inner.extent()
        }
        fn live_pages(&self) -> usize {
            self.inner.live_pages()
        }
        fn stats(&self) -> Arc<AccessStats> {
            self.inner.stats()
        }
        fn allocate(&mut self) -> Result<PageId, StorageError> {
            self.inner.allocate()
        }
        fn deallocate(&mut self, id: PageId) -> Result<(), StorageError> {
            self.inner.deallocate(id)
        }
        fn read(&self, id: PageId) -> Result<Page, StorageError> {
            self.inner.read(id)
        }
        fn write(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
            self.inner.write(id, page)
        }
        fn read_uncounted(&self, id: PageId) -> Result<Page, StorageError> {
            use std::sync::atomic::Ordering;
            let left = self.fail_reads.load(Ordering::Relaxed);
            if left > 0 {
                self.fail_reads.store(left - 1, Ordering::Relaxed);
                return Err(StorageError::ReadFailed { page: id });
            }
            self.inner.read_uncounted(id)
        }
        fn write_uncounted(&mut self, id: PageId, page: Page) -> Result<(), StorageError> {
            self.inner.write_uncounted(id, page)
        }
        fn corrupt_raw(
            &mut self,
            id: PageId,
            f: &mut dyn FnMut(&mut [u8]),
        ) -> Result<(), StorageError> {
            self.inner.corrupt_raw(id, f)
        }
        fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
            self.inner.persist(w)
        }
    }

    fn flaky_pool(cap: usize, fail_reads: u32) -> (BufferPool, Vec<PageId>) {
        let (mut pool, ids) = pool(cap);
        pool.wrap_store(|inner| {
            Box::new(Flaky {
                inner,
                fail_reads: std::sync::atomic::AtomicU32::new(fail_reads),
            })
        });
        (pool, ids)
    }

    #[test]
    fn transient_read_failures_are_retried_to_success() {
        let (pool, ids) = flaky_pool(0, 2);
        let p = pool
            .read(ids[0])
            .expect("two transient faults fit in the retry budget");
        assert_eq!(p.get_u64(0), 100);
        let s = pool.stats();
        assert_eq!(s.retries(), 2);
        assert_eq!(s.reads(), 1, "a retried read is still one logical read");
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let (pool, ids) = flaky_pool(4, 10);
        assert_eq!(
            pool.read(ids[0]),
            Err(StorageError::ReadFailed { page: ids[0] })
        );
        assert_eq!(pool.stats().retries(), u64::from(READ_ATTEMPTS - 1));
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let (mut pool, ids) = pool(4);
        pool.corrupt_page(ids[0], &mut |b| b[0] ^= 0xFF).unwrap();
        assert!(matches!(
            pool.read(ids[0]),
            Err(StorageError::Corrupt { .. })
        ));
        assert_eq!(pool.stats().retries(), 0);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }

    #[test]
    fn unbuffered_pool_counts_every_read_as_miss() {
        let (pool, ids) = pool(0);
        for _ in 0..3 {
            let p = pool.read(ids[0]).unwrap();
            assert_eq!(p.get_u64(0), 100);
        }
        let s = pool.stats();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits(), 0);
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let (pool, ids) = pool(4);
        let _ = pool.read(ids[0]).unwrap();
        let _ = pool.read(ids[0]).unwrap();
        let _ = pool.read(ids[0]).unwrap();
        let s = pool.stats();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity 1 → a single shard with one frame, so LRU behaviour is
        // directly observable regardless of page→shard hashing.
        let (pool, ids) = pool(1);
        let _ = pool.read(ids[0]).unwrap(); // miss
        let _ = pool.read(ids[0]).unwrap(); // hit
        let _ = pool.read(ids[1]).unwrap(); // miss, evicts 0
        let _ = pool.read(ids[0]).unwrap(); // miss again
        let s = pool.stats();
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn writes_are_cached_and_flushed_back() {
        let (pool, ids) = pool(2);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 777);
        pool.write(ids[3], p).unwrap();
        // Read through the pool sees the new value even before flush.
        assert_eq!(pool.read(ids[3]).unwrap().get_u64(0), 777);
        let store = pool.into_store().unwrap();
        assert_eq!(store.read_uncounted(ids[3]).unwrap().get_u64(0), 777);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (pool, ids) = pool(1);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 555);
        pool.write(ids[0], p).unwrap(); // dirty frame for 0
        let _ = pool.read(ids[1]).unwrap(); // evicts 0, must write it back
        assert_eq!(pool.read(ids[0]).unwrap().get_u64(0), 555);
    }

    #[test]
    fn unbuffered_write_goes_straight_through() {
        let (pool, ids) = pool(0);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 42);
        pool.write(ids[5], p).unwrap();
        assert_eq!(pool.read(ids[5]).unwrap().get_u64(0), 42);
        assert_eq!(pool.cached(), 0);
    }

    #[test]
    fn clear_cache_makes_reads_cold_again() {
        let (pool, ids) = pool(4);
        let _ = pool.read(ids[0]).unwrap();
        let _ = pool.read(ids[0]).unwrap();
        pool.clear_cache().unwrap();
        let _ = pool.read(ids[0]).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses(), 2); // one before clear, one after
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn deallocate_drops_cached_frame() {
        let (mut pool, ids) = pool(4);
        let _ = pool.read(ids[0]).unwrap();
        assert_eq!(pool.cached(), 1);
        pool.deallocate(ids[0]).unwrap();
        assert_eq!(pool.cached(), 0);
    }

    #[test]
    fn bad_ids_and_sizes_are_typed_errors() {
        let (mut pool, _) = pool(0);
        assert_eq!(
            pool.read(PageId::INVALID).unwrap_err(),
            StorageError::InvalidPageId
        );
        assert!(matches!(
            pool.read(PageId(99)).unwrap_err(),
            StorageError::OutOfRange { .. }
        ));
        assert!(matches!(
            pool.write(PageId(0), Page::zeroed(32)).unwrap_err(),
            StorageError::PageSizeMismatch { .. }
        ));
        assert!(matches!(
            pool.deallocate(PageId::INVALID).unwrap_err(),
            StorageError::InvalidPageId
        ));
    }

    #[test]
    fn corrupt_page_is_detected_through_the_cache() {
        for cap in [0usize, 4] {
            let (mut pool, ids) = pool(cap);
            let _ = pool.read(ids[0]).unwrap(); // maybe cache the frame
            pool.corrupt_page(ids[0], &mut |bytes| bytes[0] ^= 0xFF)
                .unwrap();
            assert!(
                matches!(pool.read(ids[0]), Err(StorageError::Corrupt { .. })),
                "capacity {cap}: corruption must not be masked by the cache"
            );
        }
    }

    #[test]
    fn wrap_store_slides_a_decorator_under_a_live_pool() {
        use crate::fault::{FaultConfig, FaultyStore};
        let (mut pool, ids) = pool(4);
        let _ = pool.read(ids[0]).unwrap();
        pool.wrap_store(|inner| {
            Box::new(FaultyStore::new(inner, FaultConfig::read_errors(1, 1.0)))
        });
        assert!(
            matches!(pool.read(ids[0]), Err(StorageError::ReadFailed { .. })),
            "previously cached page must now go through the faulty store"
        );
    }

    #[test]
    fn with_store_sees_flushed_contents() {
        let (pool, ids) = pool(4);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 909);
        pool.write(ids[2], p).unwrap();
        let v = pool
            .with_store(|s| s.read_uncounted(ids[2]).unwrap().get_u64(0))
            .unwrap();
        assert_eq!(v, 909);
    }

    #[test]
    fn heavy_mixed_workload_stays_consistent() {
        // Deterministic pseudo-random access pattern; validates LRU's
        // swap-remove bookkeeping under churn by checking every read value.
        let (pool, ids) = pool(3);
        let mut x = 12345u64;
        for step in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % ids.len();
            if step % 5 == 0 {
                let mut p = Page::zeroed(64);
                p.put_u64(0, 1000 + step);
                p.put_u64(8, i as u64);
                pool.write(ids[i], p).unwrap();
            } else {
                let p = pool.read(ids[i]).unwrap();
                let v = p.get_u64(0);
                // Either the seed value or some later write targeted at i.
                if v >= 1000 {
                    assert_eq!(p.get_u64(8), i as u64, "frame mix-up at {step}");
                } else {
                    assert_eq!(v, 100 + i as u64);
                }
            }
            assert!(pool.cached() <= 3);
        }
    }

    #[test]
    fn concurrent_reads_agree_with_the_file() {
        for capacity in [0usize, 1, 4, 8] {
            let (pool, ids) = pool(capacity);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let pool = &pool;
                    let ids = &ids;
                    sc.spawn(move || {
                        let mut x = t + 1;
                        for _ in 0..500 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let i = (x >> 33) as usize % ids.len();
                            assert_eq!(pool.read(ids[i]).unwrap().get_u64(0), 100 + i as u64);
                        }
                    });
                }
            });
            let s = pool.stats();
            assert_eq!(s.reads(), 2000, "capacity {capacity}");
            assert_eq!(s.hits() + s.misses(), 2000, "capacity {capacity}");
        }
    }
}
