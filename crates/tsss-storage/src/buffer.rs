//! An LRU buffer pool in front of a [`PageFile`].
//!
//! The paper's Figure 5 counts raw (unbuffered) page accesses, so the
//! reproduction engine defaults to `capacity = 0` — every logical access is
//! also a physical one, and the pool is a pass-through that only keeps the
//! books. The `ablation_buffer` bench then turns the pool on to show how a
//! modest cache changes the sequential-vs-tree picture (an extension beyond
//! the paper).
//!
//! Accounting model:
//!
//! * [`AccessStats::reads`]/[`AccessStats::writes`] — **logical** accesses:
//!   every page the algorithm touches. This is the Figure 5 metric.
//! * [`AccessStats::hits`]/[`AccessStats::misses`] — how the pool served the
//!   logical reads. With `capacity = 0`, `misses == reads`.
//!
//! Evictions write dirty frames back to the file; those write-backs are
//! physical artefacts of caching and are *not* added to the logical
//! counters.

use std::collections::HashMap;

use crate::disk::{PageFile, PageId};
use crate::page::Page;
use crate::stats::AccessStats;
use std::rc::Rc;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// An LRU page cache with write-back semantics over a [`PageFile`].
///
/// ```
/// use tsss_storage::{BufferPool, Page, PageFile};
/// let mut file = PageFile::new(64);
/// let id = file.allocate();
/// let mut pool = BufferPool::new(file, 4);
/// let mut page = Page::zeroed(64);
/// page.put_u64(0, 42);
/// pool.write(id, page);
/// assert_eq!(pool.read(id).get_u64(0), 42);
/// assert_eq!(pool.stats().hits(), 1); // served from the cached frame
/// ```
#[derive(Debug)]
pub struct BufferPool {
    file: PageFile,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: Rc<AccessStats>,
}

impl BufferPool {
    /// Wraps `file` in a pool holding at most `capacity` frames.
    ///
    /// `capacity = 0` disables caching entirely (the paper's measurement
    /// regime): reads and writes go straight to the file and every read is a
    /// miss.
    pub fn new(file: PageFile, capacity: usize) -> Self {
        let stats = file.stats();
        Self {
            file,
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
            stats,
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently cached.
    pub fn cached(&self) -> usize {
        self.map.len()
    }

    /// Shared access counters (same object the underlying file reports to).
    pub fn stats(&self) -> Rc<AccessStats> {
        Rc::clone(&self.stats)
    }

    /// Allocates a fresh page in the backing file.
    pub fn allocate(&mut self) -> PageId {
        self.file.allocate()
    }

    /// Frees a page, dropping any cached frame for it (dirty or not).
    pub fn deallocate(&mut self, id: PageId) {
        if let Some(&idx) = self.map.get(&id) {
            self.unlink(idx);
            self.remove_frame(idx);
        }
        self.file.deallocate(id);
    }

    /// Page size of the backing file.
    pub fn page_size(&self) -> usize {
        self.file.page_size()
    }

    /// Reads a page through the cache. Counts one logical read, plus a hit
    /// or a miss.
    pub fn read(&mut self, id: PageId) -> Page {
        self.stats.record_read();
        if self.capacity == 0 {
            self.stats.record_miss();
            return self.file.read_page_uncounted(id).clone();
        }
        if let Some(&idx) = self.map.get(&id) {
            self.stats.record_hit();
            self.touch(idx);
            return self.frames[idx].page.clone();
        }
        self.stats.record_miss();
        let page = self.file.read_page_uncounted(id).clone();
        self.insert_frame(id, page.clone(), false);
        page
    }

    /// Writes a page through the cache. Counts one logical write.
    pub fn write(&mut self, id: PageId, page: Page) {
        self.stats.record_write();
        if self.capacity == 0 {
            self.file.write_page_uncounted(id, page);
            return;
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].page = page;
            self.frames[idx].dirty = true;
            self.touch(idx);
            return;
        }
        self.insert_frame(id, page, true);
    }

    /// Writes every dirty frame back to the file (frames stay cached,
    /// now clean).
    pub fn flush(&mut self) {
        for f in &mut self.frames {
            if f.dirty {
                self.file.write_page_uncounted(f.id, f.page.clone());
                f.dirty = false;
            }
        }
    }

    /// Flushes and returns the backing file.
    pub fn into_file(mut self) -> PageFile {
        self.flush();
        self.file
    }

    /// Read-only access to the backing file. Callers that need the file's
    /// durable contents must [`BufferPool::flush`] first.
    pub fn file(&self) -> &PageFile {
        &self.file
    }

    /// Drops every cached frame after flushing — subsequent reads are cold.
    /// Used between benchmark queries to reproduce the paper's per-query
    /// accounting.
    pub fn clear_cache(&mut self) {
        self.flush();
        self.frames.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.frames[idx].prev, self.frames[idx].next);
        if p != NIL {
            self.frames[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.frames[n].prev = p;
        } else {
            self.tail = p;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn insert_frame(&mut self, id: PageId, page: Page, dirty: bool) {
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let idx = self.frames.len();
        self.frames.push(Frame {
            id,
            page,
            dirty,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(id, idx);
        self.push_front(idx);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict on empty pool");
        self.unlink(victim);
        self.remove_frame(victim);
    }

    /// Removes the frame at `idx` (which must already be unlinked from the
    /// LRU list), writing it back if dirty. Uses swap-remove to keep the
    /// frame vector dense, then repairs the pointers of the frame that moved
    /// into `idx`.
    fn remove_frame(&mut self, idx: usize) {
        let frame = self.frames.swap_remove(idx);
        if frame.dirty {
            self.file.write_page_uncounted(frame.id, frame.page);
        }
        self.map.remove(&frame.id);
        if idx < self.frames.len() {
            // The frame formerly at the end now lives at `idx`. Nothing in
            // the list can still point at `idx` (it was unlinked), so only
            // references to the moved frame need repair.
            let moved_id = self.frames[idx].id;
            *self.map.get_mut(&moved_id).expect("moved frame in map") = idx;
            let (p, n) = (self.frames[idx].prev, self.frames[idx].next);
            if p != NIL {
                self.frames[p].next = idx;
            } else {
                self.head = idx;
            }
            if n != NIL {
                self.frames[n].prev = idx;
            } else {
                self.tail = idx;
            }
        }
    }
}

impl PageFile {
    /// Writes a page without access accounting — the buffer pool's private
    /// back door for evictions and flushes (logical counting already
    /// happened at the pool boundary).
    pub(crate) fn write_page_uncounted(&mut self, id: PageId, page: Page) {
        assert_eq!(page.size(), self.page_size(), "page size mismatch");
        self.write_raw(id, page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> (BufferPool, Vec<PageId>) {
        let mut file = PageFile::new(64);
        let ids: Vec<PageId> = (0..8).map(|_| file.allocate()).collect();
        // Seed each page with a recognisable value.
        for (i, &id) in ids.iter().enumerate() {
            let mut p = Page::zeroed(64);
            p.put_u64(0, i as u64 + 100);
            file.write_page(id, p);
        }
        file.stats().reset();
        (BufferPool::new(file, cap), ids)
    }

    #[test]
    fn unbuffered_pool_counts_every_read_as_miss() {
        let (mut pool, ids) = pool(0);
        for _ in 0..3 {
            let p = pool.read(ids[0]);
            assert_eq!(p.get_u64(0), 100);
        }
        let s = pool.stats();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits(), 0);
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let (mut pool, ids) = pool(4);
        let _ = pool.read(ids[0]);
        let _ = pool.read(ids[0]);
        let _ = pool.read(ids[0]);
        let s = pool.stats();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (mut pool, ids) = pool(2);
        let _ = pool.read(ids[0]); // miss
        let _ = pool.read(ids[1]); // miss
        let _ = pool.read(ids[0]); // hit, 0 becomes MRU
        let _ = pool.read(ids[2]); // miss, evicts 1
        let _ = pool.read(ids[0]); // hit (still cached)
        let _ = pool.read(ids[1]); // miss (was evicted)
        let s = pool.stats();
        assert_eq!(s.misses(), 4);
        assert_eq!(s.hits(), 2);
    }

    #[test]
    fn writes_are_cached_and_flushed_back() {
        let (mut pool, ids) = pool(2);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 777);
        pool.write(ids[3], p);
        // Read through the pool sees the new value even before flush.
        assert_eq!(pool.read(ids[3]).get_u64(0), 777);
        let file = pool.into_file();
        assert_eq!(file.read_page_uncounted(ids[3]).get_u64(0), 777);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut pool, ids) = pool(1);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 555);
        pool.write(ids[0], p); // dirty frame for 0
        let _ = pool.read(ids[1]); // evicts 0, must write it back
        assert_eq!(pool.read(ids[0]).get_u64(0), 555);
    }

    #[test]
    fn unbuffered_write_goes_straight_through() {
        let (mut pool, ids) = pool(0);
        let mut p = Page::zeroed(64);
        p.put_u64(0, 42);
        pool.write(ids[5], p);
        assert_eq!(pool.read(ids[5]).get_u64(0), 42);
        assert_eq!(pool.cached(), 0);
    }

    #[test]
    fn clear_cache_makes_reads_cold_again() {
        let (mut pool, ids) = pool(4);
        let _ = pool.read(ids[0]);
        let _ = pool.read(ids[0]);
        pool.clear_cache();
        let _ = pool.read(ids[0]);
        let s = pool.stats();
        assert_eq!(s.misses(), 2); // one before clear, one after
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn deallocate_drops_cached_frame() {
        let (mut pool, ids) = pool(4);
        let _ = pool.read(ids[0]);
        assert_eq!(pool.cached(), 1);
        pool.deallocate(ids[0]);
        assert_eq!(pool.cached(), 0);
    }

    #[test]
    fn heavy_mixed_workload_stays_consistent() {
        // Deterministic pseudo-random access pattern; validates LRU's
        // swap-remove bookkeeping under churn by checking every read value.
        let (mut pool, ids) = pool(3);
        let mut x = 12345u64;
        for step in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % ids.len();
            if step % 5 == 0 {
                let mut p = Page::zeroed(64);
                p.put_u64(0, 1000 + step);
                p.put_u64(8, i as u64);
                pool.write(ids[i], p);
            } else {
                let p = pool.read(ids[i]);
                let v = p.get_u64(0);
                // Either the seed value or some later write targeted at i.
                if v >= 1000 {
                    assert_eq!(p.get_u64(8), i as u64, "frame mix-up at {step}");
                } else {
                    assert_eq!(v, 100 + i as u64);
                }
            }
            assert!(pool.cached() <= 3);
        }
    }
}
