//! Minimal little-endian binary codec for persistence.
//!
//! The workspace persists engines to single files (see `RTree::save_to` and
//! `SearchEngine::save_to_path`). Rather than pulling in a serialisation
//! framework, the handful of primitive shapes needed — fixed-width
//! integers, floats, length-prefixed strings and byte runs — are encoded
//! with these helpers. Everything is little-endian and explicitly sized, so
//! files are portable across platforms.

// analyze::allow-file(index): every index here is a literal into a fixed-size array it provably fits — the 8-byte magic buffer, the 256-entry CRC table (index masked with `& 0xFF`), and single-byte scratch buffers just filled by `read_exact`.

use std::io::{self, Read, Write};

/// Writes a `u8`.
pub fn put_u8<W: Write + ?Sized>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads a `u8`.
pub fn get_u8<R: Read + ?Sized>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a `u32` (little-endian).
pub fn put_u32<W: Write + ?Sized>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32`.
pub fn get_u32<R: Read + ?Sized>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` (little-endian).
pub fn put_u64<W: Write + ?Sized>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64`.
pub fn get_u64<R: Read + ?Sized>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a `usize` as `u64`.
pub fn put_usize<W: Write + ?Sized>(w: &mut W, v: usize) -> io::Result<()> {
    put_u64(w, v as u64)
}

/// Reads a `usize` (stored as `u64`).
///
/// # Errors
/// `InvalidData` when the stored value does not fit this platform's
/// `usize`.
pub fn get_usize<R: Read + ?Sized>(r: &mut R) -> io::Result<usize> {
    let v = get_u64(r)?;
    usize::try_from(v)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "usize overflow in stream"))
}

/// Writes an `f64` (little-endian bit pattern).
pub fn put_f64<W: Write + ?Sized>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `f64`.
pub fn get_f64<R: Read + ?Sized>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string<W: Write + ?Sized>(w: &mut W, s: &str) -> io::Result<()> {
    put_usize(w, s.len())?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
/// `InvalidData` on malformed UTF-8 or an absurd length prefix.
pub fn get_string<R: Read + ?Sized>(r: &mut R) -> io::Result<String> {
    let len = get_usize(r)?;
    if len > (1 << 32) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string length prefix too large",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 in stream"))
}

/// Writes an 8-byte ASCII magic tag.
pub fn put_magic<W: Write + ?Sized>(w: &mut W, magic: &[u8; 8]) -> io::Result<()> {
    w.write_all(magic)
}

/// Reads and verifies an 8-byte magic tag.
///
/// # Errors
/// `InvalidData` when the tag does not match.
pub fn expect_magic<R: Read + ?Sized>(r: &mut R, magic: &[u8; 8]) -> io::Result<()> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    if &b != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(&b)
            ),
        ));
    }
    Ok(())
}

/// Builds the 8-byte magic `<prefix><two ASCII decimal version digits>`,
/// e.g. `versioned_magic(b"TSSSIX", 2)` → `TSSSIX02`.
pub fn versioned_magic(prefix: &[u8; 6], version: u8) -> [u8; 8] {
    let mut m = [0u8; 8];
    m[..6].copy_from_slice(prefix);
    m[6] = b'0' + version / 10;
    m[7] = b'0' + version % 10;
    m
}

/// Reads an 8-byte magic tag whose first six bytes name the format and
/// whose last two are an ASCII version number, e.g. `TSSSIX02`.
///
/// Distinguishes *not this kind of file* (prefix mismatch) from *a future
/// or past version of this kind of file* (prefix matches, version differs),
/// so callers can give users an actionable message.
///
/// # Errors
/// `InvalidData` in both cases, with distinct messages.
pub fn expect_versioned_magic<R: Read + ?Sized>(
    r: &mut R,
    prefix: &[u8; 6],
    version: u8,
) -> io::Result<()> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    if &b[..6] != prefix {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad magic: expected a {:?} file, found {:?}",
                String::from_utf8_lossy(prefix),
                String::from_utf8_lossy(&b)
            ),
        ));
    }
    let want = [b'0' + version / 10, b'0' + version % 10];
    if b[6..] != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "unsupported version: this build reads {}{:02}, file is {:?}",
                String::from_utf8_lossy(prefix),
                version,
                String::from_utf8_lossy(&b)
            ),
        ));
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`.
///
/// Table-driven, self-contained (the workspace builds with no external
/// crates). Used as the per-page and per-header checksum throughout the
/// persistence formats: any single bit flip in the covered bytes is
/// guaranteed detected, as are all burst errors up to 32 bits.
///
/// Implemented with slicing-by-8: eight derived tables let the loop fold
/// eight bytes per step instead of one, which matters because the paper's
/// unbuffered experiment setting verifies a 4 KB page checksum on *every*
/// logical page read. The result is bit-identical to the classic
/// byte-at-a-time formulation (the reference-vector test pins it).
// The table construction loop counters are 0..256, comfortably inside u32.
#[allow(clippy::cast_possible_truncation)]
pub fn crc32(bytes: &[u8]) -> u32 {
    // `static`, not `const`: a const item is an rvalue that unoptimised
    // builds re-materialise (all 8 KB of it) at every mention in the loop
    // body, which made each 4 KB checksum cost ~1 ms in debug test runs. A
    // static is one memory location; the initialiser is still evaluated at
    // compile time.
    static TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // analyze::allow(index): chunks_exact(8) guarantees exactly 8 bytes per chunk.
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Writes a length-prefixed, CRC-protected byte block:
/// `len (u64) · crc32 (u32) · bytes`.
///
/// The standard envelope for persistence metadata — paired with
/// [`get_checked_block`], any corruption of the length, the checksum, or
/// the payload itself is detected at read time.
pub fn put_checked_block<W: Write + ?Sized>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    put_usize(w, bytes.len())?;
    put_u32(w, crc32(bytes))?;
    w.write_all(bytes)
}

/// Reads a block written by [`put_checked_block`], verifying its checksum.
///
/// # Errors
/// `InvalidData` on a length above `max_len` (guards hostile inputs from
/// causing huge allocations) or a checksum mismatch; propagates I/O errors
/// (truncation surfaces as `UnexpectedEof`).
pub fn get_checked_block<R: Read + ?Sized>(r: &mut R, max_len: usize) -> io::Result<Vec<u8>> {
    let len = get_usize(r)?;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metadata block length {len} exceeds limit {max_len}"),
        ));
    }
    let stored = get_u32(r)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let actual = crc32(&buf);
    if actual != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metadata checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        ));
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7).unwrap();
        put_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        put_u64(&mut buf, u64::MAX - 3).unwrap();
        put_usize(&mut buf, 123_456).unwrap();
        put_f64(&mut buf, -0.0).unwrap();
        put_f64(&mut buf, 1e300).unwrap();
        put_string(&mut buf, "héllo").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(get_u8(&mut r).unwrap(), 7);
        assert_eq!(get_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(get_usize(&mut r).unwrap(), 123_456);
        assert_eq!(get_f64(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(get_f64(&mut r).unwrap(), 1e300);
        assert_eq!(get_string(&mut r).unwrap(), "héllo");
    }

    #[test]
    fn magic_mismatch_is_invalid_data() {
        let mut buf = Vec::new();
        put_magic(&mut buf, b"TSSSPG01").unwrap();
        let mut r = Cursor::new(buf);
        let err = expect_magic(&mut r, b"TSSSIX01").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut r = Cursor::new(vec![1u8, 2]);
        assert!(get_u64(&mut r).is_err());
    }

    #[test]
    fn bad_utf8_is_invalid_data() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = get_string(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_slicing_matches_byte_at_a_time_at_every_length() {
        // The classic one-byte-per-step formulation, kept here as the
        // oracle for the slicing-by-8 production kernel.
        fn crc32_naive(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c ^= u32::from(b);
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
            }
            c ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in (0..64).chain([100, 511, 512, 4095, 4096]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_naive(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data = b"paged storage under test".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn versioned_magic_distinguishes_kind_from_version() {
        let mut buf = Vec::new();
        put_magic(&mut buf, b"TSSSIX02").unwrap();
        expect_versioned_magic(&mut Cursor::new(&buf), b"TSSSIX", 2).unwrap();

        let err = expect_versioned_magic(&mut Cursor::new(&buf), b"TSSSIX", 3).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");

        let err = expect_versioned_magic(&mut Cursor::new(&buf), b"TSSSEN", 2).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn checked_block_roundtrips_and_rejects_damage() {
        let payload = b"some metadata bytes".to_vec();
        let mut buf = Vec::new();
        put_checked_block(&mut buf, &payload).unwrap();
        assert_eq!(
            get_checked_block(&mut Cursor::new(&buf), 1024).unwrap(),
            payload
        );

        // Any single bit flip anywhere in the envelope is detected.
        for byte in 0..buf.len() {
            let mut damaged = buf.clone();
            damaged[byte] ^= 0x01;
            assert!(
                get_checked_block(&mut Cursor::new(&damaged), 1024).is_err(),
                "flip at byte {byte} went undetected"
            );
        }

        // Oversized length prefixes are refused before allocation.
        let mut huge = Vec::new();
        put_usize(&mut huge, usize::MAX / 2).unwrap();
        put_u32(&mut huge, 0).unwrap();
        assert!(get_checked_block(&mut Cursor::new(&huge), 1024).is_err());
    }
}
