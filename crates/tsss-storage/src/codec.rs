//! Minimal little-endian binary codec for persistence.
//!
//! The workspace persists engines to single files (see `RTree::save_to` and
//! `SearchEngine::save_to_path`). Rather than pulling in a serialisation
//! framework, the handful of primitive shapes needed — fixed-width
//! integers, floats, length-prefixed strings and byte runs — are encoded
//! with these helpers. Everything is little-endian and explicitly sized, so
//! files are portable across platforms.

use std::io::{self, Read, Write};

/// Writes a `u8`.
pub fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads a `u8`.
pub fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a `u32` (little-endian).
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32`.
pub fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` (little-endian).
pub fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64`.
pub fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a `usize` as `u64`.
pub fn put_usize<W: Write>(w: &mut W, v: usize) -> io::Result<()> {
    put_u64(w, v as u64)
}

/// Reads a `usize` (stored as `u64`).
///
/// # Errors
/// `InvalidData` when the stored value does not fit this platform's
/// `usize`.
pub fn get_usize<R: Read>(r: &mut R) -> io::Result<usize> {
    let v = get_u64(r)?;
    usize::try_from(v)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "usize overflow in stream"))
}

/// Writes an `f64` (little-endian bit pattern).
pub fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `f64`.
pub fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    put_usize(w, s.len())?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
/// `InvalidData` on malformed UTF-8 or an absurd length prefix.
pub fn get_string<R: Read>(r: &mut R) -> io::Result<String> {
    let len = get_usize(r)?;
    if len > (1 << 32) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string length prefix too large",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 in stream"))
}

/// Writes an 8-byte ASCII magic tag.
pub fn put_magic<W: Write>(w: &mut W, magic: &[u8; 8]) -> io::Result<()> {
    w.write_all(magic)
}

/// Reads and verifies an 8-byte magic tag.
///
/// # Errors
/// `InvalidData` when the tag does not match.
pub fn expect_magic<R: Read>(r: &mut R, magic: &[u8; 8]) -> io::Result<()> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    if &b != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(&b)
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7).unwrap();
        put_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        put_u64(&mut buf, u64::MAX - 3).unwrap();
        put_usize(&mut buf, 123_456).unwrap();
        put_f64(&mut buf, -0.0).unwrap();
        put_f64(&mut buf, 1e300).unwrap();
        put_string(&mut buf, "héllo").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(get_u8(&mut r).unwrap(), 7);
        assert_eq!(get_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(get_usize(&mut r).unwrap(), 123_456);
        assert_eq!(get_f64(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(get_f64(&mut r).unwrap(), 1e300);
        assert_eq!(get_string(&mut r).unwrap(), "héllo");
    }

    #[test]
    fn magic_mismatch_is_invalid_data() {
        let mut buf = Vec::new();
        put_magic(&mut buf, b"TSSSPG01").unwrap();
        let mut r = Cursor::new(buf);
        let err = expect_magic(&mut r, b"TSSSIX01").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut r = Cursor::new(vec![1u8, 2]);
        assert!(get_u64(&mut r).is_err());
    }

    #[test]
    fn bad_utf8_is_invalid_data() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = get_string(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
