//! Minimal deterministic pseudo-random number generation.
//!
//! The workspace builds offline with no external crates, so the `rand`
//! dependency is replaced by this tiny self-contained generator. It is used
//! in two places with different requirements, both satisfied here:
//!
//! * **data synthesis** (`tsss-data`) needs a statistically sound stream —
//!   xoshiro256++ passes BigCrush and is the algorithm `rand`'s own small
//!   RNGs are built from;
//! * **randomised tests** need reproducibility — every stream is a pure
//!   function of its `u64` seed, expanded through splitmix64 exactly as the
//!   xoshiro reference implementation recommends.
//!
//! This is **not** a cryptographic generator and must never be used for
//! security purposes.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

/// A deterministic xoshiro256++ generator seeded via splitmix64.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 state expansion (Blackman & Vigna's recommendation):
        // guarantees a non-zero xoshiro state for every seed, including 0.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
            spare_normal: None,
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit resolution.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)` (or a constant when `lo == hi`).
    ///
    /// # Panics
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range {lo}..{hi}"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)` via the widening-multiply method.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    // The high 64 bits of a u64×usize product are < n by construction.
    #[allow(clippy::cast_possible_truncation)]
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A standard-normal variate (Box–Muller; the second variate of each
    /// pair is cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0, 1] keeps ln() finite.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A vector of `n` uniform values in `[lo, hi)` — the common shape in
    /// randomised tests.
    pub fn f64_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_range(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        assert_ne!(r.next_u64() | r.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn usize_below_covers_the_range() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = r.usize_below(10);
            assert!(k < 10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = Rng::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = r.f64_range(-3.0, 7.5);
            assert!((-3.0..7.5).contains(&x));
        }
        assert_eq!(r.f64_range(2.0, 2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn usize_below_zero_panics() {
        Rng::seed_from_u64(1).usize_below(0);
    }
}
