//! Randomised tests for the geometric core of the paper.
//!
//! These validate the re-derived Lemmas 1–4 and Theorems 1–3 (whose proofs
//! the paper omits) against brute-force/numeric ground truth on random
//! inputs. Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`])
//! replace the former proptest strategies so the workspace builds offline.

use tsss_geometry::line::{lld, lld_argmin, pld, Line};
use tsss_geometry::mbr::Mbr;
use tsss_geometry::penetration::{line_mbr_interval, line_penetrates_mbr};
use tsss_geometry::scale_shift::{min_scale_shift_distance, optimal_scale_shift, ScaleShift};
use tsss_geometry::se::{se_line, se_transform};
use tsss_geometry::sphere::Sphere;
use tsss_geometry::vector::{dist, dot, mean};
use tsss_rand::Rng;

const CASES: usize = 256;

fn vec_n(rng: &mut Rng, n: usize) -> Vec<f64> {
    rng.f64_vec(n, -100.0, 100.0)
}

fn random_dim(rng: &mut Rng) -> usize {
    2 + rng.usize_below(10)
}

fn paired_vecs(rng: &mut Rng) -> (Vec<f64>, Vec<f64>) {
    let n = random_dim(rng);
    (vec_n(rng, n), vec_n(rng, n))
}

/// Lemma 1: PLD is the true minimum of ‖q − L(t)‖ over t (checked against
/// the analytic foot-of-perpendicular and a parameter sweep).
#[test]
fn pld_is_a_lower_bound_of_all_line_points() {
    let mut rng = Rng::seed_from_u64(0x6E0_0001);
    for _ in 0..CASES {
        let n = random_dim(&mut rng);
        let (q, p, d) = (vec_n(&mut rng, n), vec_n(&mut rng, n), vec_n(&mut rng, n));
        let line = Line::new(p, d).unwrap();
        let exact = pld(&q, &line);
        let t_star = line.project_param(&q);
        // The foot of the perpendicular achieves it...
        assert!((dist(&q, &line.at(t_star)) - exact).abs() < 1e-6);
        // ...and no sampled parameter beats it.
        for k in -10..=10 {
            let t = t_star + k as f64 * 0.37;
            assert!(dist(&q, &line.at(t)) + 1e-9 >= exact);
        }
    }
}

/// Lemma 2 / Theorem 1: LLD(scaling line of u, shifting line of v) equals
/// the closed-form minimum scale-shift distance.
#[test]
fn theorem1_lld_equals_min_scale_shift_distance() {
    let mut rng = Rng::seed_from_u64(0x6E0_0002);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let geometric = lld(&Line::scaling(&u), &Line::shifting(&v));
        let algebraic = min_scale_shift_distance(&u, &v).unwrap();
        assert!(
            (geometric - algebraic).abs() < 1e-6,
            "lld = {geometric}, closed form = {algebraic}"
        );
    }
}

/// LLD's argmin really achieves the reported distance.
#[test]
fn lld_argmin_achieves_lld() {
    let mut rng = Rng::seed_from_u64(0x6E0_0003);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let l1 = Line::scaling(&u);
        let l2 = Line::shifting(&v);
        let (t1, t2) = lld_argmin(&l1, &l2);
        let achieved = dist(&l1.at(t1), &l2.at(t2));
        assert!((achieved - lld(&l1, &l2)).abs() < 1e-6);
    }
}

/// Lemma 3: ‖F_{a,b}(u) − v‖ = ‖L_sa(u)(a) − L_sh(v)(−b)‖ for all a, b.
#[test]
fn lemma3_transform_distance_is_line_point_distance() {
    let mut rng = Rng::seed_from_u64(0x6E0_0004);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let a = rng.f64_range(-10.0, 10.0);
        let b = rng.f64_range(-10.0, 10.0);
        let f = ScaleShift { a, b };
        let lhs = dist(&f.apply(&u), &v);
        let rhs = dist(&Line::scaling(&u).at(a), &Line::shifting(&v).at(-b));
        assert!((lhs - rhs).abs() < 1e-8);
    }
}

/// §5.2: the closed-form (a, b) is optimal — no random transform does
/// better.
#[test]
fn closed_form_fit_is_optimal() {
    let mut rng = Rng::seed_from_u64(0x6E0_0005);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let a = rng.f64_range(-10.0, 10.0);
        let b = rng.f64_range(-10.0, 10.0);
        let fit = optimal_scale_shift(&u, &v).unwrap();
        let candidate = dist(&ScaleShift { a, b }.apply(&u), &v);
        assert!(fit.distance <= candidate + 1e-8);
        // And the reported transform achieves the reported distance.
        let achieved = dist(&fit.transform.apply(&u), &v);
        assert!((achieved - fit.distance).abs() < 1e-7);
    }
}

/// SE-transformation: linear, idempotent, kills shifts, image ⟂ N.
#[test]
fn se_transformation_properties() {
    let mut rng = Rng::seed_from_u64(0x6E0_0006);
    for _ in 0..CASES {
        let n = random_dim(&mut rng);
        let v = vec_n(&mut rng, n);
        let t = rng.f64_range(-50.0, 50.0);
        let base = se_transform(&v);
        // Shift invariance.
        let shifted: Vec<f64> = v.iter().map(|x| x + t).collect();
        let s = se_transform(&shifted);
        for (a, b) in s.iter().zip(&base) {
            assert!((a - b).abs() < 1e-7);
        }
        // Idempotence.
        let twice = se_transform(&base);
        for (a, b) in twice.iter().zip(&base) {
            assert!((a - b).abs() < 1e-9);
        }
        // Orthogonal to N ⇔ zero mean.
        assert!(mean(&base).abs() < 1e-9);
        let ones = vec![1.0; v.len()];
        assert!(dot(&base, &ones).abs() < 1e-7);
    }
}

/// Theorem 2: similarity can be decided entirely on the SE-Plane.
#[test]
fn theorem2_pld_in_se_plane_decides_similarity() {
    let mut rng = Rng::seed_from_u64(0x6E0_0007);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let on_plane = pld(&se_transform(&v), &se_line(&u));
        let original = lld(&Line::scaling(&u), &Line::shifting(&v));
        assert!((on_plane - original).abs() < 1e-6);
    }
}

/// Theorem 3 (soundness of pruning): if the ε-MBR of a box holding T_se(v)
/// is *not* penetrated by the SE-line of u, then u is not ε-similar to v.
#[test]
fn theorem3_no_penetration_implies_no_similarity() {
    let mut rng = Rng::seed_from_u64(0x6E0_0008);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let eps = rng.f64_range(0.01, 50.0);
        let feat = se_transform(&v);
        let mbr = Mbr::point(&feat);
        let line = se_line(&u);
        if !line_penetrates_mbr(&line, &mbr.enlarged(eps)) {
            let d = min_scale_shift_distance(&u, &v).unwrap();
            assert!(d > eps, "pruned a similar pair: d = {d}, eps = {eps}");
        }
    }
}

/// The slab test agrees with dense sampling of the line parameter.
#[test]
fn slab_test_agrees_with_sampling() {
    let mut rng = Rng::seed_from_u64(0x6E0_0009);
    for _ in 0..CASES {
        let p = vec_n(&mut rng, 3);
        let d = vec_n(&mut rng, 3);
        let lo = vec_n(&mut rng, 3);
        let ext = rng.f64_vec(3, 0.1, 30.0);
        let line = Line::new(p, d).unwrap();
        let high: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let mbr = Mbr::new(lo, high).unwrap();
        match line_mbr_interval(&line, &mbr) {
            Some((t0, t1)) => {
                assert!(t0 <= t1 + 1e-9);
                let grown = mbr.enlarged(1e-6);
                assert!(grown.contains_point(&line.at(0.5 * (t0 + t1))));
            }
            None => {
                // No sampled point may fall inside the box.
                for k in -200..=200 {
                    let t = k as f64 * 0.25;
                    assert!(
                        !mbr.contains_point(&line.at(t)),
                        "slab said miss but t = {t} is inside"
                    );
                }
            }
        }
    }
}

/// Sphere sandwich: outer-miss ⇒ box-miss, inner-hit ⇒ box-hit.
#[test]
fn sphere_sandwich_is_conservative() {
    let mut rng = Rng::seed_from_u64(0x6E0_000A);
    for _ in 0..CASES {
        let p = vec_n(&mut rng, 4);
        let d = vec_n(&mut rng, 4);
        let lo = vec_n(&mut rng, 4);
        let ext = rng.f64_vec(4, 0.1, 30.0);
        let line = Line::new(p, d).unwrap();
        let high: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let mbr = Mbr::new(lo, high).unwrap();
        let box_hit = line_penetrates_mbr(&line, &mbr);
        if !Sphere::outer(&mbr).penetrated_by(&line) {
            assert!(!box_hit, "outer sphere missed but box hit");
        }
        if Sphere::inner(&mbr).penetrated_by(&line) {
            assert!(box_hit, "inner sphere hit but box missed");
        }
    }
}

/// MBR algebra: union contains operands; overlap symmetric and bounded.
#[test]
fn mbr_algebra() {
    let mut rng = Rng::seed_from_u64(0x6E0_000B);
    for _ in 0..CASES {
        let (a_lo, b_lo) = paired_vecs(&mut rng);
        let ext_seed = rng.f64_range(0.0, 1.0);
        let ea: Vec<f64> = a_lo
            .iter()
            .map(|x| x.abs() * 0.1 + ext_seed + 0.1)
            .collect();
        let eb: Vec<f64> = b_lo.iter().map(|x| x.abs() * 0.05 + 0.2).collect();
        let a_hi: Vec<f64> = a_lo.iter().zip(&ea).map(|(l, e)| l + e).collect();
        let b_hi: Vec<f64> = b_lo.iter().zip(&eb).map(|(l, e)| l + e).collect();
        let a = Mbr::new(a_lo, a_hi).unwrap();
        let b = Mbr::new(b_lo, b_hi).unwrap();
        let u = a.union(&b);
        assert!(u.contains_mbr(&a));
        assert!(u.contains_mbr(&b));
        assert!(u.volume() + 1e-9 >= a.volume().max(b.volume()));
        let o = a.overlap(&b);
        assert!((o - b.overlap(&a)).abs() < 1e-9);
        assert!(o <= a.volume().min(b.volume()) + 1e-9);
        assert_eq!(o > 0.0, a.intersects(&b));
    }
}

/// Corollary 1: no ε' < LLD admits similarity — i.e. the similarity
/// predicate is monotone in ε with threshold exactly LLD.
#[test]
fn corollary1_threshold_behaviour() {
    let mut rng = Rng::seed_from_u64(0x6E0_000C);
    for _ in 0..CASES {
        let (u, v) = paired_vecs(&mut rng);
        let d = min_scale_shift_distance(&u, &v).unwrap();
        if d <= 1e-6 {
            continue; // analogous to prop_assume!
        }
        assert!(tsss_geometry::scale_shift::similar(&u, &v, d * 1.001).unwrap());
        assert!(!tsss_geometry::scale_shift::similar(&u, &v, d * 0.999).unwrap());
    }
}
