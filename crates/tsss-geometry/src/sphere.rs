//! Bounding spheres for the penetration-check heuristic of paper §7.
//!
//! The paper imports a ray-tracing trick: wrap each ε-MBR in two spheres,
//!
//! * the **inner sphere**, the largest sphere inscribed in the box (radius =
//!   half the *shortest* side), and
//! * the **outer sphere**, the smallest sphere circumscribing the box
//!   (radius = half the *diagonal*),
//!
//! so that `line misses outer ⇒ line misses box` and `line hits inner ⇒ line
//! hits box`. Only the undecided middle band needs the exact (more expensive)
//! Entering/Exiting Points test. The paper's experiments find the heuristic
//! counter-productive for R*-tree boxes — their long-diagonal/small-volume
//! shape makes the middle band dominate — and our `ablation_spheres` bench
//! reproduces that finding quantitatively.

use crate::line::{pld_sq, Line};
use crate::mbr::Mbr;

/// A hypersphere `{ x : ‖x − center‖ ≤ radius }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: Vec<f64>,
    /// Radius (≥ 0).
    pub radius: f64,
}

impl Sphere {
    /// The largest sphere inscribed in the box: centred at the box centre
    /// with radius half the shortest side. `line hits inner ⇒ line hits box`.
    pub fn inner(mbr: &Mbr) -> Self {
        let radius = (0..mbr.dim())
            .map(|i| mbr.extent(i))
            .fold(f64::INFINITY, f64::min)
            / 2.0;
        Self {
            center: mbr.center(),
            radius: if radius.is_finite() { radius } else { 0.0 },
        }
    }

    /// The smallest sphere circumscribing the box: centred at the box centre
    /// with radius half the diagonal. `line misses outer ⇒ line misses box`.
    pub fn outer(mbr: &Mbr) -> Self {
        Self {
            center: mbr.center(),
            radius: mbr.diagonal() / 2.0,
        }
    }

    /// True when the line passes through (or touches) the sphere, i.e.
    /// `PLD(center, line) ≤ radius`.
    pub fn penetrated_by(&self, line: &Line) -> bool {
        pld_sq(&self.center, line) <= self.radius * self.radius
    }

    /// True when the point lies in the closed ball.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        crate::vector::dist_sq(&self.center, p) <= self.radius * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Mbr {
        Mbr::new(vec![0.0, 0.0, 0.0], vec![2.0, 2.0, 2.0]).unwrap()
    }

    fn slab_box() -> Mbr {
        // Long diagonal, small volume — the problematic R*-tree shape.
        Mbr::new(vec![0.0, 0.0, 0.0], vec![10.0, 0.2, 0.2]).unwrap()
    }

    #[test]
    fn cube_spheres_have_expected_radii() {
        let inner = Sphere::inner(&cube());
        let outer = Sphere::outer(&cube());
        assert_eq!(inner.center, vec![1.0, 1.0, 1.0]);
        assert_eq!(inner.radius, 1.0);
        assert!((outer.radius - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn slab_box_spheres_are_badly_mismatched() {
        let m = slab_box();
        let inner = Sphere::inner(&m);
        let outer = Sphere::outer(&m);
        assert_eq!(inner.radius, 0.1);
        assert!(outer.radius > 5.0);
        // The gap ratio is what defeats the heuristic.
        assert!(outer.radius / inner.radius > 50.0);
    }

    #[test]
    fn inner_hit_implies_box_hit() {
        let m = cube();
        let inner = Sphere::inner(&m);
        let l = Line::new(vec![1.0, 1.0, -5.0], vec![0.0, 0.0, 1.0]).unwrap();
        assert!(inner.penetrated_by(&l));
        assert!(crate::penetration::line_penetrates_mbr(&l, &m));
    }

    #[test]
    fn outer_miss_implies_box_miss() {
        let m = cube();
        let outer = Sphere::outer(&m);
        let l = Line::new(vec![10.0, 10.0, 0.0], vec![0.0, 0.0, 1.0]).unwrap();
        assert!(!outer.penetrated_by(&l));
        assert!(!crate::penetration::line_penetrates_mbr(&l, &m));
    }

    #[test]
    fn tangent_line_counts_as_penetration() {
        let s = Sphere {
            center: vec![0.0, 0.0],
            radius: 1.0,
        };
        // Line y = 1 is tangent.
        let l = Line::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(s.penetrated_by(&l));
        // Line y = 1.001 misses.
        let l = Line::new(vec![0.0, 1.001], vec![1.0, 0.0]).unwrap();
        assert!(!s.penetrated_by(&l));
    }

    #[test]
    fn contains_point_boundary_inclusive() {
        let s = Sphere {
            center: vec![0.0, 0.0],
            radius: 5.0,
        };
        assert!(s.contains_point(&[3.0, 4.0]));
        assert!(!s.contains_point(&[3.0, 4.1]));
    }

    #[test]
    fn degenerate_point_box_spheres() {
        let m = Mbr::point(&[1.0, 2.0]);
        let inner = Sphere::inner(&m);
        let outer = Sphere::outer(&m);
        assert_eq!(inner.radius, 0.0);
        assert_eq!(outer.radius, 0.0);
        let through = Line::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        assert!(outer.penetrated_by(&through));
    }
}
